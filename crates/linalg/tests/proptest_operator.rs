//! Property-based agreement tests: every structured [`MatrixOp`]
//! implementation must match the dense reference to 1e-10 on all the
//! products the LRM pipeline uses.

use lrm_linalg::operator::{op_logical_eq, CsrOp, DenseOp, IntervalsOp, MatrixOp};
use lrm_linalg::{ops, Matrix};
use proptest::prelude::*;

/// Strategy: a sparse `r×c` matrix (entries zeroed with high probability).
fn sparse_matrix(
    r: std::ops::Range<usize>,
    c: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (r, c).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec((-10.0f64..10.0, 0u8..4), rows * cols).prop_map(move |cells| {
            let data = cells
                .into_iter()
                .map(|(v, keep)| if keep == 0 { v } else { 0.0 })
                .collect();
            Matrix::from_vec(rows, cols, data).unwrap()
        })
    })
}

/// Strategy: inclusive intervals over a domain of size `n`, plus `n`.
fn intervals(
    rows: std::ops::Range<usize>,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    n.prop_flat_map(move |cols| {
        proptest::collection::vec((0..cols, 0..cols), rows.clone()).prop_map(move |pairs| {
            (
                cols,
                pairs
                    .into_iter()
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .collect(),
            )
        })
    })
}

fn dense_of(op: &dyn MatrixOp) -> Matrix {
    let (m, n) = op.shape();
    let mut out = Matrix::zeros(m, n);
    let mut buf = vec![0.0; n];
    for i in 0..m {
        op.fill_row(i, &mut buf);
        out.row_mut(i).copy_from_slice(&buf);
    }
    out
}

/// Asserts every operator product agrees with the dense reference.
fn assert_matches_dense(
    op: &dyn MatrixOp,
    reference: &Matrix,
    x: &[f64],
    y: &[f64],
    k: usize,
) -> Result<(), TestCaseError> {
    let (m, n) = reference.shape();
    prop_assert_eq!(op.shape(), (m, n));

    // matvec / matvec_t.
    let got = op.matvec(x);
    let want = ops::mul_vec(reference, x).unwrap();
    for (g, w) in got.iter().zip(want.iter()) {
        prop_assert!((g - w).abs() < 1e-10, "matvec {} vs {}", g, w);
    }
    let got_t = op.matvec_t(y);
    let want_t = ops::tr_mul_vec(reference, y).unwrap();
    for (g, w) in got_t.iter().zip(want_t.iter()) {
        prop_assert!((g - w).abs() < 1e-10, "matvec_t {} vs {}", g, w);
    }

    // SpMM in all four orientations the solver uses.
    let rhs = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
    prop_assert!(op
        .apply_right(&rhs)
        .approx_eq(&ops::matmul(reference, &rhs).unwrap(), 1e-10));
    let lhs = Matrix::from_fn(k, m, |i, j| ((i * 5 + j) % 13) as f64 - 6.0);
    prop_assert!(op
        .apply_left(&lhs)
        .approx_eq(&ops::matmul(&lhs, reference).unwrap(), 1e-10));
    let rt = Matrix::from_fn(k, n, |i, j| ((i + j * 2) % 9) as f64 - 4.0);
    prop_assert!(op
        .mul_tr(&rt)
        .approx_eq(&ops::mul_tr(reference, &rt).unwrap(), 1e-10));
    let lt = Matrix::from_fn(m, k, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
    prop_assert!(op
        .tr_mul(&lt)
        .approx_eq(&ops::tr_mul(&lt, reference).unwrap(), 1e-10));

    // Norms, column sums, Grams, residual assembly.
    prop_assert!((op.frobenius_sq() - reference.squared_sum()).abs() < 1e-10);
    let cs = op.col_abs_sums();
    for (g, w) in cs.iter().zip(reference.col_abs_sums().iter()) {
        prop_assert!((g - w).abs() < 1e-10, "col_abs_sums {} vs {}", g, w);
    }
    let mut acc = Matrix::from_fn(m, n, |i, j| ((i + j) % 5) as f64 - 2.0);
    let mut want_acc = acc.clone();
    op.add_to(&mut acc);
    want_acc.axpy(1.0, reference).unwrap();
    prop_assert!(acc.approx_eq(&want_acc, 1e-10));

    let (g, rows_side) = op.gram_small();
    let want_g = if rows_side {
        ops::mul_tr(reference, reference).unwrap()
    } else {
        ops::gram(reference)
    };
    prop_assert!(g.approx_eq(&want_g, 1e-9 * (1.0 + reference.squared_sum())));
    prop_assert!(op.gram_cols().approx_eq(
        &ops::gram(reference),
        1e-9 * (1.0 + reference.squared_sum())
    ));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn csr_agrees_with_dense(
        a in sparse_matrix(1..12, 1..12),
        x_seed in -5.0f64..5.0,
    ) {
        let op = CsrOp::from_dense(&a);
        let (m, n) = a.shape();
        let x: Vec<f64> = (0..n).map(|j| x_seed + j as f64 * 0.71).collect();
        let y: Vec<f64> = (0..m).map(|i| -x_seed + i as f64 * 0.37).collect();
        assert_matches_dense(&op, &a, &x, &y, 3)?;
        // And the dense wrapper agrees with itself.
        assert_matches_dense(&DenseOp::new(a.clone()), &a, &x, &y, 3)?;
    }

    #[test]
    fn intervals_agree_with_dense(
        (n, ivs) in intervals(1..14, 1..40),
        x_seed in -5.0f64..5.0,
    ) {
        let op = IntervalsOp::new(n, ivs);
        let reference = dense_of(&op);
        let m = op.rows();
        let x: Vec<f64> = (0..n).map(|j| x_seed + j as f64 * 0.29).collect();
        let y: Vec<f64> = (0..m).map(|i| -x_seed + i as f64 * 0.53).collect();
        assert_matches_dense(&op, &reference, &x, &y, 4)?;
    }

    #[test]
    fn representations_are_logically_equal(
        (n, ivs) in intervals(1..10, 1..24),
    ) {
        let implicit = IntervalsOp::new(n, ivs);
        let reference = dense_of(&implicit);
        let csr = CsrOp::from_dense(&reference);
        let dense = DenseOp::new(reference.clone());
        prop_assert!(op_logical_eq(&implicit, &csr));
        prop_assert!(op_logical_eq(&implicit, &dense));
        prop_assert!(op_logical_eq(&csr, &dense));
    }
}
