//! Property-based tests for the dense linear-algebra kernels.

use lrm_linalg::decomp::{Cholesky, Lu, Qr, Svd, SymEigen};
use lrm_linalg::{ops, Matrix};
use proptest::prelude::*;

/// Strategy: an `r×c` matrix with bounded entries.
fn matrix(r: std::ops::Range<usize>, c: std::ops::Range<usize>) -> impl Strategy<Value = Matrix> {
    (r, c).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
    })
}

/// Strategy: a square matrix.
fn square(n: std::ops::Range<usize>) -> impl Strategy<Value = Matrix> {
    n.prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_associates_with_vectors(a in matrix(1..6, 1..6), v in proptest::collection::vec(-5.0f64..5.0, 1..6)) {
        // (A·diag-pad) consistency: A·(v padded/truncated) equals matmul
        // against the column-matrix form.
        let n = a.cols();
        let mut x = v.clone();
        x.resize(n, 1.0);
        let y1 = ops::mul_vec(&a, &x).unwrap();
        let y2 = ops::matmul(&a, &Matrix::col_vector(&x)).unwrap();
        for (i, y1i) in y1.iter().enumerate() {
            prop_assert!((y1i - y2.get(i, 0)).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution_and_product_rule(a in matrix(1..7, 1..7), b in matrix(1..7, 1..7)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        if a.cols() == b.rows() {
            // (AB)ᵀ = BᵀAᵀ
            let ab_t = ops::matmul(&a, &b).unwrap().transpose();
            let bt_at = ops::matmul(&b.transpose(), &a.transpose()).unwrap();
            prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
        }
    }

    #[test]
    fn lu_solve_is_inverse_application(a in square(2..7), rhs in proptest::collection::vec(-5.0f64..5.0, 2..7)) {
        let n = a.rows();
        let mut b = rhs.clone();
        b.resize(n, 1.0);
        match Lu::compute(&a) {
            Ok(lu) if !lu.is_singular() && lu.det().abs() > 1e-6 => {
                let x = lu.solve_vec(&b).unwrap();
                let back = ops::mul_vec(&a, &x).unwrap();
                for i in 0..n {
                    prop_assert!((back[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()),
                        "solve mismatch at {i}");
                }
            }
            _ => {} // singular: nothing to check
        }
    }

    #[test]
    fn cholesky_of_gram_plus_identity(a in matrix(1..7, 1..7)) {
        // AᵀA + I is always SPD.
        let mut spd = ops::gram(&a);
        spd += &Matrix::identity(a.cols());
        let ch = Cholesky::compute(&spd).unwrap();
        let g = ch.factor();
        let recon = ops::mul_tr(g, g).unwrap();
        prop_assert!(recon.approx_eq(&spd, 1e-8));
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix(1..9, 1..9)) {
        if a.rows() < a.cols() {
            return Ok(()); // QR requires tall matrices
        }
        let qr = Qr::compute(&a).unwrap();
        let recon = ops::matmul(&qr.q(), &qr.r()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8), "QR reconstruction");
        let qtq = ops::gram(&qr.q());
        prop_assert!(qtq.approx_eq(&Matrix::identity(a.cols()), 1e-8), "Q orthonormality");
    }

    #[test]
    fn svd_reconstructs_and_values_sorted(a in matrix(1..8, 1..8)) {
        let svd = Svd::compute_jacobi(&a).unwrap();
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-7), "SVD reconstruction");
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "σ not sorted");
        }
        prop_assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
        // ‖A‖²_F = Σσ².
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        prop_assert!((sum_sq - a.squared_sum()).abs() < 1e-7 * (1.0 + a.squared_sum()));
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in square(1..8)) {
        let sym = Matrix::from_fn(a.rows(), a.rows(), |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
        let eig = SymEigen::compute(&sym).unwrap();
        prop_assert!(eig.reconstruct().approx_eq(&sym, 1e-7));
        // Eigenvalues ascending.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // Trace preserved.
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((sum - sym.trace().unwrap()).abs() < 1e-7 * (1.0 + sym.trace().unwrap().abs()));
    }

    #[test]
    fn rank_of_outer_product_is_at_most_one(u in proptest::collection::vec(-5.0f64..5.0, 2..8), v in proptest::collection::vec(-5.0f64..5.0, 2..8)) {
        let a = Matrix::from_fn(u.len(), v.len(), |i, j| u[i] * v[j]);
        let svd = Svd::compute_jacobi(&a).unwrap();
        prop_assert!(svd.rank() <= 1, "rank {} > 1", svd.rank());
    }

    #[test]
    fn norm_inequalities(a in matrix(1..8, 1..8)) {
        // max|a_ij| ≤ σ₁ ≤ ‖A‖_F ≤ √(mn)·max|a_ij|
        let svd = Svd::compute_jacobi(&a).unwrap();
        let sigma1 = svd.singular_values.first().copied().unwrap_or(0.0);
        let fro = a.frobenius_norm();
        let max_abs = a.max_abs();
        prop_assert!(max_abs <= sigma1 + 1e-9);
        prop_assert!(sigma1 <= fro + 1e-9);
        let bound = ((a.rows() * a.cols()) as f64).sqrt() * max_abs;
        prop_assert!(fro <= bound + 1e-9);
    }
}
