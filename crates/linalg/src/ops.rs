//! Matrix multiplication kernels and related products.
//!
//! The hot loop of the LRM decomposition (Algorithm 1 of the paper) is a
//! handful of GEMMs per iteration (`B·L`, `BᵀB·L`, `W·Lᵀ`, `L·Lᵀ`, …), so
//! these kernels are cache-blocked and, above a size threshold, split across
//! threads with `std::thread::scope`.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Row-block size for the blocked kernel.
const BLOCK: usize = 64;
/// Flop threshold (`m * n * k`) above which the parallel kernel is used.
const PAR_THRESHOLD: usize = 1 << 21;

/// `C = A · B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    if m * n * k >= PAR_THRESHOLD {
        matmul_parallel(a, b, &mut c);
    } else {
        matmul_block(a, b, c.as_mut_slice(), 0, m);
    }
    Ok(c)
}

/// Sequential blocked kernel over rows `r0..r1` of the output.
///
/// Uses the i-k-j loop order so the inner loop streams through contiguous
/// rows of `B` and `C`, which lets LLVM vectorize it.
///
/// The `aip == 0.0` skip is a deliberate, benchmark-justified choice. It
/// sits on the `p` loop — *outside* the vectorized j loop — so its cost is
/// one predictable branch per `n` multiply-adds. Criterion A/B on this
/// container (512³ GEMM, `matmul_sparsity` group in
/// `lrm-bench/benches/linalg_kernels.rs`): dense input 31.5 ms with the
/// skip vs 31.4 ms without (within noise), while a 0/1 range-workload
/// input drops 31.7 → 11.1 ms (2.9×) and a 5%-filled input 33.4 → 2.4 ms
/// (14×). Structured operands should still prefer the dedicated
/// [`crate::operator::CsrOp`]/[`crate::operator::IntervalsOp`] kernels
/// (which also skip the densification entirely); this branch is the
/// safety net for sparse matrices that reach the dense path, at zero
/// dense-input cost.
fn matmul_block(a: &Matrix, b: &Matrix, c: &mut [f64], r0: usize, r1: usize) {
    let k = a.cols();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for ib in (r0..r1).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(r1);
        for pb in (0..k).step_by(BLOCK) {
            let pmax = (pb + BLOCK).min(k);
            for i in ib..imax {
                let c_row = &mut c[(i - r0) * n..(i - r0 + 1) * n];
                let a_row = &a_data[i * k..(i + 1) * k];
                for p in pb..pmax {
                    let aip = a_row[p];
                    if aip == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aip * bv;
                    }
                }
            }
        }
    }
}

/// Parallel kernel: splits output rows across threads.
fn matmul_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = a.rows();
    let n = b.cols();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(m)
        .max(1);
    let rows_per = m.div_ceil(threads);
    let chunks: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(rows_per * n).collect();
    std::thread::scope(|scope| {
        for (t, chunk) in chunks.into_iter().enumerate() {
            let r0 = t * rows_per;
            let r1 = (r0 + chunk.len() / n).min(m);
            scope.spawn(move || {
                matmul_block(a, b, chunk, r0, r1);
            });
        }
    });
}

/// `y = A · x` for a dense vector `x`.
pub fn mul_vec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "mul_vec",
            left: a.shape(),
            right: (x.len(), 1),
        });
    }
    Ok(a.rows_iter()
        .map(|row| row.iter().zip(x.iter()).map(|(a, b)| a * b).sum())
        .collect())
}

/// `y = Aᵀ · x`.
pub fn tr_mul_vec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != x.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "tr_mul_vec",
            left: a.shape(),
            right: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.cols()];
    for (row, &xi) in a.rows_iter().zip(x.iter()) {
        if xi == 0.0 {
            continue;
        }
        for (yj, &aij) in y.iter_mut().zip(row.iter()) {
            *yj += xi * aij;
        }
    }
    Ok(y)
}

/// `C = Aᵀ · B` without materializing `Aᵀ`.
pub fn tr_mul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "tr_mul",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let m = a.cols();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    // (AᵀB)_{ij} = Σ_p A_{pi} B_{pj}: stream over rows of A and B together.
    for (a_row, b_row) in a.rows_iter().zip(b.rows_iter()) {
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = c.row_mut(i);
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
    Ok(c)
}

/// `C = A · Bᵀ` without materializing `Bᵀ`.
pub fn mul_tr(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "mul_tr",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for (i, a_row) in a.rows_iter().enumerate() {
        let c_row = c.row_mut(i);
        for (j, b_row) in b.rows_iter().enumerate() {
            c_row[j] = dot(a_row, b_row);
        }
    }
    Ok(c)
}

/// Gram matrix `AᵀA` (symmetric positive semidefinite).
pub fn gram(a: &Matrix) -> Matrix {
    tr_mul(a, a).expect("gram: shapes always agree")
}

/// `tr(AᵀB)`, the Frobenius inner product `⟨A, B⟩`.
pub fn frob_inner(a: &Matrix, b: &Matrix) -> Result<f64> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch {
            op: "frob_inner",
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| x * y)
        .sum())
}

/// Dense dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so this module does not depend on `rand`.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_matches_naive_random() {
        for &(m, k, n) in &[(5, 7, 3), (17, 33, 9), (64, 65, 66), (130, 40, 70)] {
            let a = pseudo_random(m, k, (m * k) as u64);
            let b = pseudo_random(k, n, (k * n + 7) as u64);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-10),
                "blocked GEMM disagrees with naive for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // 160^3 = 4.1M flops > PAR_THRESHOLD, exercising the threaded kernel.
        let a = pseudo_random(160, 160, 1);
        let b = pseudo_random(160, 160, 2);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            matmul(&a, &b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random(8, 8, 3);
        let i = Matrix::identity(8);
        assert!(matmul(&a, &i).unwrap().approx_eq(&a, 1e-12));
        assert!(matmul(&i, &a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn tr_mul_and_mul_tr_match_explicit_transpose() {
        let a = pseudo_random(13, 7, 4);
        let b = pseudo_random(13, 5, 5);
        let expected = matmul(&a.transpose(), &b).unwrap();
        assert!(tr_mul(&a, &b).unwrap().approx_eq(&expected, 1e-11));

        let c = pseudo_random(6, 9, 6);
        let d = pseudo_random(4, 9, 7);
        let expected2 = matmul(&c, &d.transpose()).unwrap();
        assert!(mul_tr(&c, &d).unwrap().approx_eq(&expected2, 1e-11));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = pseudo_random(10, 4, 8);
        let g = gram(&a);
        assert!(g.approx_eq(&g.transpose(), 1e-12));
        for j in 0..4 {
            let col_norm_sq: f64 = a.col(j).iter().map(|x| x * x).sum();
            assert!((g.get(j, j) - col_norm_sq).abs() < 1e-10);
        }
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = pseudo_random(9, 6, 9);
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let y = mul_vec(&a, &x).unwrap();
        let y2 = matmul(&a, &Matrix::col_vector(&x)).unwrap();
        for i in 0..9 {
            assert!((y[i] - y2.get(i, 0)).abs() < 1e-11);
        }
        let yt = tr_mul_vec(&a, &[1.0; 9]).unwrap();
        let col_sums: Vec<f64> = (0..6).map(|j| a.col(j).iter().sum()).collect();
        for j in 0..6 {
            assert!((yt[j] - col_sums[j]).abs() < 1e-11);
        }
    }

    #[test]
    fn frob_inner_matches_trace() {
        let a = pseudo_random(5, 5, 10);
        let b = pseudo_random(5, 5, 11);
        let lhs = frob_inner(&a, &b).unwrap();
        let rhs = matmul(&a.transpose(), &b).unwrap().trace().unwrap();
        assert!((lhs - rhs).abs() < 1e-10);
    }
}
