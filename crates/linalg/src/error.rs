//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(left, right)` dims.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix was singular to working precision.
    Singular,
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite,
    /// An iterative method did not converge within its iteration budget.
    NonConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was invalid (empty matrix, NaN entries, zero dimension…).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "expected a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NonConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
