#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numerical kernels

//! Dense linear algebra substrate for the Low-Rank Mechanism reproduction.
//!
//! The LRM paper (Yuan et al., VLDB 2012) was evaluated in Matlab; this crate
//! provides the numerical kernels the paper relies on, implemented from
//! scratch:
//!
//! * a dense row-major [`Matrix`] with the usual arithmetic,
//! * structure-aware workload operators ([`operator`]): the [`MatrixOp`]
//!   trait with dense, CSR-sparse, and implicit interval (range/prefix)
//!   implementations, so structured workloads never have to densify,
//! * cache-blocked and multi-threaded matrix multiplication ([`ops`]),
//! * LU / Cholesky / Householder-QR factorizations ([`decomp`]),
//! * symmetric eigendecomposition (cyclic Jacobi and tridiagonal QL),
//! * singular value decomposition (one-sided Jacobi and a Gram-matrix
//!   fast path) together with numerical-rank detection — the paper calls
//!   the singular values of the workload `W` its "eigenvalues".
//!
//! Everything is `f64`; the matrices involved in the paper's experiments are
//! at most a few thousand rows/columns, for which dense kernels are the right
//! tool.
//!
//! # Example
//!
//! ```
//! use lrm_linalg::{Matrix, decomp::svd::Svd};
//!
//! let a = Matrix::from_rows(&[&[4.0, 0.0], &[3.0, -5.0]]);
//! let svd = Svd::compute(&a).unwrap();
//! let reconstructed = svd.reconstruct();
//! assert!(a.approx_eq(&reconstructed, 1e-10));
//! ```

pub mod decomp;
pub mod error;
pub mod io;
pub mod matrix;
pub mod operator;
pub mod ops;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use operator::{CsrOp, DenseOp, IntervalsOp, MatrixOp};

/// Machine epsilon for `f64`, re-exported for tolerance computations.
pub const EPS: f64 = f64::EPSILON;
