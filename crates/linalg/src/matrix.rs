//! Dense row-major matrix of `f64`.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// The workloads in the LRM paper are dense (WDiscrete fills every entry,
/// WRelated is a product of dense Gaussian factors), so a dense
/// representation is the natural fit. Storage is a single contiguous
/// `Vec<f64>` with `data[i * cols + j]` holding entry `(i, j)`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero; use [`Matrix::try_zeros`] for a
    /// fallible constructor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::try_zeros(rows, cols).expect("matrix dimensions must be non-zero")
    }

    /// Fallible variant of [`Matrix::zeros`].
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "matrix dimensions must be positive, got {rows}x{cols}"
            )));
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input or an empty row set.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows: rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "matrix dimensions must be positive, got {rows}x{cols}"
            )));
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "buffer of length {} cannot fill a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Builds a column vector (`n`-by-1 matrix) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor with bounds checking in debug builds only.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry setter with bounds checking in debug builds only.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.rows);
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Overwrites row `i` with `v`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.cols);
        self.row_mut(i).copy_from_slice(v);
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * other`, in place.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        self.check_same_shape("axpy", other)?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of diagonal entries. Errors on non-square input.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// Frobenius norm: `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared sum of all entries — the paper's query scale `Φ` when applied
    /// to `B` (Definition 1).
    pub fn squared_sum(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Absolute column sums — `Δ(B, L)` when applied to `L` takes the max
    /// of these (Definition 2).
    pub fn col_abs_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (s, &x) in sums.iter_mut().zip(row.iter()) {
                *s += x.abs();
            }
        }
        sums
    }

    /// Maximum absolute column sum, i.e. the induced 1-norm.
    pub fn max_col_abs_sum(&self) -> f64 {
        self.col_abs_sums().into_iter().fold(0.0_f64, f64::max)
    }

    /// Maximum absolute row sum, i.e. the induced infinity-norm.
    pub fn max_row_abs_sum(&self) -> f64 {
        self.rows_iter()
            .map(|r| r.iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Extracts the contiguous submatrix with rows `r0..r1`, cols `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<Matrix> {
        if r1 > self.rows || c1 > self.cols || r0 >= r1 || c0 >= c1 {
            return Err(LinalgError::InvalidArgument(format!(
                "submatrix bounds rows {r0}..{r1}, cols {c0}..{c1} invalid for {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        Ok(out)
    }

    /// Stacks `self` on top of `other` (same column count).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `other` (same row count).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// True when every pairwise entry difference is within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// True when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Main diagonal as a vector (works for rectangular matrices too).
    pub fn diag(&self) -> Vec<f64> {
        let k = self.rows.min(self.cols);
        (0..k).map(|i| self.data[i * self.cols + i]).collect()
    }

    fn check_same_shape(&self, op: &'static str, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix += shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix -= shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Matrix product; delegates to the blocked kernel in [`crate::ops`].
    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::ops::matmul(self, rhs).expect("matrix product shape mismatch")
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().enumerate().take(max_rows) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate().take(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:10.4}")?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(Matrix::try_zeros(0, 3).is_err());
        assert!(Matrix::try_zeros(3, 0).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.transpose(), m);
        assert_eq!(m.get(2, 3), t.get(3, 2));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let sum = &a + &b;
        assert_eq!(sum, Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]));
        let diff = &b - &a;
        assert_eq!(diff, Matrix::filled(2, 2, 4.0));
        let scaled = &a * 2.0;
        assert_eq!(scaled, Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        let neg = -&a;
        assert_eq!(neg.get(0, 0), -1.0);
    }

    #[test]
    fn norms_and_sums() {
        let m = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.squared_sum(), 25.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.col_abs_sums(), vec![3.0, 4.0]);
        assert_eq!(m.max_col_abs_sum(), 4.0);
        assert_eq!(m.max_row_abs_sum(), 7.0);
    }

    #[test]
    fn stack_and_submatrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);

        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);

        let s = v.submatrix(0, 2, 1, 2).unwrap();
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.get(1, 0), 4.0);
        assert!(v.submatrix(0, 3, 0, 1).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 0.5);
        let c = Matrix::zeros(3, 3);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn diag_and_from_diag() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.get(0, 1), 0.0);
        let rect = Matrix::from_fn(2, 4, |i, j| if i == j { 7.0 } else { 0.0 });
        assert_eq!(rect.diag(), vec![7.0, 7.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f64::NAN);
        assert!(m.has_non_finite());
    }
}
