//! Structure-aware workload operators.
//!
//! The batch workloads the LRM paper targets — range, prefix, marginal,
//! WDiscrete — are extremely structured, yet a dense `m×n` [`Matrix`]
//! forgets all of it. [`MatrixOp`] is the abstraction every consumer of a
//! workload matrix `W` programs against instead: it exposes exactly the
//! products the mechanisms and the Algorithm-1 solver need (`W·x`, `Wᵀ·y`,
//! `W·R`, `L·W`, norms, column sums) so each representation can answer
//! them at its natural cost:
//!
//! * [`DenseOp`] — wraps a dense [`Matrix`]; every product is the existing
//!   cache-blocked GEMM. `O(m·n)` storage, `O(m·n·k)` products.
//! * [`CsrOp`] — compressed sparse rows; products stream the non-zeros
//!   (`O(nnz·k)`), with the same row-blocked `std::thread::scope`
//!   parallelism as the dense kernels above a flop threshold.
//! * [`IntervalsOp`] — rows that are contiguous `[lo, hi]` indicator
//!   ranges (range and prefix workloads). Products run in
//!   `O((m + n)·k)` via running sums — no per-entry work at all, and
//!   `O(m)` storage regardless of the domain size.
//!
//! [`MatrixOp::to_dense`] is the escape hatch back to a dense matrix. For
//! the structured implementations it increments a global **densification
//! counter** ([`densification_count`]) so tests can assert that a code
//! path — e.g. the whole LRM compile pipeline — never silently fell back
//! to `O(m·n)` materialization.

use crate::matrix::Matrix;
use crate::ops;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Flop threshold above which [`CsrOp`] products split rows across threads
/// (mirrors `PAR_THRESHOLD` in [`crate::ops`]).
const CSR_PAR_THRESHOLD: usize = 1 << 21;

/// How many times a structured (non-dense) operator has been densified via
/// [`MatrixOp::to_dense`] since process start (or the last
/// [`reset_densification_count`]).
static DENSIFICATIONS: AtomicU64 = AtomicU64::new(0);

/// Global count of structured-operator densifications. [`DenseOp`] does
/// not count — handing out a matrix that already exists is free.
pub fn densification_count() -> u64 {
    DENSIFICATIONS.load(Ordering::Relaxed)
}

/// Resets the densification counter to zero. Intended for tests that
/// assert a pipeline stays on the structured path; such tests must run in
/// their own process (integration-test binary) — the counter is global.
pub fn reset_densification_count() {
    DENSIFICATIONS.store(0, Ordering::Relaxed);
}

fn count_densification() {
    DENSIFICATIONS.fetch_add(1, Ordering::Relaxed);
}

/// A (possibly implicit) real `rows × cols` matrix, exposed through the
/// products the LRM pipeline needs. See the [module docs](self) for the
/// provided implementations and their costs.
///
/// Implementations must be [`Send`] + [`Sync`] — workloads share their
/// operator across threads via `Arc`.
pub trait MatrixOp: fmt::Debug + Send + Sync {
    /// Number of rows `m` (queries).
    fn rows(&self) -> usize;

    /// Number of columns `n` (domain size).
    fn cols(&self) -> usize;

    /// `(rows, cols)` pair.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// `y = W·x` for a dense vector `x` of length `cols`.
    fn matvec(&self, x: &[f64]) -> Vec<f64>;

    /// `y = Wᵀ·x` for a dense vector `x` of length `rows`.
    fn matvec_t(&self, x: &[f64]) -> Vec<f64>;

    /// `C = W·R` for a dense `cols × k` matrix `R`; returns `rows × k`.
    fn apply_right(&self, rhs: &Matrix) -> Matrix;

    /// `C = L·W` for a dense `k × rows` matrix `L`; returns `k × cols`.
    fn apply_left(&self, lhs: &Matrix) -> Matrix;

    /// `C = W·Rᵀ` for a dense `k × cols` matrix `R`; returns `rows × k` —
    /// the `W·Lᵀ` product of the Eq. 9 B-update. Mirrors
    /// [`crate::ops::mul_tr`]; the dense implementation *is* that kernel,
    /// so the dense path's floating-point behavior is unchanged.
    fn mul_tr(&self, rhs: &Matrix) -> Matrix {
        self.apply_right(&rhs.transpose())
    }

    /// `C = Lᵀ·W` for a dense `rows × k` matrix `L`; returns `k × cols` —
    /// the `Bᵀ·W` product of the Formula 10 linear term. Mirrors
    /// [`crate::ops::tr_mul`].
    fn tr_mul(&self, lhs: &Matrix) -> Matrix {
        self.apply_left(&lhs.transpose())
    }

    /// `Σ_ij W_ij²` — the squared Frobenius norm.
    fn frobenius_sq(&self) -> f64;

    /// Per-column absolute sums `Σ_i |W_ij|` — the L1-sensitivity vector.
    fn col_abs_sums(&self) -> Vec<f64>;

    /// Writes row `i` densely into `out` (length `cols`, fully
    /// overwritten). This is the generic row access the fallbacks, the
    /// fingerprint, and logical comparison build on.
    fn fill_row(&self, i: usize, out: &mut [f64]);

    /// `out += W` for a dense `rows × cols` matrix — the building block of
    /// residual computation (`W − B·L` is `-(B·L) + W`) that never
    /// materializes `W` itself.
    fn add_to(&self, out: &mut Matrix) {
        debug_assert_eq!(out.shape(), self.shape());
        let n = self.cols();
        let mut buf = vec![0.0; n];
        for i in 0..self.rows() {
            self.fill_row(i, &mut buf);
            let row = out.row_mut(i);
            for (o, &v) in row.iter_mut().zip(buf.iter()) {
                *o += v;
            }
        }
    }

    /// Number of stored (structurally non-zero) entries; `m·n` for dense.
    fn nnz(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Coarse structural class tag ("dense", "sparse", "intervals") used
    /// to partition similarity searches over cached strategies: seeding a
    /// warm start across representations is legal but rarely profitable,
    /// so the index only compares like with like.
    fn structure_class(&self) -> &'static str {
        "dense"
    }

    /// Escape hatch: materializes the dense matrix. Structured
    /// implementations bump the global [`densification_count`].
    fn to_dense(&self) -> Matrix {
        count_densification();
        let (m, n) = self.shape();
        let mut out = Matrix::zeros(m, n);
        let mut buf = vec![0.0; n];
        for i in 0..m {
            self.fill_row(i, &mut buf);
            out.row_mut(i).copy_from_slice(&buf);
        }
        out
    }

    /// The column Gram matrix `Wᵀ·W` (`n×n`), accumulated by streaming
    /// rows (`Σ_i w_i·w_iᵀ`, skipping zeros so sparse rows cost
    /// `O(nnz_row²)`) — never densifying `W` itself.
    fn gram_cols(&self) -> Matrix {
        let (m, n) = self.shape();
        let mut g = Matrix::zeros(n, n);
        let mut buf = vec![0.0; n];
        for i in 0..m {
            self.fill_row(i, &mut buf);
            for (j, &vj) in buf.iter().enumerate() {
                if vj == 0.0 {
                    continue;
                }
                let row = g.row_mut(j);
                for (k, &vk) in buf.iter().enumerate() {
                    if vk != 0.0 {
                        row[k] += vj * vk;
                    }
                }
            }
        }
        g
    }

    /// The Gram matrix of the smaller side without densifying `W`:
    /// `W·Wᵀ` (`m×m`) when `rows ≤ cols`, else `Wᵀ·W` (`n×n`).
    /// Returns `(gram, rows_side)` with `rows_side == true` for `W·Wᵀ`.
    ///
    /// This is what makes the workload SVD (rank detection, the Lemma 3
    /// initializer) operator-aware: an eigendecomposition of the small
    /// Gram plus `min(m,n)` structured matvecs replaces the dense SVD.
    fn gram_small(&self) -> (Matrix, bool) {
        let (m, n) = self.shape();
        if m <= n {
            // Column j of W·Wᵀ is W · (row j of W).
            let mut g = Matrix::zeros(m, m);
            let mut buf = vec![0.0; n];
            for j in 0..m {
                self.fill_row(j, &mut buf);
                let col = self.matvec(&buf);
                g.set_col(j, &col);
            }
            (g, true)
        } else {
            (self.gram_cols(), false)
        }
    }
}

/// Logical (entry-wise) equality of two operators, compared row by row
/// with `O(cols)` scratch — never densifying either side. This is the
/// collision check the engine's strategy cache uses in place of a dense
/// matrix compare.
pub fn op_logical_eq(a: &dyn MatrixOp, b: &dyn MatrixOp) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    let n = a.cols();
    let mut ra = vec![0.0; n];
    let mut rb = vec![0.0; n];
    for i in 0..a.rows() {
        a.fill_row(i, &mut ra);
        b.fill_row(i, &mut rb);
        // Bit-level compare, matching the fingerprint's notion of identity
        // (distinguishes 0.0 from -0.0, as the hash does).
        if ra
            .iter()
            .zip(rb.iter())
            .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Coarse spec signatures
// ---------------------------------------------------------------------------

/// A coarse, shape-robust signature of where a workload puts its mass
/// along the domain: the per-column absolute sums aggregated into
/// `buckets` equal-width bins and normalized to sum 1 (all-zero
/// workloads return all zeros). Two near-duplicate workloads — the same
/// dashboard panel at 33 cuts vs 34 — land on nearly identical profiles
/// even though their fingerprints differ, which is what makes the
/// profile usable as a similarity key for warm-starting the ALM solver
/// from a cached decomposition. Cost is one `col_abs_sums` pass
/// (`O(nnz)` structured), never a densification.
pub fn coarse_column_profile(op: &dyn MatrixOp, buckets: usize) -> Vec<f64> {
    assert!(buckets > 0, "profile needs at least one bucket");
    let n = op.cols();
    let mut profile = vec![0.0; buckets];
    if n == 0 {
        return profile;
    }
    let sums = op.col_abs_sums();
    for (j, &s) in sums.iter().enumerate() {
        // Equal-width bins over the domain; j·buckets/n is exact in f64
        // for any realistic n and keeps bucket edges deterministic.
        let bucket = (j * buckets / n).min(buckets - 1);
        profile[bucket] += s;
    }
    let total: f64 = profile.iter().sum();
    if total > 0.0 && total.is_finite() {
        for p in profile.iter_mut() {
            *p /= total;
        }
    }
    profile
}

/// L1 distance between two [`coarse_column_profile`] signatures. Both
/// inputs are normalized to sum 1, so the distance lives in `[0, 2]`;
/// profiles of different lengths are incomparable and return `+∞`.
pub fn profile_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
}

// ---------------------------------------------------------------------------
// DenseOp
// ---------------------------------------------------------------------------

/// [`MatrixOp`] over an explicit dense [`Matrix`]; all products delegate to
/// the cache-blocked kernels in [`crate::ops`].
///
/// The matrix is held behind an `Arc` so callers that need the dense form
/// anyway (e.g. `Workload::matrix`) can share it without a copy.
#[derive(Debug, Clone)]
pub struct DenseOp {
    matrix: std::sync::Arc<Matrix>,
}

impl DenseOp {
    /// Wraps a dense matrix.
    pub fn new(matrix: Matrix) -> Self {
        Self {
            matrix: std::sync::Arc::new(matrix),
        }
    }

    /// Wraps an already-shared dense matrix.
    pub fn shared(matrix: std::sync::Arc<Matrix>) -> Self {
        Self { matrix }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The shared handle to the wrapped matrix.
    pub fn matrix_arc(&self) -> std::sync::Arc<Matrix> {
        std::sync::Arc::clone(&self.matrix)
    }
}

impl MatrixOp for DenseOp {
    fn rows(&self) -> usize {
        self.matrix.rows()
    }

    fn cols(&self) -> usize {
        self.matrix.cols()
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        ops::mul_vec(&self.matrix, x).expect("operator matvec shape")
    }

    fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        ops::tr_mul_vec(&self.matrix, x).expect("operator matvec_t shape")
    }

    fn apply_right(&self, rhs: &Matrix) -> Matrix {
        ops::matmul(&self.matrix, rhs).expect("operator apply_right shape")
    }

    fn apply_left(&self, lhs: &Matrix) -> Matrix {
        ops::matmul(lhs, &self.matrix).expect("operator apply_left shape")
    }

    fn mul_tr(&self, rhs: &Matrix) -> Matrix {
        ops::mul_tr(&self.matrix, rhs).expect("operator mul_tr shape")
    }

    fn tr_mul(&self, lhs: &Matrix) -> Matrix {
        ops::tr_mul(lhs, &self.matrix).expect("operator tr_mul shape")
    }

    fn frobenius_sq(&self) -> f64 {
        self.matrix.squared_sum()
    }

    fn col_abs_sums(&self) -> Vec<f64> {
        self.matrix.col_abs_sums()
    }

    fn fill_row(&self, i: usize, out: &mut [f64]) {
        out.copy_from_slice(self.matrix.row(i));
    }

    fn add_to(&self, out: &mut Matrix) {
        out.axpy(1.0, &self.matrix).expect("operator add_to shape");
    }

    /// A dense operator's matrix already exists — no densification is
    /// counted.
    fn to_dense(&self) -> Matrix {
        (*self.matrix).clone()
    }

    fn gram_cols(&self) -> Matrix {
        ops::gram(&self.matrix)
    }

    fn gram_small(&self) -> (Matrix, bool) {
        let (m, n) = self.matrix.shape();
        if m <= n {
            (
                ops::mul_tr(&self.matrix, &self.matrix).expect("gram shape"),
                true,
            )
        } else {
            (ops::gram(&self.matrix), false)
        }
    }
}

// ---------------------------------------------------------------------------
// CsrOp
// ---------------------------------------------------------------------------

/// Compressed-sparse-row storage: `row_ptr[i]..row_ptr[i+1]` indexes the
/// `(col_idx, values)` pairs of row `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrOp {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrOp {
    /// Builds CSR storage from per-row `(column, value)` lists. Columns
    /// within a row must be strictly increasing; `+0.0` values are
    /// dropped. `-0.0` is kept as an explicit entry: `fill_row` must
    /// reproduce the logical matrix *bit-exactly* (the fingerprint and
    /// the cache's logical-equality check compare IEEE bit patterns), and
    /// an implicit zero reads back as `+0.0`.
    ///
    /// # Panics
    /// Panics on out-of-range or non-increasing column indices, or a zero
    /// dimension.
    pub fn from_row_entries(rows: usize, cols: usize, entries: &[Vec<(usize, f64)>]) -> Self {
        assert!(rows > 0 && cols > 0, "CsrOp dimensions must be positive");
        assert_eq!(entries.len(), rows, "one entry list per row");
        assert!(cols <= u32::MAX as usize, "column index must fit in u32");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in entries {
            let mut last: Option<usize> = None;
            for &(c, v) in row {
                assert!(c < cols, "column {c} out of range for {cols} columns");
                assert!(
                    last.is_none_or(|p| c > p),
                    "columns within a row must be strictly increasing"
                );
                last = Some(c);
                if v.to_bits() != 0.0f64.to_bits() {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Compresses a dense matrix, dropping `+0.0` entries (`-0.0` is kept
    /// explicitly so the round trip is bit-exact; see
    /// [`CsrOp::from_row_entries`]).
    pub fn from_dense(matrix: &Matrix) -> Self {
        let entries: Vec<Vec<(usize, f64)>> = matrix
            .rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v.to_bits() != 0.0f64.to_bits())
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect();
        Self::from_row_entries(matrix.rows(), matrix.cols(), &entries)
    }

    /// `(col_idx, values)` slices of row `i`.
    #[inline]
    fn row_entries(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// SpMM over output rows `r0..r1`, writing into `out` (a `k`-wide
    /// row-major slab for those rows).
    fn spmm_rows(&self, rhs: &Matrix, out: &mut [f64], r0: usize, r1: usize) {
        let k = rhs.cols();
        for i in r0..r1 {
            let out_row = &mut out[(i - r0) * k..(i - r0 + 1) * k];
            let (cols, vals) = self.row_entries(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let rhs_row = rhs.row(c as usize);
                for (o, &r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += v * r;
                }
            }
        }
    }
}

impl MatrixOp for CsrOp {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn structure_class(&self) -> &'static str {
        "sparse"
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row_entries(i);
                cols.iter()
                    .zip(vals.iter())
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row_entries(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                y[c as usize] += v * xi;
            }
        }
        y
    }

    /// Row-blocked SpMM, split across threads above a flop threshold —
    /// the sparsity-aware sibling of the dense parallel GEMM in
    /// [`crate::ops`].
    fn apply_right(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(rhs.rows(), self.cols);
        let k = rhs.cols();
        let mut out = Matrix::zeros(self.rows, k);
        let work = self.values.len() * k;
        if work >= CSR_PAR_THRESHOLD {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
                .min(self.rows)
                .max(1);
            let rows_per = self.rows.div_ceil(threads);
            let chunks: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(rows_per * k).collect();
            std::thread::scope(|scope| {
                for (t, chunk) in chunks.into_iter().enumerate() {
                    let r0 = t * rows_per;
                    let r1 = (r0 + chunk.len() / k).min(self.rows);
                    scope.spawn(move || {
                        self.spmm_rows(rhs, chunk, r0, r1);
                    });
                }
            });
        } else {
            self.spmm_rows(rhs, out.as_mut_slice(), 0, self.rows);
        }
        out
    }

    fn apply_left(&self, lhs: &Matrix) -> Matrix {
        debug_assert_eq!(lhs.cols(), self.rows);
        let k = lhs.rows();
        let mut out = Matrix::zeros(k, self.cols);
        // (L·W)[t, :] = Σ_i L[t, i] · W[i, :] — stream W's rows once per
        // output row.
        for t in 0..k {
            let l_row = lhs.row(t);
            let out_row = out.row_mut(t);
            for (i, &lv) in l_row.iter().enumerate() {
                if lv == 0.0 {
                    continue;
                }
                let (cols, vals) = self.row_entries(i);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    out_row[c as usize] += lv * v;
                }
            }
        }
        out
    }

    fn frobenius_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    fn col_abs_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (&c, &v) in self.col_idx.iter().zip(self.values.iter()) {
            sums[c as usize] += v.abs();
        }
        sums
    }

    fn fill_row(&self, i: usize, out: &mut [f64]) {
        out.fill(0.0);
        let (cols, vals) = self.row_entries(i);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            out[c as usize] = v;
        }
    }

    fn add_to(&self, out: &mut Matrix) {
        debug_assert_eq!(out.shape(), self.shape());
        for i in 0..self.rows {
            let (cols, vals) = self.row_entries(i);
            let row = out.row_mut(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                row[c as usize] += v;
            }
        }
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }
}

// ---------------------------------------------------------------------------
// IntervalsOp
// ---------------------------------------------------------------------------

/// Implicit operator for interval-indicator workloads: row `i` is 1 on the
/// inclusive column range `[lo_i, hi_i]` and 0 elsewhere. Range-count and
/// prefix-sum workloads are exactly this shape.
///
/// Storage is `O(m)`; every product runs through running sums in
/// `O((m + n)·k)` — at `n = 8192` that is three orders of magnitude fewer
/// operations than the dense GEMM, and the reason the scaling sweep can
/// push the LRM compile past the former dense ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalsOp {
    /// Inclusive `(lo, hi)` per row.
    intervals: Vec<(u32, u32)>,
    cols: usize,
}

impl IntervalsOp {
    /// Builds the operator from inclusive `(lo, hi)` ranges.
    ///
    /// # Panics
    /// Panics on an empty row set, a zero domain, or `lo > hi` /
    /// `hi >= cols`.
    pub fn new(cols: usize, intervals: Vec<(usize, usize)>) -> Self {
        assert!(cols > 0, "IntervalsOp needs a positive domain");
        assert!(!intervals.is_empty(), "IntervalsOp needs at least one row");
        assert!(cols <= u32::MAX as usize, "domain must fit in u32");
        let intervals = intervals
            .into_iter()
            .map(|(lo, hi)| {
                assert!(
                    lo <= hi && hi < cols,
                    "invalid interval [{lo}, {hi}] for {cols} columns"
                );
                (lo as u32, hi as u32)
            })
            .collect();
        Self { intervals, cols }
    }

    /// The prefix-sum workload: rows `[0, end_i]` for the given inclusive
    /// ends.
    pub fn prefixes(cols: usize, ends: Vec<usize>) -> Self {
        Self::new(cols, ends.into_iter().map(|e| (0, e)).collect())
    }

    /// The inclusive `(lo, hi)` ranges, one per row.
    pub fn intervals(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (lo as usize, hi as usize))
    }
}

impl MatrixOp for IntervalsOp {
    fn rows(&self) -> usize {
        self.intervals.len()
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn structure_class(&self) -> &'static str {
        "intervals"
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        // prefix[j] = x_0 + … + x_{j-1}; each row is one subtraction.
        let mut prefix = Vec::with_capacity(self.cols + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &v in x {
            acc += v;
            prefix.push(acc);
        }
        self.intervals
            .iter()
            .map(|&(lo, hi)| prefix[hi as usize + 1] - prefix[lo as usize])
            .collect()
    }

    fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.intervals.len());
        // Difference array: add x_i on [lo, hi], one prefix pass at the end.
        let mut diff = vec![0.0; self.cols + 1];
        for (&(lo, hi), &xi) in self.intervals.iter().zip(x.iter()) {
            diff[lo as usize] += xi;
            diff[hi as usize + 1] -= xi;
        }
        let mut acc = 0.0;
        let mut y = Vec::with_capacity(self.cols);
        for &d in diff.iter().take(self.cols) {
            acc += d;
            y.push(acc);
        }
        y
    }

    fn apply_right(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(rhs.rows(), self.cols);
        let k = rhs.cols();
        // Column-wise prefix sums of R: P[j] = Σ_{t<j} R[t, :].
        let mut prefix = Matrix::zeros(self.cols + 1, k);
        for j in 0..self.cols {
            let (done, rest) = prefix.as_mut_slice().split_at_mut((j + 1) * k);
            let prev = &done[j * k..(j + 1) * k];
            let next = &mut rest[..k];
            for ((nx, &pv), &rv) in next.iter_mut().zip(prev.iter()).zip(rhs.row(j).iter()) {
                *nx = pv + rv;
            }
        }
        let mut out = Matrix::zeros(self.intervals.len(), k);
        for (i, &(lo, hi)) in self.intervals.iter().enumerate() {
            let top = prefix.row(hi as usize + 1).to_vec();
            let bot = prefix.row(lo as usize);
            let out_row = out.row_mut(i);
            for ((o, t), &b) in out_row.iter_mut().zip(top.iter()).zip(bot.iter()) {
                *o = t - b;
            }
        }
        out
    }

    fn apply_left(&self, lhs: &Matrix) -> Matrix {
        debug_assert_eq!(lhs.cols(), self.intervals.len());
        let k = lhs.rows();
        let mut out = Matrix::zeros(k, self.cols);
        // Each output row is a difference-array pass over that row of L.
        let mut diff = vec![0.0; self.cols + 1];
        for t in 0..k {
            diff.fill(0.0);
            for (&(lo, hi), &lv) in self.intervals.iter().zip(lhs.row(t).iter()) {
                diff[lo as usize] += lv;
                diff[hi as usize + 1] -= lv;
            }
            let mut acc = 0.0;
            for (o, &d) in out.row_mut(t).iter_mut().zip(diff.iter()) {
                acc += d;
                *o = acc;
            }
        }
        out
    }

    /// `W·Rᵀ` without materializing `Rᵀ`: row-wise prefix sums of `R`,
    /// then one subtraction per (interval, row-of-R) pair — `O((n + m)·k)`.
    fn mul_tr(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(rhs.cols(), self.cols);
        let k = rhs.rows();
        let m = self.intervals.len();
        let mut out = Matrix::zeros(m, k);
        let mut prefix = vec![0.0; self.cols + 1];
        for t in 0..k {
            let r_row = rhs.row(t);
            let mut acc = 0.0;
            for (p, &v) in prefix[1..].iter_mut().zip(r_row.iter()) {
                acc += v;
                *p = acc;
            }
            for (i, &(lo, hi)) in self.intervals.iter().enumerate() {
                out.row_mut(i)[t] = prefix[hi as usize + 1] - prefix[lo as usize];
            }
        }
        out
    }

    /// `Lᵀ·W` without materializing `Lᵀ`: one difference-array pass per
    /// column of `L` — `O((m + n)·k)`.
    fn tr_mul(&self, lhs: &Matrix) -> Matrix {
        debug_assert_eq!(lhs.rows(), self.intervals.len());
        let k = lhs.cols();
        let mut out = Matrix::zeros(k, self.cols);
        let mut diff = vec![0.0; self.cols + 1];
        for t in 0..k {
            diff.fill(0.0);
            for (&(lo, hi), l_row) in self.intervals.iter().zip(lhs.rows_iter()) {
                let lv = l_row[t];
                diff[lo as usize] += lv;
                diff[hi as usize + 1] -= lv;
            }
            let mut acc = 0.0;
            for (o, &d) in out.row_mut(t).iter_mut().zip(diff.iter()) {
                acc += d;
                *o = acc;
            }
        }
        out
    }

    fn frobenius_sq(&self) -> f64 {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as f64)
            .sum()
    }

    fn col_abs_sums(&self) -> Vec<f64> {
        let ones = vec![1.0; self.intervals.len()];
        self.matvec_t(&ones)
    }

    fn fill_row(&self, i: usize, out: &mut [f64]) {
        out.fill(0.0);
        let (lo, hi) = self.intervals[i];
        out[lo as usize..=hi as usize].fill(1.0);
    }

    fn add_to(&self, out: &mut Matrix) {
        debug_assert_eq!(out.shape(), self.shape());
        for (i, &(lo, hi)) in self.intervals.iter().enumerate() {
            for v in &mut out.row_mut(i)[lo as usize..=hi as usize] {
                *v += 1.0;
            }
        }
    }

    fn nnz(&self) -> usize {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as usize)
            .sum()
    }

    fn gram_small(&self) -> (Matrix, bool) {
        let m = self.intervals.len();
        if m <= self.cols {
            // (W·Wᵀ)_{ij} = |[lo_i, hi_i] ∩ [lo_j, hi_j]| — O(m²) directly.
            let mut g = Matrix::zeros(m, m);
            for i in 0..m {
                let (li, hi) = self.intervals[i];
                for j in i..m {
                    let (lj, hj) = self.intervals[j];
                    let lo = li.max(lj);
                    let hi_ = hi.min(hj);
                    let overlap = if lo <= hi_ {
                        (hi_ - lo + 1) as f64
                    } else {
                        0.0
                    };
                    g.set(i, j, overlap);
                    g.set(j, i, overlap);
                }
            }
            (g, true)
        } else {
            // Tall-and-thin interval workloads are rare; use the generic
            // row-streaming accumulation.
            let mut g = Matrix::zeros(self.cols, self.cols);
            for &(lo, hi) in &self.intervals {
                for j in lo as usize..=hi as usize {
                    let row = g.row_mut(j);
                    for v in &mut row[lo as usize..=hi as usize] {
                        *v += 1.0;
                    }
                }
            }
            (g, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn sparse_pattern(rows: usize, cols: usize, seed: u64) -> Matrix {
        let dense = pseudo_random(rows, cols, seed);
        dense.map(|v| if v > 0.6 { v } else { 0.0 })
    }

    fn interval_op(cols: usize, seed: u64, rows: usize) -> IntervalsOp {
        let mut state = seed | 1;
        let mut next = |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize % bound
        };
        let intervals: Vec<(usize, usize)> = (0..rows)
            .map(|_| {
                let a = next(cols);
                let b = next(cols);
                (a.min(b), a.max(b))
            })
            .collect();
        IntervalsOp::new(cols, intervals)
    }

    fn dense_of(op: &dyn MatrixOp) -> Matrix {
        let (m, n) = op.shape();
        let mut out = Matrix::zeros(m, n);
        let mut buf = vec![0.0; n];
        for i in 0..m {
            op.fill_row(i, &mut buf);
            out.row_mut(i).copy_from_slice(&buf);
        }
        out
    }

    fn check_against_dense(op: &dyn MatrixOp, tol: f64) {
        let (m, n) = op.shape();
        let reference = dense_of(op);
        let x: Vec<f64> = (0..n).map(|j| (j as f64) * 0.37 - 1.0).collect();
        let y: Vec<f64> = (0..m).map(|i| (i as f64) * -0.21 + 0.5).collect();

        let got = op.matvec(&x);
        let want = ops::mul_vec(&reference, &x).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() <= tol, "matvec {g} vs {w}");
        }

        let got_t = op.matvec_t(&y);
        let want_t = ops::tr_mul_vec(&reference, &y).unwrap();
        for (g, w) in got_t.iter().zip(want_t.iter()) {
            assert!((g - w).abs() <= tol, "matvec_t {g} vs {w}");
        }

        let rhs = pseudo_random(n, 3, 99);
        assert!(op
            .apply_right(&rhs)
            .approx_eq(&ops::matmul(&reference, &rhs).unwrap(), tol));

        let lhs = pseudo_random(3, m, 98);
        assert!(op
            .apply_left(&lhs)
            .approx_eq(&ops::matmul(&lhs, &reference).unwrap(), tol));

        assert!((op.frobenius_sq() - reference.squared_sum()).abs() <= tol);
        let cs = op.col_abs_sums();
        let want_cs = reference.col_abs_sums();
        for (g, w) in cs.iter().zip(want_cs.iter()) {
            assert!((g - w).abs() <= tol, "col_abs_sums {g} vs {w}");
        }

        let mut acc = pseudo_random(m, n, 55);
        let mut want_acc = acc.clone();
        op.add_to(&mut acc);
        want_acc.axpy(1.0, &reference).unwrap();
        assert!(acc.approx_eq(&want_acc, tol));

        let (g, rows_side) = op.gram_small();
        let want_g = if rows_side {
            ops::mul_tr(&reference, &reference).unwrap()
        } else {
            ops::gram(&reference)
        };
        assert!(g.approx_eq(&want_g, tol * (1.0 + reference.squared_sum())));
    }

    #[test]
    fn dense_op_matches_matrix() {
        let op = DenseOp::new(pseudo_random(7, 11, 1));
        check_against_dense(&op, 1e-12);
        assert_eq!(op.nnz(), 77);
    }

    #[test]
    fn csr_matches_dense_reference() {
        for &(m, n, seed) in &[(6usize, 9usize, 2u64), (13, 5, 3), (20, 20, 4)] {
            let pattern = sparse_pattern(m, n, seed);
            let op = CsrOp::from_dense(&pattern);
            check_against_dense(&op, 1e-12);
            assert!(op.nnz() < m * n, "pattern should be sparse");
        }
    }

    #[test]
    fn intervals_match_dense_reference() {
        for &(m, n, seed) in &[(5usize, 16usize, 5u64), (12, 8, 6), (40, 33, 7)] {
            let op = interval_op(n, seed, m);
            check_against_dense(&op, 1e-9);
        }
    }

    #[test]
    fn prefix_constructor() {
        let op = IntervalsOp::prefixes(6, vec![1, 3, 5]);
        let mut row = vec![0.0; 6];
        op.fill_row(0, &mut row);
        assert_eq!(row, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        op.fill_row(2, &mut row);
        assert_eq!(row, vec![1.0; 6]);
        assert_eq!(op.nnz(), 2 + 4 + 6);
    }

    #[test]
    fn densification_counter_counts_structured_only() {
        let before = densification_count();
        let dense = DenseOp::new(pseudo_random(3, 3, 8));
        let _ = dense.to_dense();
        assert_eq!(densification_count(), before, "DenseOp must not count");

        let op = IntervalsOp::new(4, vec![(0, 2)]);
        let d = op.to_dense();
        assert_eq!(d.row(0), &[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(densification_count(), before + 1);

        let csr = CsrOp::from_dense(&sparse_pattern(4, 4, 9));
        let _ = csr.to_dense();
        assert_eq!(densification_count(), before + 2);
    }

    #[test]
    fn logical_equality_across_representations() {
        let op = interval_op(12, 10, 7);
        let dense = DenseOp::new(dense_of(&op));
        let csr = CsrOp::from_dense(dense.matrix());
        assert!(op_logical_eq(&op, &dense));
        assert!(op_logical_eq(&dense, &csr));
        assert!(op_logical_eq(&op, &csr));

        let other = interval_op(12, 13, 7);
        assert!(!op_logical_eq(&op, &other));
        let smaller = IntervalsOp::new(12, vec![(0, 3)]);
        assert!(!op_logical_eq(&op, &smaller));
    }

    #[test]
    fn csr_preserves_negative_zero_bits() {
        // -0.0 must survive the CSR round trip bit-exactly: the
        // fingerprint and op_logical_eq compare IEEE bit patterns.
        let mut m = Matrix::zeros(2, 3);
        m.set(0, 1, -0.0);
        m.set(1, 2, 4.0);
        let csr = CsrOp::from_dense(&m);
        assert_eq!(csr.nnz(), 2, "-0.0 is an explicit entry, +0.0 is not");
        assert!(op_logical_eq(&csr, &DenseOp::new(m)));
    }

    #[test]
    fn csr_parallel_path_matches() {
        // Enough nnz·k to cross the parallel threshold.
        let pattern = sparse_pattern(600, 600, 11);
        let op = CsrOp::from_dense(&pattern);
        let rhs = pseudo_random(600, 16, 12);
        let got = op.apply_right(&rhs);
        let want = ops::matmul(&pattern, &rhs).unwrap();
        assert!(got.approx_eq(&want, 1e-9));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn csr_rejects_unsorted_columns() {
        let _ = CsrOp::from_row_entries(1, 4, &[vec![(2, 1.0), (1, 2.0)]]);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn intervals_reject_out_of_range() {
        let _ = IntervalsOp::new(4, vec![(2, 4)]);
    }

    #[test]
    fn coarse_profile_is_normalized_and_representation_independent() {
        let op = interval_op(64, 21, 15);
        let profile = coarse_column_profile(&op, 8);
        assert_eq!(profile.len(), 8);
        let total: f64 = profile.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "profile sums to {total}");

        // Same logical matrix through a different representation → same
        // profile (both reduce to the same col_abs_sums).
        let dense = DenseOp::new(dense_of(&op));
        let dense_profile = coarse_column_profile(&dense, 8);
        for (a, b) in profile.iter().zip(dense_profile.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn near_duplicate_profiles_are_close_distinct_shapes_are_far() {
        // The motivating case: the same range panel with one boundary
        // nudged lands within a small L1 distance, while a disjoint
        // panel is far away.
        let base = IntervalsOp::new(64, vec![(0, 15), (16, 31), (32, 47), (48, 63)]);
        let nudged = IntervalsOp::new(64, vec![(0, 16), (17, 31), (32, 47), (48, 63)]);
        let disjoint = IntervalsOp::new(64, vec![(0, 7), (0, 7), (0, 7), (0, 7)]);

        let g = 16;
        let pb = coarse_column_profile(&base, g);
        let pn = coarse_column_profile(&nudged, g);
        let pd = coarse_column_profile(&disjoint, g);
        let near = profile_distance(&pb, &pn);
        let far = profile_distance(&pb, &pd);
        assert!(near < 0.1, "near-duplicate distance {near}");
        assert!(far > 0.5, "disjoint distance {far}");
        assert!(near < far);
    }

    #[test]
    fn profile_distance_edge_cases() {
        assert_eq!(profile_distance(&[0.5, 0.5], &[0.5]), f64::INFINITY);
        assert_eq!(profile_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        // Zero workload: all-zero profile, finite distances.
        let zero = CsrOp::from_dense(&Matrix::zeros(3, 12));
        let p = coarse_column_profile(&zero, 4);
        assert_eq!(p, vec![0.0; 4]);
    }
}
