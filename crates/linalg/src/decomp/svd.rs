//! Singular value decomposition.
//!
//! The LRM paper leans on the SVD in three places:
//!
//! 1. `rank(W)` sizes the decomposition (`r = ratio · rank(W)`, Fig. 3);
//! 2. the Lemma 3 proof's feasible construction `B = √r·U·Σ`, `L = V/√r`
//!    seeds Algorithm 1;
//! 3. the singular values (the paper's "eigenvalues" λ₁…λᵣ) appear in the
//!    Lemma 3 upper bound, the Lemma 4 Hardt–Talwar lower bound, and the
//!    Theorem 2 approximation ratio `O(C²r)` with `C = λ₁/λᵣ`.
//!
//! Two implementations, cross-validated in tests:
//!
//! * [`Svd::compute_jacobi`] — one-sided Jacobi: high relative accuracy,
//!   `O(k²·max(m,n))` per sweep; best for small/medium matrices.
//! * [`Svd::compute_gram`] — eigendecomposition of the Gram matrix
//!   `AᵀA` (or `AAᵀ`): one GEMM plus a `k×k` symmetric eigenproblem; much
//!   faster for the large workloads of Figs. 4–6, at the cost of halved
//!   precision for tiny singular values (reflected in the default rank
//!   tolerance).

use crate::decomp::eigen::SymEigen;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::operator::MatrixOp;
use crate::ops;

/// Maximum one-sided Jacobi sweeps.
const MAX_SWEEPS: usize = 60;
/// Dimension threshold below which [`Svd::compute`] picks the Jacobi path.
const JACOBI_LIMIT: usize = 192;

/// Which algorithm produced the factorization (affects rank tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvdMethod {
    /// One-sided Jacobi (high accuracy).
    Jacobi,
    /// Gram-matrix eigendecomposition (fast, `√ε` accuracy on small σ).
    Gram,
}

/// Thin singular value decomposition `A = U·diag(σ)·Vᵀ`.
///
/// `U` is `m×k`, `Vᵀ` is `k×n` with `k = min(m, n)`; singular values are
/// sorted **descending**. Columns of `U` (rows of `Vᵀ`) beyond the numerical
/// rank are zero when the corresponding σ is (numerically) zero.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m×k`.
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors transposed, `k×n`.
    pub vt: Matrix,
    method: SvdMethod,
}

impl Svd {
    /// Computes the SVD, choosing the algorithm by size.
    pub fn compute(a: &Matrix) -> Result<Self> {
        if a.rows().min(a.cols()) <= JACOBI_LIMIT {
            Self::compute_jacobi(a)
        } else {
            Self::compute_gram(a)
        }
    }

    /// One-sided Jacobi SVD.
    pub fn compute_jacobi(a: &Matrix) -> Result<Self> {
        check_input(a)?;
        if a.rows() >= a.cols() {
            let (u, s, v) = one_sided_jacobi(a)?;
            Ok(Self {
                u,
                singular_values: s,
                vt: v.transpose(),
                method: SvdMethod::Jacobi,
            })
        } else {
            // SVD(Aᵀ) = V Σ Uᵀ.
            let (v, s, u) = one_sided_jacobi(&a.transpose())?;
            Ok(Self {
                u,
                singular_values: s,
                vt: v.transpose(),
                method: SvdMethod::Jacobi,
            })
        }
    }

    /// Gram-matrix SVD: eigendecompose the smaller of `AᵀA` / `AAᵀ`.
    pub fn compute_gram(a: &Matrix) -> Result<Self> {
        check_input(a)?;
        let (m, n) = a.shape();
        if m >= n {
            // AᵀA = V Σ² Vᵀ, then u_j = A v_j / σ_j. Rank-deficient Grams
            // can stall the QL iteration's relative negligibility test on
            // their zero cluster; fall back to the robust Jacobi path.
            let g = ops::gram(a);
            let eig = SymEigen::compute(&g).or_else(|_| SymEigen::compute_jacobi(&g))?;
            let (sigma, v) = descending_sqrt(eig);
            let u = recover_factor(a, &v, &sigma, false);
            Ok(Self {
                u,
                singular_values: sigma,
                vt: v.transpose(),
                method: SvdMethod::Gram,
            })
        } else {
            // AAᵀ = U Σ² Uᵀ, then v_j = Aᵀ u_j / σ_j.
            let g = ops::mul_tr(a, a)?;
            let eig = SymEigen::compute(&g).or_else(|_| SymEigen::compute_jacobi(&g))?;
            let (sigma, u) = descending_sqrt(eig);
            let v = recover_factor(a, &u, &sigma, true);
            Ok(Self {
                u,
                singular_values: sigma,
                vt: v.transpose(),
                method: SvdMethod::Gram,
            })
        }
    }

    /// Operator-aware Gram SVD: eigendecomposes the smaller of
    /// `W·Wᵀ` / `Wᵀ·W` computed *through* a [`MatrixOp`] and recovers the
    /// other factor with structured matvecs — the dense `W` is never
    /// materialized. For a workload held as a [`crate::operator::CsrOp`]
    /// or [`crate::operator::IntervalsOp`] this replaces the `O(m·n²)`
    /// dense SVD with `O(min(m,n)³)` eigenwork plus `min(m,n)` cheap
    /// products.
    ///
    /// Accuracy matches [`Svd::compute_gram`] (the `√ε` small-σ caveat
    /// applies, reflected in [`Svd::default_rank_tolerance`]).
    pub fn compute_op(op: &dyn MatrixOp) -> Result<Self> {
        let (m, n) = op.shape();
        if !op.frobenius_sq().is_finite() {
            return Err(LinalgError::InvalidArgument(
                "SVD input contains NaN or infinite entries".into(),
            ));
        }
        let (g, rows_side) = op.gram_small();
        // Structured Grams are often massively rank-deficient (e.g. 512
        // coarse range queries of rank ≤ 32), where the QL iteration's
        // relative negligibility test can stall on the zero cluster; the
        // cyclic Jacobi path is slower but unconditionally robust there.
        let eig = SymEigen::compute(&g).or_else(|_| SymEigen::compute_jacobi(&g))?;
        if rows_side {
            // G = W·Wᵀ = U Σ² Uᵀ, then vᵀ_j = (Wᵀ u_j)ᵀ / σ_j.
            let (sigma, u) = descending_sqrt(eig);
            let k = sigma.len();
            let sigma_max = sigma.first().copied().unwrap_or(0.0);
            let tol = sigma_max * (m.max(n) as f64).sqrt() * f64::EPSILON.sqrt();
            let mut vt = Matrix::zeros(k, n);
            for (j, &s) in sigma.iter().enumerate() {
                if s <= tol {
                    continue;
                }
                let uj = u.col(j);
                let mut row = op.matvec_t(&uj);
                let inv = 1.0 / s;
                row.iter_mut().for_each(|x| *x *= inv);
                vt.set_row(j, &row);
            }
            Ok(Self {
                u,
                singular_values: sigma,
                vt,
                method: SvdMethod::Gram,
            })
        } else {
            // G = Wᵀ·W = V Σ² Vᵀ, then u_j = W v_j / σ_j.
            let (sigma, v) = descending_sqrt(eig);
            let k = sigma.len();
            let sigma_max = sigma.first().copied().unwrap_or(0.0);
            let tol = sigma_max * (m.max(n) as f64).sqrt() * f64::EPSILON.sqrt();
            let mut u = Matrix::zeros(m, k);
            for (j, &s) in sigma.iter().enumerate() {
                if s <= tol {
                    continue;
                }
                let vj = v.col(j);
                let mut col = op.matvec(&vj);
                let inv = 1.0 / s;
                col.iter_mut().for_each(|x| *x *= inv);
                u.set_col(j, &col);
            }
            Ok(Self {
                u,
                singular_values: sigma,
                vt: v.transpose(),
                method: SvdMethod::Gram,
            })
        }
    }

    /// Keeps only the leading `rho` singular triples: `U` becomes `m×ρ`,
    /// `Vᵀ` becomes `ρ×n`, and the singular-value list is cut to length
    /// `ρ`. Because singular values are stored descending, dropping the
    /// tail discards exactly the null-space (or near-null) factors.
    ///
    /// Downstream consumers that walk the factors — the Lemma 3
    /// initializer, error formulas summing over σ — then touch `O(ρ)`
    /// columns instead of `O(min(m,n))`, which matters for the massively
    /// rank-deficient workloads the structured generators produce (e.g.
    /// 512 coarse range queries of rank ≤ 33).
    /// Since a [`Matrix`] cannot be zero-width, at least one triple is
    /// always kept: truncating a rank-0 (all-zero) SVD to its rank keeps
    /// one zero singular value with zero vectors, which still
    /// reconstructs the zero matrix and still reports rank 0.
    pub fn truncated(&self, rho: usize) -> Svd {
        let k = self.singular_values.len().min(rho).max(1);
        let mut u = Matrix::zeros(self.u.rows(), k);
        let mut vt = Matrix::zeros(k, self.vt.cols());
        for j in 0..k {
            u.set_col(j, &self.u.col(j));
            vt.set_row(j, self.vt.row(j));
        }
        Svd {
            u,
            singular_values: self.singular_values[..k].to_vec(),
            vt,
            method: self.method,
        }
    }

    /// [`Svd::truncated`] at the numerical rank: only the top-ρ factors
    /// survive, where ρ counts singular values above the
    /// [default tolerance](Svd::default_rank_tolerance). The rank itself
    /// is unchanged by construction.
    pub fn truncated_to_rank(&self) -> Svd {
        self.truncated(self.rank())
    }

    /// `U·diag(σ)·Vᵀ` (testing helper).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut us = self.u.clone();
        for j in 0..k {
            let s = self.singular_values[j];
            for i in 0..us.rows() {
                let v = us.get(i, j) * s;
                us.set(i, j, v);
            }
        }
        ops::matmul(&us, &self.vt).expect("shapes agree")
    }

    /// Default tolerance separating "zero" from "non-zero" singular values.
    ///
    /// Jacobi delivers full precision, so the usual
    /// `max(m,n)·ε·σ₁` applies; the Gram path squares the condition number,
    /// so small σ carry `O(√ε·σ₁)` absolute error and need a looser cut.
    pub fn default_rank_tolerance(&self) -> f64 {
        let sigma1 = self.singular_values.first().copied().unwrap_or(0.0);
        let dim = self.u.rows().max(self.vt.cols()) as f64;
        match self.method {
            SvdMethod::Jacobi => sigma1 * dim * f64::EPSILON * 8.0,
            SvdMethod::Gram => sigma1 * dim.sqrt() * f64::EPSILON.sqrt() * 8.0,
        }
    }

    /// Numerical rank at the default tolerance.
    pub fn rank(&self) -> usize {
        self.rank_with_tolerance(self.default_rank_tolerance())
    }

    /// Numerical rank: the number of singular values above `tol`.
    pub fn rank_with_tolerance(&self, tol: f64) -> usize {
        self.singular_values.iter().filter(|&&s| s > tol).count()
    }

    /// Non-zero singular values (above the default tolerance) — the
    /// paper's `{λ₁, …, λᵣ}` for a rank-`r` workload.
    pub fn nonzero_singular_values(&self) -> Vec<f64> {
        let tol = self.default_rank_tolerance();
        self.singular_values
            .iter()
            .copied()
            .filter(|&s| s > tol)
            .collect()
    }
}

fn check_input(a: &Matrix) -> Result<()> {
    if a.has_non_finite() {
        return Err(LinalgError::InvalidArgument(
            "SVD input contains NaN or infinite entries".into(),
        ));
    }
    Ok(())
}

/// One-sided Jacobi on `a` with `m ≥ n`: returns `(U, σ, V)` with `U` m×n.
fn one_sided_jacobi(a: &Matrix) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut u = a.clone(); // columns orthogonalized in place
    let mut v = Matrix::identity(n);

    let eps = f64::EPSILON;
    // Columns whose norm falls below this are numerically zero; rotating
    // against their round-off content would stall convergence on exactly
    // rank-deficient inputs.
    let zero_col_sq = {
        let f = a.frobenius_norm();
        (f * eps * (m as f64)).powi(2)
    };

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        // Recompute column norms each sweep: the incremental update
        // `alpha - t*gamma` drifts over many rotations.
        let mut col_sq: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| u.get(i, j).powi(2)).sum())
            .collect();
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha = col_sq[p];
                let beta = col_sq[q];
                if alpha <= zero_col_sq || beta <= zero_col_sq {
                    continue;
                }
                let mut gamma = 0.0;
                for i in 0..m {
                    gamma += u.get(i, p) * u.get(i, q);
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() * (m as f64).sqrt() {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    u.set(i, p, c * up - s * uq);
                    u.set(i, q, s * up + c * uq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
                // Rotation updates the two column norms exactly:
                col_sq[p] = alpha - t * gamma;
                col_sq[q] = beta + t * gamma;
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NonConvergence {
            algorithm: "one-sided Jacobi SVD",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values and normalize U's columns.
    let mut sigma: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| u.get(i, j).powi(2)).sum::<f64>().sqrt())
        .collect();
    let sigma_max = sigma.iter().fold(0.0_f64, |a, &b| a.max(b));
    let zero_tol = sigma_max * (m as f64) * f64::EPSILON;
    for j in 0..n {
        if sigma[j] > zero_tol {
            let inv = 1.0 / sigma[j];
            for i in 0..m {
                let val = u.get(i, j) * inv;
                u.set(i, j, val);
            }
        } else {
            sigma[j] = 0.0;
            for i in 0..m {
                u.set(i, j, 0.0);
            }
        }
    }

    sort_descending(&mut sigma, &mut u, &mut v);
    Ok((u, sigma, v))
}

/// Converts the ascending eigen-pairs of a Gram matrix into descending
/// singular values plus the corresponding singular-vector matrix.
fn descending_sqrt(eig: SymEigen) -> (Vec<f64>, Matrix) {
    let k = eig.values.len();
    let mut sigma: Vec<f64> = eig
        .values
        .iter()
        .rev()
        .map(|&l| if l > 0.0 { l.sqrt() } else { 0.0 })
        .collect();
    let mut vectors = Matrix::zeros(eig.vectors.rows(), k);
    for j in 0..k {
        vectors.set_col(j, &eig.vectors.col(k - 1 - j));
    }
    // Clamp negative round-off eigenvalues to exactly zero.
    for s in sigma.iter_mut() {
        if !s.is_finite() {
            *s = 0.0;
        }
    }
    (sigma, vectors)
}

/// Recovers the missing factor: `u_j = A v_j / σ_j` (or the transposed
/// variant). Columns for zero σ are left at zero.
fn recover_factor(a: &Matrix, known: &Matrix, sigma: &[f64], transpose: bool) -> Matrix {
    let rows = if transpose { a.cols() } else { a.rows() };
    let k = sigma.len();
    let sigma_max = sigma.first().copied().unwrap_or(0.0);
    let tol = sigma_max * (rows.max(k) as f64).sqrt() * f64::EPSILON.sqrt();
    let mut out = Matrix::zeros(rows, k);
    for j in 0..k {
        if sigma[j] <= tol {
            continue;
        }
        let vj = known.col(j);
        let col = if transpose {
            ops::tr_mul_vec(a, &vj).expect("shapes agree")
        } else {
            ops::mul_vec(a, &vj).expect("shapes agree")
        };
        let inv = 1.0 / sigma[j];
        let scaled: Vec<f64> = col.iter().map(|x| x * inv).collect();
        out.set_col(j, &scaled);
    }
    out
}

/// Sorts σ descending, permuting the columns of `u` and `v` accordingly.
fn sort_descending(sigma: &mut [f64], u: &mut Matrix, v: &mut Matrix) {
    let n = sigma.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).expect("finite"));
    let sorted: Vec<f64> = idx.iter().map(|&i| sigma[i]).collect();
    let mut su = Matrix::zeros(u.rows(), n);
    let mut sv = Matrix::zeros(v.rows(), n);
    for (new_j, &old_j) in idx.iter().enumerate() {
        su.set_col(new_j, &u.col(old_j));
        sv.set_col(new_j, &v.col(old_j));
    }
    sigma.copy_from_slice(&sorted);
    *u = su;
    *v = sv;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gram;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn known_diagonal() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
        let svd = Svd::compute_jacobi(&a).unwrap();
        assert!((svd.singular_values[0] - 4.0).abs() < 1e-12);
        assert!((svd.singular_values[1] - 3.0).abs() < 1e-12);
        assert_eq!(svd.rank(), 2);
    }

    #[test]
    fn jacobi_reconstructs_tall_and_wide() {
        for &(m, n, seed) in &[(6usize, 4usize, 1u64), (4, 6, 2), (15, 15, 3), (30, 9, 4)] {
            let a = pseudo_random(m, n, seed);
            let svd = Svd::compute_jacobi(&a).unwrap();
            assert!(
                svd.reconstruct().approx_eq(&a, 1e-9),
                "Jacobi SVD failed for {m}x{n}"
            );
            // Orthonormality of the non-null singular vectors.
            let k = svd.rank();
            let utu = gram(&svd.u);
            let vvt = ops::mul_tr(&svd.vt, &svd.vt).unwrap();
            for i in 0..k {
                assert!((utu.get(i, i) - 1.0).abs() < 1e-9);
                assert!((vvt.get(i, i) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_matches_jacobi_values() {
        for &(m, n, seed) in &[(10usize, 7usize, 5u64), (7, 12, 6), (25, 25, 7)] {
            let a = pseudo_random(m, n, seed);
            let j = Svd::compute_jacobi(&a).unwrap();
            let g = Svd::compute_gram(&a).unwrap();
            for (sj, sg) in j.singular_values.iter().zip(g.singular_values.iter()) {
                assert!(
                    (sj - sg).abs() < 1e-7 * (1.0 + sj),
                    "σ mismatch for {m}x{n}: {sj} vs {sg}"
                );
            }
            assert!(g.reconstruct().approx_eq(&a, 1e-7));
        }
    }

    #[test]
    fn detects_exact_low_rank() {
        // rank-3 product of Gaussian-ish factors.
        let c = pseudo_random(20, 3, 8);
        let r = pseudo_random(3, 16, 9);
        let w = ops::matmul(&c, &r).unwrap();
        let j = Svd::compute_jacobi(&w).unwrap();
        assert_eq!(j.rank(), 3, "Jacobi rank");
        let g = Svd::compute_gram(&w).unwrap();
        assert_eq!(g.rank(), 3, "Gram rank");
        assert_eq!(j.nonzero_singular_values().len(), 3);
    }

    #[test]
    fn frobenius_norm_identity() {
        // ‖A‖_F² = Σ σ_i².
        let a = pseudo_random(9, 14, 10);
        let svd = Svd::compute(&a).unwrap();
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        assert!((sum_sq - a.squared_sum()).abs() < 1e-8 * a.squared_sum());
    }

    #[test]
    fn rank_one_matrix() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(), 0);
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn operator_path_matches_dense() {
        use crate::operator::{CsrOp, DenseOp, IntervalsOp};
        // Wide and tall sparse patterns.
        for &(m, n, seed) in &[(9usize, 14usize, 21u64), (14, 9, 22)] {
            let a = pseudo_random(m, n, seed).map(|v| if v > 0.0 { v } else { 0.0 });
            let dense = Svd::compute_jacobi(&a).unwrap();
            for op in [
                &CsrOp::from_dense(&a) as &dyn crate::operator::MatrixOp,
                &DenseOp::new(a.clone()),
            ] {
                let via_op = Svd::compute_op(op).unwrap();
                for (sj, sg) in dense
                    .singular_values
                    .iter()
                    .zip(via_op.singular_values.iter())
                {
                    assert!(
                        (sj - sg).abs() < 1e-7 * (1.0 + sj),
                        "σ mismatch for {m}x{n}: {sj} vs {sg}"
                    );
                }
                assert!(via_op.reconstruct().approx_eq(&a, 1e-7));
            }
        }
        // An interval workload: rank and reconstruction through the
        // O(m²) overlap Gram.
        let op = IntervalsOp::new(16, vec![(0, 15), (0, 7), (8, 15), (3, 5)]);
        let svd = Svd::compute_op(&op).unwrap();
        assert_eq!(svd.rank(), 3); // row0 = row1 + row2
        let mut dense = Matrix::zeros(4, 16);
        for i in 0..4 {
            let mut buf = vec![0.0; 16];
            op.fill_row(i, &mut buf);
            dense.set_row(i, &buf);
        }
        assert!(svd.reconstruct().approx_eq(&dense, 1e-8));
    }

    #[test]
    fn truncation_keeps_top_factors_only() {
        // rank-3 product: truncating to rank drops the null space without
        // changing the reconstruction or the rank.
        let c = pseudo_random(12, 3, 31);
        let r = pseudo_random(3, 9, 32);
        let w = ops::matmul(&c, &r).unwrap();
        let full = Svd::compute_jacobi(&w).unwrap();
        assert_eq!(full.singular_values.len(), 9);

        let top = full.truncated_to_rank();
        assert_eq!(top.singular_values.len(), 3);
        assert_eq!(top.u.shape(), (12, 3));
        assert_eq!(top.vt.shape(), (3, 9));
        assert_eq!(top.rank(), 3);
        assert!(top.reconstruct().approx_eq(&w, 1e-9));
        assert_eq!(
            top.nonzero_singular_values(),
            full.nonzero_singular_values()
        );

        // Truncating beyond the stored width is a no-op-sized copy.
        let wide = full.truncated(99);
        assert_eq!(wide.singular_values.len(), 9);
        // Truncating below the rank keeps the leading triples (the best
        // rank-2 approximation's factors).
        let two = full.truncated(2);
        assert_eq!(two.u.shape(), (12, 2));
        assert_eq!(two.singular_values, full.singular_values[..2].to_vec());
    }

    #[test]
    fn truncating_a_zero_matrix_keeps_one_zero_triple() {
        // A Matrix cannot be zero-width, so rank-0 truncation clamps to
        // one (zero) triple and stays a valid SVD of the zero matrix.
        let z = Matrix::zeros(4, 3);
        let svd = Svd::compute(&z).unwrap();
        assert_eq!(svd.rank(), 0);
        let top = svd.truncated_to_rank();
        assert_eq!(top.singular_values, vec![0.0]);
        assert_eq!(top.u.shape(), (4, 1));
        assert_eq!(top.vt.shape(), (1, 3));
        assert_eq!(top.rank(), 0);
        assert!(top.reconstruct().approx_eq(&z, 1e-15));
    }

    #[test]
    fn rejects_nan() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, f64::NAN);
        assert!(Svd::compute(&a).is_err());
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius() {
        let a = pseudo_random(12, 8, 11);
        let svd = Svd::compute(&a).unwrap();
        let spectral = svd.singular_values[0];
        assert!(spectral <= a.frobenius_norm() + 1e-12);
        assert!(spectral >= a.frobenius_norm() / (8.0_f64).sqrt() - 1e-12);
    }
}
