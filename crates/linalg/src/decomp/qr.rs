//! Householder QR factorization.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// QR factorization `A = Q·R` via Householder reflections, for `m ≥ n`.
///
/// Used for least-squares solves and as a building block for
/// orthonormalization (e.g. padding the SVD-based initialization of the
/// LRM decomposition with extra orthogonal directions).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// (below-diagonal part) underneath.
    qr: Matrix,
    /// Scalar `τ_k = 2 / ‖v_k‖²` for each reflector (0 for skipped columns).
    tau: Vec<f64>,
}

impl Qr {
    /// Factors an `m`-by-`n` matrix with `m ≥ n`.
    pub fn compute(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "QR requires rows >= cols, got {m}x{n} (transpose first)"
            )));
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];

        for k in 0..n {
            // Build the Householder vector for column k.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                continue; // column already zero below (and at) the diagonal
            }
            let akk = qr.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, stored in place with v_k implicit.
            let v0 = akk - alpha;
            // ‖v‖² = ‖x‖² - 2 alpha x_0 + alpha² = 2(norm² - alpha*akk)
            let v_norm_sq = norm_sq - 2.0 * alpha * akk + alpha * alpha;
            if v_norm_sq == 0.0 {
                continue;
            }
            qr.set(k, k, v0);
            let t = 2.0 / v_norm_sq;
            tau[k] = t;

            // Apply H = I - t v vᵀ to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += qr.get(i, k) * qr.get(i, j);
                }
                let scale = t * dot;
                for i in k..m {
                    let v = qr.get(i, j) - scale * qr.get(i, k);
                    qr.set(i, j, v);
                }
            }
            // The diagonal of R.
            qr.set(k, k, alpha);
            // Stash the v vector below the diagonal scaled so v_k = v0:
            // entries below the diagonal already hold v_{k+1..}; rescale so
            // the implicit head is 1 (standard LAPACK-style storage).
            for i in (k + 1)..m {
                let v = qr.get(i, k) / v0;
                qr.set(i, k, v);
            }
            tau[k] = t * v0 * v0; // adjust for the rescaling: v' = v / v0
        }

        Ok(Self { qr, tau })
    }

    /// The upper-triangular factor `R` (`n`-by-`n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr.get(i, j) } else { 0.0 })
    }

    /// The thin orthonormal factor `Q` (`m`-by-`n`).
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q.set(j, j, 1.0);
        }
        // Apply reflectors in reverse order: Q = H_0 H_1 … H_{n-1} · I_thin.
        for k in (0..n).rev() {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            for j in 0..n {
                // dot = vᵀ q_j with v = (1, qr[k+1..m, k])
                let mut dot = q.get(k, j);
                for i in (k + 1)..m {
                    dot += self.qr.get(i, k) * q.get(i, j);
                }
                let scale = t * dot;
                let v = q.get(k, j) - scale;
                q.set(k, j, v);
                for i in (k + 1)..m {
                    let v = q.get(i, j) - scale * self.qr.get(i, k);
                    q.set(i, j, v);
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector of length `m`, returning length `m`.
    pub fn q_transpose_mul(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "q_transpose_mul",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        for k in 0..n {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr.get(i, k) * y[i];
            }
            let scale = t * dot;
            y[k] -= scale;
            for i in (k + 1)..m {
                y[i] -= scale * self.qr.get(i, k);
            }
        }
        Ok(y)
    }

    /// Least-squares solve: `argmin_x ‖A x − b‖₂`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.qr.cols();
        let y = self.q_transpose_mul(b)?;
        let mut x = y[..n].to_vec();
        for i in (0..n).rev() {
            let rii = self.qr.get(i, i);
            if rii.abs() < 1e-300 {
                return Err(LinalgError::Singular);
            }
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.qr.get(i, j) * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

/// Orthonormalizes the columns of `a` (`m ≥ n`), returning `Q`.
pub fn orthonormalize(a: &Matrix) -> Result<Matrix> {
    Ok(Qr::compute(a)?.q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul};

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn qr_reconstructs() {
        for &(m, n, seed) in &[(4usize, 4usize, 1u64), (8, 5, 2), (20, 7, 3)] {
            let a = pseudo_random(m, n, seed);
            let qr = Qr::compute(&a).unwrap();
            let recon = matmul(&qr.q(), &qr.r()).unwrap();
            assert!(
                recon.approx_eq(&a, 1e-10),
                "QR reconstruction failed {m}x{n}"
            );
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let a = pseudo_random(12, 6, 4);
        let q = Qr::compute(&a).unwrap().q();
        let qtq = gram(&q);
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = pseudo_random(6, 6, 5);
        let r = Qr::compute(&a).unwrap().r();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = pseudo_random(15, 4, 6);
        let b: Vec<f64> = (0..15).map(|i| (i as f64).sin()).collect();
        let x = Qr::compute(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations: AᵀA x = Aᵀ b.
        let ata = gram(&a);
        let atb = crate::ops::tr_mul_vec(&a, &b).unwrap();
        let x2 = crate::decomp::lu::solve(&ata, &atb).unwrap();
        for (xi, x2i) in x.iter().zip(x2.iter()) {
            assert!((xi - x2i).abs() < 1e-8);
        }
    }

    #[test]
    fn exact_solve_when_square() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = Qr::compute(&a)
            .unwrap()
            .solve_least_squares(&[4.0, 7.0])
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(Qr::compute(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn handles_rank_deficiency_in_factor() {
        // Second column is a multiple of the first; Q·R must still equal A.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::compute(&a).unwrap();
        let recon = matmul(&qr.q(), &qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }
}
