//! Symmetric eigendecomposition.
//!
//! Two implementations are provided and cross-checked in tests:
//!
//! * [`SymEigen::compute`] — Householder tridiagonalization followed by
//!   implicit-shift QL iteration (the classic EISPACK `tred2`/`tql2` pair),
//!   `O(n³)` with a small constant; the default for all sizes.
//! * [`SymEigen::compute_jacobi`] — cyclic Jacobi rotations; slower but
//!   extremely robust, used as an oracle in tests and for small matrices.
//!
//! The Matrix Mechanism baseline (paper Appendix B) needs repeated
//! eigendecompositions for its PSD-cone projection and the `A = M^{1/2}`
//! strategy extraction, and the Gram-based SVD fast path reduces to this
//! routine, so it sits on the hot path of the experiment harness.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Maximum implicit-shift QL iterations per eigenvalue.
const MAX_QL_ITERS: usize = 64;
/// Maximum cyclic Jacobi sweeps.
const MAX_JACOBI_SWEEPS: usize = 64;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in **ascending** order; `vectors.col(i)` is the
/// unit eigenvector for `values[i]`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Computes the eigendecomposition via tridiagonalization + QL.
    ///
    /// Only the symmetric part `(A + Aᵀ)/2` is used, which guards against
    /// tiny asymmetries produced by floating-point accumulation upstream.
    pub fn compute(a: &Matrix) -> Result<Self> {
        let a = symmetrize_checked(a)?;
        let n = a.rows();
        let mut z = a;
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        sort_pairs(&mut d, &mut z);
        Ok(Self {
            values: d,
            vectors: z,
        })
    }

    /// Computes the eigendecomposition via cyclic Jacobi rotations.
    pub fn compute_jacobi(a: &Matrix) -> Result<Self> {
        let mut a = symmetrize_checked(a)?;
        let n = a.rows();
        let mut v = Matrix::identity(n);

        for _sweep in 0..MAX_JACOBI_SWEEPS {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += a.get(p, q).powi(2);
                }
            }
            if off.sqrt() <= 1e-14 * a.frobenius_norm().max(1e-300) {
                let mut d = a.diag();
                sort_pairs(&mut d, &mut v);
                return Ok(Self {
                    values: d,
                    vectors: v,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq == 0.0 {
                        continue;
                    }
                    let theta = (a.get(q, q) - a.get(p, p)) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    rotate_sym(&mut a, p, q, c, s);
                    rotate_cols(&mut v, p, q, c, s);
                }
            }
        }
        Err(LinalgError::NonConvergence {
            algorithm: "jacobi eigendecomposition",
            iterations: MAX_JACOBI_SWEEPS,
        })
    }

    /// Reconstructs `V·diag(λ)·Vᵀ` (testing helper).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut vd = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                let v = vd.get(i, j) * self.values[j];
                vd.set(i, j, v);
            }
        }
        crate::ops::mul_tr(&vd, &self.vectors).expect("shapes agree")
    }

    /// Spectral function application: `f(A) = V·diag(f(λ))·Vᵀ`.
    ///
    /// Used for the Matrix Mechanism's `A = M^{1/2}` (Appendix B) and for
    /// the projection onto the PSD cone (clamping eigenvalues).
    pub fn spectral_map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let mut vd = self.vectors.clone();
        for j in 0..n {
            let fj = f(self.values[j]);
            for i in 0..n {
                let v = vd.get(i, j) * fj;
                vd.set(i, j, v);
            }
        }
        crate::ops::mul_tr(&vd, &self.vectors).expect("shapes agree")
    }
}

fn symmetrize_checked(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.has_non_finite() {
        return Err(LinalgError::InvalidArgument(
            "eigendecomposition input contains NaN or infinite entries".into(),
        ));
    }
    let n = a.rows();
    Ok(Matrix::from_fn(n, n, |i, j| {
        0.5 * (a.get(i, j) + a.get(j, i))
    }))
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation in `z` (EISPACK `tred2`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z.get(i, k).abs()).sum();
            if scale == 0.0 {
                e[i] = z.get(i, l);
            } else {
                for k in 0..=l {
                    let v = z.get(i, k) / scale;
                    z.set(i, k, v);
                    h += v * v;
                }
                let f = z.get(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l, f - g);
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z.set(j, i, z.get(i, j) / h);
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z.get(j, k) * z.get(i, k);
                    }
                    for k in (j + 1)..=l {
                        g_acc += z.get(k, j) * z.get(i, k);
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z.get(i, j);
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z.get(i, j);
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let v = z.get(j, k) - (f * e[k] + g * z.get(i, k));
                        z.set(j, k, v);
                    }
                }
            }
        } else {
            e[i] = z.get(i, l);
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z.get(i, k) * z.get(k, j);
                }
                for k in 0..i {
                    let v = z.get(k, j) - g * z.get(k, i);
                    z.set(k, j, v);
                }
            }
        }
        d[i] = z.get(i, i);
        z.set(i, i, 1.0);
        for j in 0..i {
            z.set(j, i, 0.0);
            z.set(i, j, 0.0);
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix,
/// accumulating eigenvectors in `z` (EISPACK `tql2`).
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible subdiagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::NonConvergence {
                    algorithm: "tql2",
                    iterations: MAX_QL_ITERS,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m;
            let mut underflow = false;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sorts eigenpairs ascending by eigenvalue, permuting eigenvector columns.
fn sort_pairs(d: &mut [f64], z: &mut Matrix) {
    let n = d.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("eigenvalues are finite"));
    let sorted_d: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let mut sorted_z = Matrix::zeros(n, n);
    for (new_j, &old_j) in idx.iter().enumerate() {
        sorted_z.set_col(new_j, &z.col(old_j));
    }
    d.copy_from_slice(&sorted_d);
    *z = sorted_z;
}

/// Symmetric Jacobi rotation of `a` in the `(p, q)` plane.
fn rotate_sym(a: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    let app = a.get(p, p);
    let aqq = a.get(q, q);
    let apq = a.get(p, q);
    for k in 0..n {
        if k == p || k == q {
            continue;
        }
        let akp = a.get(k, p);
        let akq = a.get(k, q);
        let new_kp = c * akp - s * akq;
        let new_kq = s * akp + c * akq;
        a.set(k, p, new_kp);
        a.set(p, k, new_kp);
        a.set(k, q, new_kq);
        a.set(q, k, new_kq);
    }
    let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    a.set(p, p, new_pp);
    a.set(q, q, new_qq);
    a.set(p, q, 0.0);
    a.set(q, p, 0.0);
}

/// Applies the rotation to columns `p`, `q` of `v`.
fn rotate_cols(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gram;

    fn pseudo_random_sym(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let raw = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        });
        // Symmetrize.
        Matrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let eig = SymEigen::compute(&a).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = SymEigen::compute(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_random() {
        for &(n, seed) in &[(3usize, 1u64), (8, 2), (20, 3), (40, 4)] {
            let a = pseudo_random_sym(n, seed);
            let eig = SymEigen::compute(&a).unwrap();
            let recon = eig.reconstruct();
            assert!(
                recon.approx_eq(&a, 1e-9),
                "QL reconstruction failed for n={n}"
            );
            // Eigenvectors orthonormal.
            let vtv = gram(&eig.vectors);
            assert!(vtv.approx_eq(&Matrix::identity(n), 1e-9));
        }
    }

    #[test]
    fn ql_matches_jacobi() {
        for &(n, seed) in &[(5usize, 7u64), (13, 8), (25, 9)] {
            let a = pseudo_random_sym(n, seed);
            let e1 = SymEigen::compute(&a).unwrap();
            let e2 = SymEigen::compute_jacobi(&a).unwrap();
            for (v1, v2) in e1.values.iter().zip(e2.values.iter()) {
                assert!(
                    (v1 - v2).abs() < 1e-9,
                    "QL and Jacobi disagree for n={n}: {v1} vs {v2}"
                );
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = pseudo_random_sym(16, 11);
        let eig = SymEigen::compute(&a).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - a.trace().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn spectral_map_square_root() {
        // Build an SPD matrix, take its square root, and square it back.
        let b = pseudo_random_sym(10, 12);
        let spd = {
            let mut g = gram(&b);
            g += &Matrix::identity(10);
            g
        };
        let eig = SymEigen::compute(&spd).unwrap();
        assert!(eig.values.iter().all(|&v| v > 0.0));
        let root = eig.spectral_map(f64::sqrt);
        let squared = crate::ops::matmul(&root, &root).unwrap();
        assert!(squared.approx_eq(&spd, 1e-8));
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        let a = Matrix::identity(6).scale(4.0);
        let eig = SymEigen::compute(&a).unwrap();
        for &v in &eig.values {
            assert!((v - 4.0).abs() < 1e-12);
        }
        let vtv = gram(&eig.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(SymEigen::compute(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a.set(1, 1, f64::INFINITY);
        assert!(SymEigen::compute(&a).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[5.0]]);
        let eig = SymEigen::compute(&a).unwrap();
        assert_eq!(eig.values, vec![5.0]);
        assert_eq!(eig.vectors.get(0, 0).abs(), 1.0);
    }
}
