//! LU factorization with partial pivoting.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular, packed together in
/// a single matrix. Used for general linear solves and matrix inversion
/// (e.g. the `(β L Lᵀ + I)⁻¹` factor of the closed-form `B` update, Eq. 9 of
/// the paper, when the Cholesky path is not applicable).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
    swaps: usize,
    singular: bool,
}

impl Lu {
    /// Factors a square matrix.
    pub fn compute(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if a.has_non_finite() {
            return Err(LinalgError::InvalidArgument(
                "LU input contains NaN or infinite entries".into(),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let mut singular = false;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at or
            // below the diagonal.
            let mut p = k;
            let mut max = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(p, j));
                    lu.set(p, j, tmp);
                }
                piv.swap(k, p);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            if pivot == 0.0 {
                singular = true;
                continue;
            }
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }

        Ok(Self {
            lu,
            piv,
            swaps,
            singular,
        })
    }

    /// True when a zero pivot was hit during elimination.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.lu.rows();
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (0..n).map(|i| self.lu.get(i, i)).product::<f64>() * sign
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        if self.singular {
            return Err(LinalgError::Singular);
        }
        // Apply permutation, then forward / backward substitution.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve_vec(&b.col(j))?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.lu.rows()))
    }
}

/// Convenience wrapper: solves `A x = b` with a fresh factorization.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::compute(a)?.solve_vec(b)
}

/// Convenience wrapper: inverse of `A` with a fresh factorization.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::compute(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        // x = (1, 2) → b = (4, 7)
        let x = solve(&a, &[4.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_with_pivoting() {
        // Requires a row swap: leading zero pivot.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::compute(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);

        let b = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((Lu::compute(&b).unwrap().det() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]);
        let inv = inverse(&a).unwrap();
        let prod = matmul(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = Lu::compute(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.det(), 0.0);
        assert!(matches!(
            lu.solve_vec(&[1.0, 1.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(Lu::compute(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a.set(0, 0, f64::NAN);
        assert!(Lu::compute(&a).is_err());
    }

    #[test]
    fn multi_rhs_solve() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[5.0, 10.0]]);
        let x = Lu::compute(&a).unwrap().solve(&b).unwrap();
        assert!(x.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]), 1e-12));
    }
}
