//! Matrix factorizations: LU, Cholesky, QR, symmetric eigendecomposition,
//! and singular value decomposition.

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod svd;

pub use cholesky::Cholesky;
pub use eigen::SymEigen;
pub use lu::Lu;
pub use qr::Qr;
pub use svd::Svd;
