//! Cholesky factorization of symmetric positive-definite matrices.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Cholesky factorization `A = G·Gᵀ` with `G` lower triangular.
///
/// The `B`-update of the paper's Algorithm 1 solves against
/// `β·L·Lᵀ + I` (Eq. 9), which is symmetric positive definite by
/// construction, so a Cholesky solve is the natural (and ~2× cheaper than
/// LU) kernel for it.
#[derive(Debug, Clone)]
pub struct Cholesky {
    g: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed (and is the caller's responsibility).
    pub fn compute(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut g = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                let v = g.get(j, k);
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let gjj = d.sqrt();
            g.set(j, j, gjj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= g.get(i, k) * g.get(j, k);
                }
                g.set(i, j, s / gjj);
            }
        }
        Ok(Self { g })
    }

    /// The lower-triangular factor `G`.
    pub fn factor(&self) -> &Matrix {
        &self.g
    }

    /// Solves `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.g.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution G y = b.
        let mut x = b.to_vec();
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.g.get(i, j) * x[j];
            }
            x[i] = s / self.g.get(i, i);
        }
        // Backward substitution Gᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.g.get(j, i) * x[j];
            }
            x[i] = s / self.g.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.g.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            x.set_col(j, &self.solve_vec(&b.col(j))?);
        }
        Ok(x)
    }

    /// Solves `X A = B` (i.e. `A Xᵀ = Bᵀ` using symmetry of `A`).
    ///
    /// This is the orientation needed by Eq. 9 of the paper, where the SPD
    /// system multiplies `B` from the right.
    pub fn solve_right(&self, b: &Matrix) -> Result<Matrix> {
        Ok(self.solve(&b.transpose())?.transpose())
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.g.rows()))
    }

    /// `log(det(A))`, computed stably from the factor diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.g.rows())
            .map(|i| self.g.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul};

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let ch = Cholesky::compute(&a).unwrap();
        let g = ch.factor();
        let gg = matmul(g, &g.transpose()).unwrap();
        assert!(gg.approx_eq(&a, 1e-12));
        // Factor is lower triangular.
        assert_eq!(g.get(0, 1), 0.0);
        assert_eq!(g.get(0, 2), 0.0);
        assert_eq!(g.get(1, 2), 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_example();
        let ch = Cholesky::compute(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve_vec(&b).unwrap();
        let back = crate::ops::mul_vec(&a, &x).unwrap();
        for (bi, backi) in b.iter().zip(back.iter()) {
            assert!((bi - backi).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_right_orientation() {
        let a = spd_example();
        let ch = Cholesky::compute(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]);
        let x = ch.solve_right(&b).unwrap();
        // x * a should equal b
        let back = matmul(&x, &a).unwrap();
        assert!(back.approx_eq(&b, 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::compute(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn gram_plus_identity_is_spd() {
        // The exact shape of the Eq. 9 system: β L Lᵀ + I.
        let l = Matrix::from_fn(3, 10, |i, j| ((i * 10 + j) % 7) as f64 / 7.0 - 0.4);
        let mut sys = gram(&l.transpose()); // L Lᵀ is 3x3
        sys = sys.scale(2.5);
        sys += &Matrix::identity(3);
        let ch = Cholesky::compute(&sys).unwrap();
        let inv = ch.inverse().unwrap();
        assert!(matmul(&sys, &inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd_example();
        let ch = Cholesky::compute(&a).unwrap();
        let det = super::super::lu::Lu::compute(&a).unwrap().det();
        assert!((ch.log_det() - det.ln()).abs() < 1e-10);
    }
}
