//! Minimal, dependency-free binary (de)serialization for matrices.
//!
//! Workload decompositions are expensive to compute (Algorithm 1 runs for
//! minutes at the paper's full scale), so production deployments want to
//! cache them. The format is deliberately trivial and versioned:
//!
//! ```text
//! magic  "LRMM"            (4 bytes)
//! version u32 LE           (currently 1)
//! rows    u64 LE
//! cols    u64 LE
//! data    rows·cols × f64 LE, row-major
//! ```

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"LRMM";
const VERSION: u32 = 1;

impl Matrix {
    /// Writes the matrix in the `LRMM` binary format.
    pub fn write_binary<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(self.rows() as u64).to_le_bytes())?;
        out.write_all(&(self.cols() as u64).to_le_bytes())?;
        for &v in self.as_slice() {
            out.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a matrix written by [`Matrix::write_binary`].
    ///
    /// Validates the magic, version, dimension sanity, and entry
    /// finiteness, so a truncated or corrupted file is rejected rather
    /// than producing NaN-poisoned arithmetic downstream.
    pub fn read_binary<R: Read>(input: &mut R) -> Result<Matrix> {
        let mut magic = [0u8; 4];
        read_exact(input, &mut magic)?;
        if &magic != MAGIC {
            return Err(LinalgError::InvalidArgument(
                "not an LRMM matrix file (bad magic)".into(),
            ));
        }
        let mut word4 = [0u8; 4];
        read_exact(input, &mut word4)?;
        let version = u32::from_le_bytes(word4);
        if version != VERSION {
            return Err(LinalgError::InvalidArgument(format!(
                "unsupported LRMM version {version} (expected {VERSION})"
            )));
        }
        let mut word8 = [0u8; 8];
        read_exact(input, &mut word8)?;
        let rows = u64::from_le_bytes(word8) as usize;
        read_exact(input, &mut word8)?;
        let cols = u64::from_le_bytes(word8) as usize;
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "invalid dimensions {rows}x{cols} in LRMM file"
            )));
        }
        let count = rows.checked_mul(cols).ok_or_else(|| {
            LinalgError::InvalidArgument("dimension overflow in LRMM file".into())
        })?;
        if count > (1 << 31) {
            return Err(LinalgError::InvalidArgument(format!(
                "LRMM file declares {count} entries; refusing (> 2^31)"
            )));
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            read_exact(input, &mut word8)?;
            let v = f64::from_le_bytes(word8);
            if !v.is_finite() {
                return Err(LinalgError::InvalidArgument(
                    "LRMM file contains non-finite entries".into(),
                ));
            }
            data.push(v);
        }
        Matrix::from_vec(rows, cols, data)
    }
}

fn read_exact<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<()> {
    input
        .read_exact(buf)
        .map_err(|e| LinalgError::InvalidArgument(format!("truncated LRMM stream: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(3, 5, |i, j| (i as f64 - 1.0) * (j as f64 + 0.25))
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let mut buf = Vec::new();
        m.write_binary(&mut buf).unwrap();
        let back = Matrix::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Matrix::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        for cut in [3, 10, 21, buf.len() - 1] {
            assert!(
                Matrix::read_binary(&mut &buf[..cut]).is_err(),
                "accepted a stream truncated at {cut}"
            );
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        buf[4] = 9;
        assert!(Matrix::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_non_finite_payload() {
        let mut buf = Vec::new();
        sample().write_binary(&mut buf).unwrap();
        // Overwrite the first data entry (offset 4+4+8+8 = 24) with NaN.
        buf[24..32].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Matrix::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn preserves_exact_bits() {
        let m = Matrix::from_rows(&[&[f64::MIN_POSITIVE, 1.0 + f64::EPSILON, -0.0]]);
        let mut buf = Vec::new();
        m.write_binary(&mut buf).unwrap();
        let back = Matrix::read_binary(&mut buf.as_slice()).unwrap();
        for (a, b) in m.as_slice().iter().zip(back.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
