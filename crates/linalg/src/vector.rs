//! Dense vector helpers used across the workspace.

/// Euclidean (L2) norm.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Squared Euclidean norm.
pub fn norm2_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// L1 norm (sum of absolute values).
pub fn norm1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L∞ norm (largest absolute value).
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
}

/// `y += alpha * x`, in place.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Scales a vector in place.
pub fn scale(v: &mut [f64], s: f64) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Squared Euclidean distance between `a` and `b`.
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert_eq!(norm2(&v), 5.0);
        assert_eq!(norm2_sq(&v), 25.0);
        assert_eq!(norm1(&v), 7.0);
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(norm1(&[]), 0.0);
    }

    #[test]
    fn axpy_and_arith() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        assert_eq!(sub(&y, &x), vec![11.0, 22.0]);
        assert_eq!(add(&x, &x), vec![2.0, 4.0]);
        let mut z = vec![1.0, -2.0];
        scale(&mut z, -3.0);
        assert_eq!(z, vec![-3.0, 6.0]);
    }

    #[test]
    fn distance() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
