//! Edge-case and failure-injection tests for the mechanism layer.

use lrm_core::baselines::{
    HierarchicalMechanism, MatrixMechanism, MatrixMechanismConfig, NoiseOnData, NoiseOnResults,
    WaveletMechanism,
};
use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
use lrm_core::{LowRankMechanism, Mechanism};
use lrm_dp::rng::derive_rng;
use lrm_dp::Epsilon;
use lrm_linalg::Matrix;
use lrm_workload::Workload;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

#[test]
fn single_query_single_count() {
    let w = Workload::from_rows(&[&[2.5]]).unwrap();
    let x = [4.0];
    let e = eps(1.0);
    let mut rng = derive_rng(1, 1);
    for mech in [
        Box::new(NoiseOnData::compile(&w)) as Box<dyn Mechanism>,
        Box::new(NoiseOnResults::compile(&w)),
        Box::new(WaveletMechanism::compile(&w)),
        Box::new(HierarchicalMechanism::compile(&w)),
        Box::new(LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap()),
    ] {
        let y = mech.answer(&x, e, &mut rng).unwrap();
        assert_eq!(y.len(), 1, "{}", mech.name());
        assert!(y[0].is_finite());
        assert!(mech.expected_error(e, Some(&x)) > 0.0, "{}", mech.name());
    }
}

#[test]
fn zero_workload_answers_zero_noise() {
    // A zero workload has zero sensitivity everywhere: answers are exact.
    let w = Workload::new(Matrix::zeros(3, 4)).unwrap();
    let x = [1.0, 2.0, 3.0, 4.0];
    let e = eps(0.1);
    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
    let y = lrm.answer(&x, e, &mut derive_rng(2, 2)).unwrap();
    assert_eq!(y, vec![0.0; 3]);
    assert_eq!(lrm.expected_error(e, Some(&x)), 0.0);

    let nor = NoiseOnResults::compile(&w);
    let y2 = nor.answer(&x, e, &mut derive_rng(2, 3)).unwrap();
    assert_eq!(y2, vec![0.0; 3]);
}

#[test]
fn rank_one_target_on_rank_one_workload() {
    // W is rank one; r = 1 must suffice for an (almost) exact fit.
    let w = Workload::new(Matrix::from_fn(6, 9, |i, j| {
        (i as f64 + 1.0) * 0.5 * ((j % 3) as f64 - 1.0)
    }))
    .unwrap();
    assert_eq!(w.rank(), 1);
    let cfg = DecompositionConfig {
        target_rank: TargetRank::Exact(1),
        ..DecompositionConfig::default()
    };
    let d = WorkloadDecomposition::compute(&w, &cfg).unwrap();
    assert!(
        d.stats().residual <= 0.011,
        "residual {}",
        d.stats().residual
    );
    assert!(d.sensitivity() <= 1.0 + 1e-9);
}

#[test]
fn oversized_rank_is_harmless() {
    // r far above min(m, n): wasteful but must stay correct & feasible.
    let w = Workload::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap();
    let cfg = DecompositionConfig {
        target_rank: TargetRank::Exact(9),
        ..DecompositionConfig::default()
    };
    let d = WorkloadDecomposition::compute(&w, &cfg).unwrap();
    assert_eq!(d.rank(), 9);
    assert!(d.sensitivity() <= 1.0 + 1e-9);
    assert!(d.stats().residual <= 0.011);
}

#[test]
fn extreme_epsilons() {
    let w = Workload::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
    let x = [10.0, 20.0];
    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
    // Very large ε → near-exact answers.
    let y = lrm.answer(&x, eps(1e12), &mut derive_rng(3, 1)).unwrap();
    assert!((y[0] - 30.0).abs() < 1e-3, "y0 = {}", y[0]);
    // Very small ε → still finite, just enormous noise.
    let y2 = lrm.answer(&x, eps(1e-9), &mut derive_rng(3, 2)).unwrap();
    assert!(y2.iter().all(|v| v.is_finite()));
}

#[test]
fn mm_on_identity_workload_is_near_naive() {
    // For W = I the optimal strategy *is* (scaled) identity; MM should
    // find something close and not be (much) worse than NOD.
    let w = Workload::new(Matrix::identity(6)).unwrap();
    let mm = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
    let nod = NoiseOnData::compile(&w);
    let e = eps(1.0);
    let ratio = mm.expected_error(e, None) / nod.expected_error(e, None);
    assert!(
        (0.8..3.0).contains(&ratio),
        "MM/NOD ratio {ratio} out of the expected band"
    );
}

#[test]
fn wavelet_domain_of_one() {
    let w = Workload::from_rows(&[&[3.0]]).unwrap();
    let wm = WaveletMechanism::compile(&w);
    assert_eq!(wm.padded_domain(), 1);
    assert_eq!(wm.generalized_sensitivity(), 1.0);
    let y = wm.answer(&[7.0], eps(1.0), &mut derive_rng(4, 1)).unwrap();
    assert!(y[0].is_finite());
}

#[test]
fn hierarchical_non_power_of_two_padding() {
    // n = 11 pads to 16; answers must ignore the padding exactly.
    let w = Workload::from_rows(&[&[1.0; 11]]).unwrap();
    let hm = HierarchicalMechanism::compile(&w);
    assert_eq!(hm.padded_domain(), 16);
    let x: Vec<f64> = (0..11).map(|i| i as f64).collect();
    let truth: f64 = x.iter().sum();
    // With huge ε the consistency estimate must reproduce the exact sum.
    let y = hm.answer(&x, eps(1e12), &mut derive_rng(5, 1)).unwrap();
    assert!((y[0] - truth).abs() < 1e-3, "y = {} vs {}", y[0], truth);
}

#[test]
fn decomposition_rejects_pathological_configs() {
    let w = Workload::from_rows(&[&[1.0, 0.0]]).unwrap();
    for cfg in [
        DecompositionConfig {
            gamma: -1.0,
            ..DecompositionConfig::default()
        },
        DecompositionConfig {
            gamma: f64::INFINITY,
            ..DecompositionConfig::default()
        },
        DecompositionConfig {
            inner_alternations: 0,
            ..DecompositionConfig::default()
        },
    ] {
        assert!(WorkloadDecomposition::compute(&w, &cfg).is_err());
    }
}

#[test]
fn negative_and_fractional_counts_are_fine() {
    // The mechanism layer treats x as an arbitrary real vector (the paper
    // models records as real numbers, Section 3).
    let w = Workload::from_rows(&[&[0.5, -1.5, 2.0]]).unwrap();
    let x = [-3.25, 0.75, 1e-3];
    let truth = w.answer(&x).unwrap()[0];
    let lrm = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
    let y = lrm.answer(&x, eps(1e9), &mut derive_rng(6, 1)).unwrap();
    assert!((y[0] - truth).abs() < 1e-2);
}

#[test]
fn structural_error_zero_when_converged() {
    let w = Workload::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
    let d = WorkloadDecomposition::compute(&w, &DecompositionConfig::default()).unwrap();
    let x = [100.0, 200.0, 300.0];
    let s = d.structural_error(&x).unwrap();
    // Residual is polished to ~1e-3·‖W‖ scale; with counts ~100s the
    // structural term stays tiny relative to the noise term at ε = 1.
    assert!(
        s < 0.05 * d.expected_noise_error(1.0),
        "structural {s} vs noise {}",
        d.expected_noise_error(1.0)
    );
}
