//! Statistical privacy audit: empirically check the ε-DP guarantee on
//! scalar projections of each mechanism's output.
//!
//! For neighboring databases `x` and `x'` (one unit count differing by 1)
//! and any measurable set S, ε-DP requires
//! `Pr[M(x) ∈ S] ≤ e^ε · Pr[M(x') ∈ S]`. We estimate both probabilities
//! with histograms over many runs and assert the ratio stays within
//! `e^ε` plus sampling slack. This cannot *prove* privacy, but it
//! reliably catches calibration bugs (wrong sensitivity, budget
//! mis-splits) — each mechanism's noise scale would have to be off by a
//! noticeable factor to pass.

use lrm_core::baselines::{HierarchicalMechanism, NoiseOnData, NoiseOnResults, WaveletMechanism};
use lrm_core::decomposition::DecompositionConfig;
use lrm_core::{LowRankMechanism, Mechanism};
use lrm_dp::rng::derive_rng;
use lrm_dp::Epsilon;
use lrm_workload::Workload;

/// Histogram-based likelihood-ratio audit on the first query's output.
fn audit(mechanism: &dyn Mechanism, x1: &[f64], x2: &[f64], eps: f64, tag: u64) {
    let e = Epsilon::new(eps).unwrap();
    let runs = 30_000;
    let mut out1 = Vec::with_capacity(runs);
    let mut out2 = Vec::with_capacity(runs);
    for t in 0..runs {
        out1.push(
            mechanism
                .answer(x1, e, &mut derive_rng(tag, t as u64))
                .unwrap()[0],
        );
        out2.push(
            mechanism
                .answer(x2, e, &mut derive_rng(tag + 1, t as u64))
                .unwrap()[0],
        );
    }
    // Common histogram over the central range.
    let lo = out1
        .iter()
        .chain(out2.iter())
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = out1
        .iter()
        .chain(out2.iter())
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let bins = 8; // coarse bins keep per-bin counts high
    let width = (hi - lo) / bins as f64;
    let mut h1 = vec![0usize; bins];
    let mut h2 = vec![0usize; bins];
    for &v in &out1 {
        let b = (((v - lo) / width) as usize).min(bins - 1);
        h1[b] += 1;
    }
    for &v in &out2 {
        let b = (((v - lo) / width) as usize).min(bins - 1);
        h2[b] += 1;
    }
    // Allow generous Monte-Carlo slack: require ratio ≤ e^(2ε) on bins
    // with enough mass. A mis-calibrated mechanism (e.g. half the noise
    // scale) fails this by a wide margin.
    let bound = (2.0 * eps).exp();
    for b in 0..bins {
        if h1[b] + h2[b] < 600 {
            continue;
        }
        let p1 = h1[b].max(1) as f64 / runs as f64;
        let p2 = h2[b].max(1) as f64 / runs as f64;
        let ratio = (p1 / p2).max(p2 / p1);
        assert!(
            ratio <= bound,
            "{}: bin {b} likelihood ratio {ratio:.3} exceeds e^(2ε) = {bound:.3}",
            mechanism.name()
        );
    }
}

#[test]
fn laplace_baselines_satisfy_dp_budget() {
    let w = Workload::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
    let x1 = [5.0, 3.0, 2.0];
    let x2 = [6.0, 3.0, 2.0]; // neighbor: first count +1
    let eps = 0.4;
    audit(&NoiseOnData::compile(&w), &x1, &x2, eps, 100);
    audit(&NoiseOnResults::compile(&w), &x1, &x2, eps, 200);
}

#[test]
fn tree_mechanisms_satisfy_dp_budget() {
    let w = Workload::from_rows(&[&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 0.0, 0.0]]).unwrap();
    let x1 = [5.0, 3.0, 2.0, 1.0];
    let x2 = [5.0, 4.0, 2.0, 1.0];
    let eps = 0.4;
    audit(&WaveletMechanism::compile(&w), &x1, &x2, eps, 300);
    audit(&HierarchicalMechanism::compile(&w), &x1, &x2, eps, 400);
}

#[test]
fn lrm_satisfies_dp_budget() {
    let w = Workload::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0],
        &[1.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 1.0],
    ])
    .unwrap();
    let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
    let x1 = [8.0, 1.0, 4.0, 2.0];
    let x2 = [8.0, 1.0, 5.0, 2.0];
    audit(&mech, &x1, &x2, 0.4, 500);
}

/// A deliberately broken mechanism (noise scaled for half the true
/// sensitivity) must FAIL the audit — this validates the audit itself.
#[test]
fn audit_catches_undercalibrated_noise() {
    use lrm_dp::Laplace;
    use rand::RngCore;

    struct Broken;
    impl Mechanism for Broken {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn domain_size(&self) -> usize {
            1
        }
        fn answer(
            &self,
            x: &[f64],
            eps: Epsilon,
            rng: &mut dyn RngCore,
        ) -> Result<Vec<f64>, lrm_core::CoreError> {
            // True sensitivity is 1; this uses 1/6 of the required scale.
            let noise = Laplace::centered(1.0 / (6.0 * eps.value())).unwrap();
            Ok(vec![x[0] + noise.sample(rng)])
        }
        fn expected_error(&self, _eps: Epsilon, _x: Option<&[f64]>) -> f64 {
            0.0
        }
    }

    let result = std::panic::catch_unwind(|| {
        audit(&Broken, &[5.0], &[6.0], 0.4, 600);
    });
    assert!(
        result.is_err(),
        "the audit failed to flag an under-calibrated mechanism"
    );
}
