//! Property tests for the `LRMD` persistence format: random
//! decompositions survive a save/load round trip bit-for-bit, and the
//! loader rejects corrupt headers and unsupported versions.

use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
use lrm_core::persistence::{load_decomposition, save_decomposition};
use lrm_core::CoreError;
use lrm_workload::Workload;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique temp path per proptest case (cases run within one process).
fn tmp(name: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let case = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lrm_persistence_prop_{name}_{}_{case}.lrmd",
        std::process::id()
    ))
}

/// Strategy: a small random workload (entries bounded away from the
/// degenerate all-zero case by the +1 diagonal bump).
fn workload(
    mr: std::ops::Range<usize>,
    nr: std::ops::Range<usize>,
) -> impl Strategy<Value = Workload> {
    (mr, nr).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-3.0f64..3.0, m * n).prop_map(move |mut data| {
            for i in 0..m.min(n) {
                data[i * n + i] += 1.0;
            }
            let matrix = lrm_linalg::Matrix::from_vec(m, n, data).unwrap();
            Workload::new(matrix).unwrap()
        })
    })
}

/// A quick decomposition config — the property is about persistence, not
/// solver quality.
fn quick_config() -> DecompositionConfig {
    DecompositionConfig {
        target_rank: TargetRank::RatioOfRank(1.0),
        max_outer_iters: 20,
        polish_iters: 0,
        ..DecompositionConfig::default()
    }
}

fn decompose(w: &Workload) -> WorkloadDecomposition {
    WorkloadDecomposition::compute(w, &quick_config()).expect("small decompositions succeed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn round_trip_preserves_factors(w in workload(2..6, 3..9)) {
        let decomposition = decompose(&w);
        let path = tmp("roundtrip");
        save_decomposition(&decomposition, &path).unwrap();
        let loaded = load_decomposition(&w, &path).unwrap();

        // Factors are stored losslessly (f64 bits), so equality is exact…
        prop_assert_eq!(decomposition.b(), loaded.b());
        prop_assert_eq!(decomposition.l(), loaded.l());
        // …and the revalidated residual matches the fresh one.
        prop_assert!(
            (decomposition.stats().residual - loaded.stats().residual).abs() <= 1e-12
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupt_header_is_rejected(w in workload(2..5, 3..7), flip in 0usize..4) {
        let decomposition = decompose(&w);
        let path = tmp("corrupt");
        save_decomposition(&decomposition, &path).unwrap();

        // Flip one magic byte: the loader must refuse, mentioning the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[flip] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match load_decomposition(&w, &path) {
            Err(CoreError::InvalidArgument(msg)) => prop_assert!(msg.contains("magic"), "{}", msg),
            other => prop_assert!(false, "expected bad-magic rejection, got {:?}", other),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn wrong_version_is_rejected(w in workload(2..5, 3..7), version in 2u32..200) {
        let decomposition = decompose(&w);
        let path = tmp("version");
        save_decomposition(&decomposition, &path).unwrap();

        // Patch the version word (bytes 4..8, little-endian).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_decomposition(&w, &path) {
            Err(CoreError::InvalidArgument(msg)) => {
                prop_assert!(msg.contains("version"), "{}", msg)
            }
            other => prop_assert!(false, "expected version rejection, got {:?}", other),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncation_is_an_io_error_with_the_path(w in workload(2..5, 3..7), keep in 0usize..8) {
        let decomposition = decompose(&w);
        let path = tmp("truncate");
        save_decomposition(&decomposition, &path).unwrap();

        // Keep only the first `keep` bytes — header reads hit EOF.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..keep.min(bytes.len())]).unwrap();
        match load_decomposition(&w, &path) {
            Err(CoreError::Io { path: p, .. }) => prop_assert_eq!(p, path.clone()),
            // A cut inside the matrix blocks surfaces as a numerical read
            // failure instead; both are typed rejections.
            Err(CoreError::Numerical(_)) | Err(CoreError::InvalidArgument(_)) => {}
            other => prop_assert!(false, "expected typed rejection, got {:?}", other),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_reports_io_with_path(w in workload(2..4, 3..5)) {
        let path = tmp("missing");
        match load_decomposition(&w, &path) {
            Err(CoreError::Io { path: p, source }) => {
                prop_assert_eq!(p, path);
                prop_assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
            }
            other => prop_assert!(false, "expected Io error, got {:?}", other),
        }
    }
}
