//! Property tests for the warm-started ALM solver: seeding from an
//! arbitrary prior decomposition — same workload, a perturbed neighbor,
//! or a different rank — never weakens the convergence contract the cold
//! solver guarantees.

use lrm_core::decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
use lrm_opt::WarmStart;
use lrm_workload::Workload;
use proptest::prelude::*;

/// Strategy: a small random workload (entries bounded away from the
/// degenerate all-zero case by the +1 diagonal bump).
fn workload(
    mr: std::ops::Range<usize>,
    nr: std::ops::Range<usize>,
) -> impl Strategy<Value = Workload> {
    (mr, nr).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-3.0f64..3.0, m * n).prop_map(move |mut data| {
            for i in 0..m.min(n) {
                data[i * n + i] += 1.0;
            }
            let matrix = lrm_linalg::Matrix::from_vec(m, n, data).unwrap();
            Workload::new(matrix).unwrap()
        })
    })
}

fn config() -> DecompositionConfig {
    DecompositionConfig {
        target_rank: TargetRank::RatioOfRank(1.0),
        polish_iters: 0,
        ..DecompositionConfig::default()
    }
}

/// The clamped feasibility tolerance the solver converges under.
fn gamma_eff(w: &Workload, cfg: &DecompositionConfig) -> f64 {
    cfg.gamma
        .min(0.02 * w.op().frobenius_sq().sqrt())
        .max(1e-10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A warm-started compile of a perturbed neighbor satisfies exactly
    /// the tolerances the cold compile of the same workload does: the
    /// sensitivity constraint and, whenever the cold run converged, the
    /// same residual bound.
    #[test]
    fn warm_start_meets_the_cold_convergence_contract(
        w in workload(3..7, 4..10),
        bump_row in 0usize..3,
        bump_col in 0usize..4,
    ) {
        let cfg = config();
        let seed_dec = WorkloadDecomposition::compute(&w, &cfg).unwrap();

        // A near-duplicate: one entry nudged.
        let mut m = w.op().to_dense();
        let (rows, cols) = m.shape();
        let (i, j) = (bump_row % rows, bump_col % cols);
        m.set(i, j, m.get(i, j) + 0.5);
        let wb = Workload::new(m).unwrap();

        let cold = WorkloadDecomposition::compute(&wb, &cfg).unwrap();
        let seed = WarmStart::new(seed_dec.b().clone(), seed_dec.l().clone());
        let warm = WorkloadDecomposition::compute_with_init(&wb, &cfg, Some(&seed)).unwrap();

        // Identical feasibility contract, identical sensitivity bound.
        prop_assert!(warm.sensitivity() <= 1.0 + 1e-9);
        let tol = gamma_eff(&wb, &cfg);
        if cold.stats().converged {
            prop_assert!(
                warm.stats().converged,
                "cold converged (residual {}) but warm did not (residual {})",
                cold.stats().residual,
                warm.stats().residual
            );
            prop_assert!(warm.stats().residual <= tol + 1e-9);
        }
        // Factors are always finite and well-shaped.
        prop_assert_eq!(warm.l().cols(), wb.domain_size());
        prop_assert!(warm.b().as_slice().iter().all(|x| x.is_finite()));
        prop_assert!(warm.l().as_slice().iter().all(|x| x.is_finite()));
    }

    /// Seeding across ranks (truncation and padding) preserves the same
    /// contract.
    #[test]
    fn rank_reprojected_seeds_preserve_the_contract(
        w in workload(4..7, 6..10),
        target in 1usize..6,
    ) {
        let cfg = config();
        let seed_dec = WorkloadDecomposition::compute(&w, &cfg).unwrap();
        let seed = WarmStart::new(seed_dec.b().clone(), seed_dec.l().clone());

        let cfg_r = DecompositionConfig {
            target_rank: TargetRank::Exact(target),
            ..config()
        };
        let warm = WorkloadDecomposition::compute_with_init(&w, &cfg_r, Some(&seed)).unwrap();
        prop_assert_eq!(warm.rank(), target);
        prop_assert!(warm.sensitivity() <= 1.0 + 1e-9);
        prop_assert!(warm.stats().residual.is_finite());
        // When the target rank can represent W and the cold run converges,
        // the warm run must too.
        let cold = WorkloadDecomposition::compute(&w, &cfg_r).unwrap();
        if cold.stats().converged {
            prop_assert!(
                warm.stats().converged,
                "cold converged (residual {}) but warm did not (residual {})",
                cold.stats().residual,
                warm.stats().residual
            );
        }
    }
}
