//! The common interface all differentially private mechanisms implement.

use crate::error::CoreError;
use lrm_dp::{Budget, Epsilon};
use rand::RngCore;

/// A compiled ε-differentially-private mechanism for one fixed workload.
///
/// Compilation (strategy search, decomposition, tree building…) happens
/// once per workload via each type's `compile` constructor; [`answer`] can
/// then be called for any database and any ε. This mirrors the paper's
/// setting: the workload `W` is public, so strategy optimization consumes
/// no privacy budget.
///
/// Every mechanism in this crate publishes `exact answers + T·η` for some
/// fixed linear map `T` and i.i.d. Laplace vector `η` (plus, for relaxed
/// LRM, a deterministic structural residual), so each also reports its
/// exact expected total squared error in closed form; the harness checks
/// the Monte-Carlo estimate against it.
///
/// [`answer`]: Mechanism::answer
pub trait Mechanism {
    /// Short display name (`"LRM"`, `"LM"`, `"MM"`, `"WM"`, `"HM"`…).
    fn name(&self) -> &'static str;

    /// Number of queries `m` this mechanism answers.
    fn num_queries(&self) -> usize;

    /// Domain size `n` of the database vector.
    fn domain_size(&self) -> usize;

    /// Noisy answers to the whole batch on database `x` under ε-DP.
    fn answer(&self, x: &[f64], eps: Epsilon, rng: &mut dyn RngCore)
        -> Result<Vec<f64>, CoreError>;

    /// Exact expected **total** squared error `E‖ŷ − Wx‖²`.
    ///
    /// `x` only matters for mechanisms with a data-dependent residual
    /// (the relaxed LRM of Formula 8 / Theorem 3); pure-noise mechanisms
    /// ignore it.
    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64;

    /// Expected **average** squared error `E‖ŷ − Wx‖²/m` — the metric the
    /// paper's figures plot.
    fn expected_average_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        self.expected_error(eps, x) / self.num_queries() as f64
    }

    /// Noisy answers to the whole batch under an (ε, δ) [`Budget`].
    ///
    /// The default forwards to [`Mechanism::answer`] at `budget.eps()`: a
    /// pure ε-DP mechanism satisfies (ε, δ)-DP for every δ ≥ 0 at
    /// unchanged noise, so the δ component is legitimately ignored.
    /// Approximate-DP (Gaussian) mechanisms override this — for them the
    /// δ is what makes finite noise possible at all, and their
    /// [`Mechanism::answer`] rejects pure requests.
    fn answer_budget(
        &self,
        x: &[f64],
        budget: Budget,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.answer(x, budget.eps(), rng)
    }

    /// Exact expected **total** squared error of an
    /// [`answer_budget`](Mechanism::answer_budget) release. Default: the
    /// pure formula at `budget.eps()` (δ buys a pure mechanism nothing).
    fn expected_error_budget(&self, budget: Budget, x: Option<&[f64]>) -> f64 {
        self.expected_error(budget.eps(), x)
    }

    /// Expected **average** squared error of a budgeted release.
    fn expected_average_error_budget(&self, budget: Budget, x: Option<&[f64]>) -> f64 {
        self.expected_error_budget(budget, x) / self.num_queries() as f64
    }

    /// Coalesced answering with residual noise top-up: one **base** noise
    /// draw calibrated at the weakest member budget of a coalesced batch
    /// (from `base_rng`), plus an independent per-member top-up (from
    /// `topup_rng`) of variance `σ²(target) − σ²(base)`, so the returned
    /// release meets exactly `target`'s (ε, δ) guarantee. Gaussian noise
    /// is closed under addition, which is what makes one shared data pass
    /// serve many budgets; Laplace noise is not, so pure-DP mechanisms
    /// keep the default: a typed error.
    ///
    /// `base` must be the *weakest* budget in the batch (largest ε at the
    /// shared δ): σ(target) ≥ σ(base) is required, since noise can be
    /// added after the fact but never removed.
    fn answer_with_topup(
        &self,
        _x: &[f64],
        _base: Budget,
        _target: Budget,
        _base_rng: &mut dyn RngCore,
        _topup_rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        Err(CoreError::InvalidArgument(format!(
            "{} does not support residual noise top-up (Gaussian strategies only)",
            self.name()
        )))
    }

    /// Validates a database vector against the compiled domain.
    fn check_database(&self, x: &[f64]) -> Result<(), CoreError> {
        if x.len() != self.domain_size() {
            return Err(CoreError::DomainMismatch {
                expected: self.domain_size(),
                got: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidArgument(
                "database contains NaN or infinite counts".into(),
            ));
        }
        Ok(())
    }
}
