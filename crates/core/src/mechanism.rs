//! The common interface all differentially private mechanisms implement.

use crate::error::CoreError;
use lrm_dp::Epsilon;
use rand::RngCore;

/// A compiled ε-differentially-private mechanism for one fixed workload.
///
/// Compilation (strategy search, decomposition, tree building…) happens
/// once per workload via each type's `compile` constructor; [`answer`] can
/// then be called for any database and any ε. This mirrors the paper's
/// setting: the workload `W` is public, so strategy optimization consumes
/// no privacy budget.
///
/// Every mechanism in this crate publishes `exact answers + T·η` for some
/// fixed linear map `T` and i.i.d. Laplace vector `η` (plus, for relaxed
/// LRM, a deterministic structural residual), so each also reports its
/// exact expected total squared error in closed form; the harness checks
/// the Monte-Carlo estimate against it.
///
/// [`answer`]: Mechanism::answer
pub trait Mechanism {
    /// Short display name (`"LRM"`, `"LM"`, `"MM"`, `"WM"`, `"HM"`…).
    fn name(&self) -> &'static str;

    /// Number of queries `m` this mechanism answers.
    fn num_queries(&self) -> usize;

    /// Domain size `n` of the database vector.
    fn domain_size(&self) -> usize;

    /// Noisy answers to the whole batch on database `x` under ε-DP.
    fn answer(&self, x: &[f64], eps: Epsilon, rng: &mut dyn RngCore)
        -> Result<Vec<f64>, CoreError>;

    /// Exact expected **total** squared error `E‖ŷ − Wx‖²`.
    ///
    /// `x` only matters for mechanisms with a data-dependent residual
    /// (the relaxed LRM of Formula 8 / Theorem 3); pure-noise mechanisms
    /// ignore it.
    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64;

    /// Expected **average** squared error `E‖ŷ − Wx‖²/m` — the metric the
    /// paper's figures plot.
    fn expected_average_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        self.expected_error(eps, x) / self.num_queries() as f64
    }

    /// Validates a database vector against the compiled domain.
    fn check_database(&self, x: &[f64]) -> Result<(), CoreError> {
        if x.len() != self.domain_size() {
            return Err(CoreError::DomainMismatch {
                expected: self.domain_size(),
                got: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidArgument(
                "database contains NaN or infinite counts".into(),
            ));
        }
        Ok(())
    }
}
