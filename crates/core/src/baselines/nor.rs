//! Noise on Results (NOR) — Eq. 5 of the paper.

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::operator::MatrixOp;
use lrm_workload::Workload;
use rand::RngCore;
use std::sync::Arc;

/// The noise-on-results baseline `M_R` (also "noise on queries", NOQ):
///
/// ```text
/// M_R(Q, D) = W·x + Lap(Δ'/ε)^m                    (Eq. 5)
/// ```
///
/// with `Δ' = max_j Σ_i |W_ij|` — the workload's L1 sensitivity. Expected
/// total squared error: `2·m·Δ'²/ε²`. Per Section 3.2, NOR beats NOD iff
/// `m·max_j Σ_i W_ij² < Σ_ij W_ij²`, which requires `m < n`.
///
/// Like [`super::NoiseOnData`], the workload stays behind its
/// structure-aware operator — answering is one structured matvec.
#[derive(Debug, Clone)]
pub struct NoiseOnResults {
    w: Arc<dyn MatrixOp>,
    sensitivity: f64,
}

impl NoiseOnResults {
    /// Compiles the baseline for a workload.
    pub fn compile(workload: &Workload) -> Self {
        Self {
            w: Arc::clone(workload.op()),
            sensitivity: workload.sensitivity(),
        }
    }

    /// The workload sensitivity Δ′ this mechanism calibrates noise to.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }
}

impl Mechanism for NoiseOnResults {
    fn name(&self) -> &'static str {
        "NOR"
    }

    fn num_queries(&self) -> usize {
        self.w.rows()
    }

    fn domain_size(&self) -> usize {
        self.w.cols()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let mut y = self.w.matvec(x);
        if self.sensitivity > 0.0 {
            let noise = Laplace::centered(self.sensitivity / eps.value())?;
            for v in y.iter_mut() {
                *v += noise.sample(rng);
            }
        }
        Ok(y)
    }

    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        let scale = self.sensitivity / eps.value();
        2.0 * self.w.rows() as f64 * scale * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn intro_example_error() {
        // Section 1: {q1,q2,q3} has sensitivity 2 → per-query variance
        // 2·Δ²/ε² = 8/ε², total 24/ε².
        let w = Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap();
        let mech = NoiseOnResults::compile(&w);
        assert_eq!(mech.sensitivity(), 2.0);
        assert!((mech.expected_error(eps(1.0), None) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_query_set_wins() {
        // Section 1: executing {q2, q3} alone has sensitivity 1 and total
        // error 2·2·1/ε² = 4/ε² on the two queries.
        let w = Workload::from_rows(&[&[1.0, 1.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 1.0]]).unwrap();
        let mech = NoiseOnResults::compile(&w);
        assert_eq!(mech.sensitivity(), 1.0);
        assert!((mech.expected_error(eps(1.0), None) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_matches_analytic() {
        let w = Workload::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]).unwrap();
        let mech = NoiseOnResults::compile(&w);
        let x = [3.0, 4.0];
        let truth = w.answer(&x).unwrap();
        let e = eps(0.7);
        let trials = 4000;
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(11, t)).unwrap();
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn nor_vs_nod_crossover() {
        use crate::baselines::nod::NoiseOnData;
        // m < n with concentrated columns: NOR wins. One query over a
        // wide domain.
        let wide = Workload::from_rows(&[&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]]).unwrap();
        let e = eps(1.0);
        let nor = NoiseOnResults::compile(&wide);
        let nod = NoiseOnData::compile(&wide);
        assert!(nor.expected_error(e, None) < nod.expected_error(e, None));

        // m ≥ n: NOD can never lose to NOR (Section 3.2).
        let tall = Workload::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let nor_t = NoiseOnResults::compile(&tall);
        let nod_t = NoiseOnData::compile(&tall);
        assert!(nod_t.expected_error(e, None) <= nor_t.expected_error(e, None));
    }
}
