//! Matrix Mechanism (MM) — Li, Hay, Rastogi, Miklau & McGregor
//! (PODS 2010, the paper's ref \[16\]), implemented exactly as the LRM
//! paper's **Appendix B** prescribes.
//!
//! The strategy search minimizes the L2-surrogate objective
//!
//! ```text
//! min_{M ≻ 0}  max(diag(M)) · tr(WᵀW·M⁻¹)          (Formula 13 via M = AᵀA)
//! ```
//!
//! with `max(diag(M))` replaced by its log-sum-exp smoothing (μ chosen for
//! a uniform approximation, Appendix B) and the resulting smooth problem
//! solved by the nonmonotone spectral projected gradient method (ref \[2\])
//! over the cone `M ⪰ δ·I`. The strategy is `A = M^{1/2} = Σ√λᵢ·vᵢvᵢᵀ`.
//!
//! Noise calibration: the L2 surrogate optimizes `max(diag(M)) = ‖A‖₂²`
//! (max column L2 norm), but ε-DP needs the **L1** sensitivity
//! `Δ_A = max_j Σ_i |A_ij|`, which is what the published noise uses here.
//! This surrogate/true-objective mismatch — together with the full-rank
//! `r ≥ n` restriction inherent to `M ≻ 0` — is precisely why the paper
//! finds MM "almost never" beats naive noise-on-data (Section 2.2); our
//! reproduction keeps both properties faithfully.

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::decomp::{Cholesky, SymEigen};
use lrm_linalg::{ops, Matrix};
use lrm_opt::{spg_minimize, SmoothMax, SpgConfig};
use lrm_workload::Workload;
use rand::RngCore;

/// Configuration of the Appendix-B solver.
#[derive(Debug, Clone)]
pub struct MatrixMechanismConfig {
    /// SPG budget. MM needs an `n×n` eigendecomposition per projection, so
    /// the default iteration count is modest — matching the paper's
    /// observation that MM "incurs a high computational overhead".
    pub spg: SpgConfig,
    /// Smoothing accuracy for `max(diag(M))`, relative to the initial
    /// diagonal scale (`μ = accuracy/log n`, Appendix B).
    pub smoothing_accuracy_rel: f64,
    /// Eigenvalue floor for the PSD projection, relative to the initial
    /// diagonal scale (keeps `M⁻¹` well defined).
    pub psd_floor_rel: f64,
}

impl Default for MatrixMechanismConfig {
    fn default() -> Self {
        Self {
            spg: SpgConfig {
                max_iters: 60,
                tol: 1e-7,
                ..SpgConfig::default()
            },
            smoothing_accuracy_rel: 1e-2,
            psd_floor_rel: 1e-6,
        }
    }
}

/// Compiled Matrix Mechanism.
#[derive(Debug, Clone)]
pub struct MatrixMechanism {
    /// Strategy matrix `A = M^{1/2}` (n×n, symmetric PSD).
    strategy: Matrix,
    /// Recombination `P = W·M^{−1/2}`, so `P·A = W`.
    recombine: Matrix,
    /// L1 sensitivity of the strategy.
    sensitivity: f64,
    /// Final (smoothed) objective value, for diagnostics.
    objective: f64,
    m: usize,
    n: usize,
}

impl MatrixMechanism {
    /// Runs the Appendix-B optimization and compiles the mechanism.
    ///
    /// The workload enters only through `WᵀW` and the final recombination
    /// `W·M^{−1/2}` — both computed through the structure-aware operator,
    /// so even here the dense `W` is never materialized (the `n×n`
    /// strategy objects are inherently dense; that is MM's own cost).
    pub fn compile(workload: &Workload, config: &MatrixMechanismConfig) -> Result<Self, CoreError> {
        let w = workload.op();
        let n = w.cols();
        let wtw = w.gram_cols();
        let scale = (wtw.trace()? / n as f64).max(f64::MIN_POSITIVE);
        let floor = scale * config.psd_floor_rel;
        let smoother = SmoothMax::with_accuracy(
            (scale * config.smoothing_accuracy_rel).max(f64::MIN_POSITIVE),
            n,
        );

        // f(M) = f_μ(diag M) · tr(WᵀW M⁻¹).
        let objective = |m_mat: &Matrix| -> f64 {
            match inverse_spd(m_mat) {
                Ok(inv) => {
                    let trace_term = ops::frob_inner(&wtw, &inv).expect("shapes agree");
                    smoother.value(&m_mat.diag()) * trace_term
                }
                Err(_) => f64::INFINITY, // outside the PD cone (line search probe)
            }
        };
        let gradient = |m_mat: &Matrix| -> Matrix {
            let inv = inverse_spd(m_mat).expect("gradient evaluated at feasible points");
            let trace_term = ops::frob_inner(&wtw, &inv).expect("shapes agree");
            let diag = m_mat.diag();
            let f_mu = smoother.value(&diag);
            let softmax = smoother.gradient(&diag);
            // ∇tr(WᵀW M⁻¹) = −M⁻¹ WᵀW M⁻¹.
            let inner = ops::matmul(&wtw, &inv).expect("shapes agree");
            let mut grad = ops::matmul(&inv, &inner).expect("shapes agree");
            grad = grad.scale(-f_mu);
            for (i, g) in softmax.iter().enumerate() {
                let v = grad.get(i, i) + g * trace_term;
                grad.set(i, i, v);
            }
            grad
        };
        let project = |m_mat: &mut Matrix| {
            project_psd(m_mat, floor);
        };

        let m0 = Matrix::identity(n).scale(scale);
        let result = spg_minimize(objective, gradient, project, m0, &config.spg);
        let m_star = result.x;

        // Strategy extraction: A = M^{1/2}, A† = M^{−1/2}.
        let eig = SymEigen::compute(&m_star)?;
        let strategy = eig.spectral_map(|l| l.max(0.0).sqrt());
        let pinv_root = eig.spectral_map(|l| if l > floor * 0.5 { 1.0 / l.sqrt() } else { 0.0 });
        let recombine = w.apply_right(&pinv_root);
        let sensitivity = strategy.max_col_abs_sum();

        Ok(Self {
            strategy,
            recombine,
            sensitivity,
            objective: result.objective,
            m: workload.num_queries(),
            n,
        })
    }

    /// The strategy matrix `A = M^{1/2}`.
    pub fn strategy(&self) -> &Matrix {
        &self.strategy
    }

    /// The strategy's L1 sensitivity `Δ_A`.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Final smoothed objective value (diagnostics).
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

impl Mechanism for MatrixMechanism {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn num_queries(&self) -> usize {
        self.m
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        // z = A·x + Lap(Δ_A/ε)^n, then ŷ = P·z with P·A = W.
        let mut z = ops::mul_vec(&self.strategy, x)?;
        if self.sensitivity > 0.0 {
            let noise = Laplace::centered(self.sensitivity / eps.value())?;
            for v in z.iter_mut() {
                *v += noise.sample(rng);
            }
        }
        Ok(ops::mul_vec(&self.recombine, &z)?)
    }

    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        let scale = self.sensitivity / eps.value();
        2.0 * scale * scale * self.recombine.squared_sum()
    }
}

/// Inverse of an SPD matrix via Cholesky; errors when not PD.
fn inverse_spd(m: &Matrix) -> Result<Matrix, CoreError> {
    Ok(Cholesky::compute(m)?.inverse()?)
}

/// Projects a symmetric matrix onto `{M : M ⪰ floor·I}`. Fast path: if
/// `M − floor·I` already admits a Cholesky factorization, no work is done;
/// otherwise eigenvalues are clamped.
fn project_psd(m: &mut Matrix, floor: f64) {
    // Symmetrize first (gradient steps accumulate asymmetry).
    let n = m.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m.get(i, j) + m.get(j, i));
            m.set(i, j, avg);
            m.set(j, i, avg);
        }
    }
    let mut shifted = m.clone();
    for i in 0..n {
        let v = shifted.get(i, i) - floor;
        shifted.set(i, i, v);
    }
    if Cholesky::compute(&shifted).is_ok() {
        return; // already in the cone
    }
    let eig = SymEigen::compute(m).expect("symmetric by construction");
    *m = eig.spectral_map(|l| l.max(floor));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WDiscrete, WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn recombination_reproduces_workload() {
        // P·A = W must hold so the mechanism is unbiased.
        let w = WRange
            .generate(6, 12, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
        let pa = ops::matmul(&mech.recombine, &mech.strategy).unwrap();
        assert!(
            pa.approx_eq(&w.matrix(), 1e-6),
            "P·A differs from W by {}",
            (&pa - &*w.matrix()).max_abs()
        );
    }

    #[test]
    fn strategy_is_symmetric_psd() {
        let w = WDiscrete::default()
            .generate(8, 10, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let mech = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
        let a = mech.strategy();
        assert!(a.approx_eq(&a.transpose(), 1e-8));
        let eig = SymEigen::compute(a).unwrap();
        assert!(eig.values.iter().all(|&l| l >= -1e-8));
    }

    #[test]
    fn empirical_error_matches_closed_form() {
        let w = WRange
            .generate(5, 8, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let mech = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i * 11 % 13) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);
        let trials = 3000;
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(23, t)).unwrap();
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.12,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn objective_decreases_from_identity_start() {
        // The SPG run must not end worse than the (feasible) starting
        // point: f(M₀) with M₀ = scale·I.
        let w = WRange
            .generate(10, 16, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let wtw = ops::gram(&w.matrix());
        let n = 16;
        let scale = wtw.trace().unwrap() / n as f64;
        // f(M₀) = max(diag) · tr(WᵀW)/scale = scale · tr/scale = tr(WᵀW).
        let f0 = wtw.trace().unwrap();
        let mech = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
        assert!(
            mech.objective() <= f0 * (1.0 + 1e-6),
            "objective {} vs start {}",
            mech.objective(),
            f0
        );
        let _ = scale;
    }

    #[test]
    fn mm_loses_to_nod_as_paper_reports() {
        // The paper's headline negative result (Section 2.2, Figs. 4–6):
        // MM's L2-surrogate strategy with L1-calibrated noise does not
        // beat noise-on-data.
        use crate::baselines::nod::NoiseOnData;
        let e = eps(0.1);
        for seed in 0..3 {
            let w = WDiscrete::default()
                .generate(12, 16, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let mm = MatrixMechanism::compile(&w, &MatrixMechanismConfig::default()).unwrap();
            let nod = NoiseOnData::compile(&w);
            assert!(
                mm.expected_error(e, None) >= nod.expected_error(e, None) * 0.9,
                "seed {seed}: MM {} unexpectedly beat NOD {}",
                mm.expected_error(e, None),
                nod.expected_error(e, None)
            );
        }
    }
}
