//! Baseline mechanisms the paper compares against (Sections 3.2, 6 and
//! Appendix B).

pub mod hierarchical;
pub mod mm;
pub mod nod;
pub mod nor;
pub mod wavelet;

pub use hierarchical::HierarchicalMechanism;
pub use mm::{MatrixMechanism, MatrixMechanismConfig};
pub use nod::{GaussianNoiseOnData, NoiseOnData};
pub use nor::NoiseOnResults;
pub use wavelet::WaveletMechanism;
