//! Noise on Data (NOD) — Eq. 4 of the paper — and its approximate-DP
//! (Gaussian) twin.

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Budget, Epsilon, Gaussian, Laplace};
use lrm_linalg::operator::MatrixOp;
use lrm_workload::Workload;
use rand::RngCore;
use std::sync::Arc;

/// The noise-on-data baseline `M_D`:
///
/// ```text
/// M_D(Q, D) = W·(x + Lap(Δ/ε)^n)                  (Eq. 4)
/// ```
///
/// Each unit count has sensitivity Δ = 1 (one record changes one count by
/// one), so the noisy counts `x + Lap(1/ε)^n` are ε-differentially
/// private and any number of linear queries may be answered from them.
/// Expected total squared error: `2·Δ²·Σ_ij W_ij²/ε²` (Section 3.2).
///
/// This is the curve labelled **LM** in the paper's figures — the naive
/// Laplace baseline that, per Section 2.2, the Matrix Mechanism "almost
/// never" beats (see DESIGN.md §5 for the reading).
///
/// The workload is held as its structure-aware operator: answering is one
/// `W·(x + η)` matvec, so a range workload over a huge domain answers in
/// `O(m + n)` with `O(m)` strategy storage — no dense `W` copy.
#[derive(Debug, Clone)]
pub struct NoiseOnData {
    w: Arc<dyn MatrixOp>,
    /// `Σ W_ij²`, precomputed for the closed-form error.
    squared_sum: f64,
    /// Unit-count sensitivity; 1 for counting queries.
    unit_sensitivity: f64,
}

impl NoiseOnData {
    /// Compiles the baseline for a workload (unit sensitivity 1).
    pub fn compile(workload: &Workload) -> Self {
        Self {
            w: Arc::clone(workload.op()),
            squared_sum: workload.squared_sum(),
            unit_sensitivity: 1.0,
        }
    }

    /// Variant with a non-unit record-to-count sensitivity (e.g. linear
    /// sums over bounded attributes).
    pub fn with_unit_sensitivity(workload: &Workload, delta: f64) -> Result<Self, CoreError> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(CoreError::InvalidArgument(format!(
                "unit sensitivity must be positive, got {delta}"
            )));
        }
        Ok(Self {
            w: Arc::clone(workload.op()),
            squared_sum: workload.squared_sum(),
            unit_sensitivity: delta,
        })
    }
}

impl Mechanism for NoiseOnData {
    fn name(&self) -> &'static str {
        "LM"
    }

    fn num_queries(&self) -> usize {
        self.w.rows()
    }

    fn domain_size(&self) -> usize {
        self.w.cols()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let noise = Laplace::centered(self.unit_sensitivity / eps.value())?;
        let noisy: Vec<f64> = x.iter().map(|&v| v + noise.sample(rng)).collect();
        Ok(self.w.matvec(&noisy))
    }

    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        let scale = self.unit_sensitivity / eps.value();
        2.0 * scale * scale * self.squared_sum
    }
}

/// The Gaussian noise-on-data baseline (`"GM"`):
///
/// ```text
/// M_G(Q, D) = W·(x + N(0, σ²)^n)
/// ```
///
/// with σ from the analytic Gaussian mechanism against the unit-count
/// **L2** sensitivity (one record changes one count by one, so Δ₂ = Δ₁
/// here). This is the approximate-DP counterpart of [`NoiseOnData`]: the
/// baseline every Gaussian LRM strategy has to beat, and the in-flavor
/// degraded fallback the server compiles when an ApproxDp LRM compile
/// blows its deadline. Expected total squared error: `σ²·Σ_ij W_ij²`.
///
/// Like every Gaussian mechanism it answers only through
/// [`Mechanism::answer_budget`]; [`Mechanism::answer`] is a typed error.
/// It supports [`Mechanism::answer_with_topup`] on the n-dimensional
/// count noise, so coalesced cross-ε batches can be served from it too.
#[derive(Debug, Clone)]
pub struct GaussianNoiseOnData {
    w: Arc<dyn MatrixOp>,
    /// `Σ W_ij²`, precomputed for the closed-form error.
    squared_sum: f64,
    /// Unit-count L2 sensitivity; 1 for counting queries.
    unit_sensitivity: f64,
}

impl GaussianNoiseOnData {
    /// Compiles the baseline for a workload (unit sensitivity 1).
    pub fn compile(workload: &Workload) -> Self {
        Self {
            w: Arc::clone(workload.op()),
            squared_sum: workload.squared_sum(),
            unit_sensitivity: 1.0,
        }
    }

    /// Variant with a non-unit record-to-count sensitivity.
    pub fn with_unit_sensitivity(workload: &Workload, delta: f64) -> Result<Self, CoreError> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(CoreError::InvalidArgument(format!(
                "unit sensitivity must be positive, got {delta}"
            )));
        }
        Ok(Self {
            w: Arc::clone(workload.op()),
            squared_sum: workload.squared_sum(),
            unit_sensitivity: delta,
        })
    }
}

impl Mechanism for GaussianNoiseOnData {
    fn name(&self) -> &'static str {
        "GM"
    }

    fn num_queries(&self) -> usize {
        self.w.rows()
    }

    fn domain_size(&self) -> usize {
        self.w.cols()
    }

    fn answer(
        &self,
        _x: &[f64],
        _eps: Epsilon,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        Err(CoreError::InvalidArgument(
            "the Gaussian baseline cannot release at a pure ε; \
             supply an (ε, δ) budget via answer_budget"
                .into(),
        ))
    }

    fn answer_budget(
        &self,
        x: &[f64],
        budget: Budget,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let noise = Gaussian::calibrated(self.unit_sensitivity, budget)?;
        let noisy: Vec<f64> = x.iter().map(|&v| v + noise.sample(rng)).collect();
        Ok(self.w.matvec(&noisy))
    }

    fn answer_with_topup(
        &self,
        x: &[f64],
        base: Budget,
        target: Budget,
        base_rng: &mut dyn RngCore,
        topup_rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let sigma_base = Gaussian::calibrated(self.unit_sensitivity, base)?.sigma();
        let sigma_target = Gaussian::calibrated(self.unit_sensitivity, target)?.sigma();
        if sigma_target < sigma_base * (1.0 - 1e-12) {
            return Err(CoreError::InvalidArgument(format!(
                "top-up base must be the weakest member budget: \
                 σ(target) = {sigma_target} < σ(base) = {sigma_base}"
            )));
        }
        // Same two-pass discipline as the LRM top-up: all base draws
        // first, so the shared sequence is independent of this member's
        // own budget.
        let base_noise = Gaussian::centered(sigma_base)?;
        let mut noisy: Vec<f64> = x.iter().map(|&v| v + base_noise.sample(base_rng)).collect();
        let topup_var = (sigma_target * sigma_target - sigma_base * sigma_base).max(0.0);
        if topup_var > 0.0 {
            let topup = Gaussian::centered(topup_var.sqrt())?;
            for v in noisy.iter_mut() {
                *v += topup.sample(topup_rng);
            }
        }
        Ok(self.w.matvec(&noisy))
    }

    /// No finite Gaussian noise achieves pure ε-DP.
    fn expected_error(&self, _eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        f64::INFINITY
    }

    fn expected_error_budget(&self, budget: Budget, _x: Option<&[f64]>) -> f64 {
        match Gaussian::calibrated(self.unit_sensitivity, budget) {
            Ok(g) => g.variance() * self.squared_sum,
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn toy() -> Workload {
        Workload::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, -2.0]]).unwrap()
    }

    #[test]
    fn expected_error_formula() {
        let mech = NoiseOnData::compile(&toy());
        // Σ W² = 1+1+1+4 = 7; error = 2·7/ε².
        let e = eps(0.5);
        assert!((mech.expected_error(e, None) - 2.0 * 7.0 / 0.25).abs() < 1e-9);
    }

    #[test]
    fn unbiased_and_matches_analytic() {
        let w = toy();
        let mech = NoiseOnData::compile(&w);
        let x = [5.0, 2.0, 1.0];
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);
        let trials = 4000;
        let mut sum = [0.0; 2];
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(7, t)).unwrap();
            for (s, g) in sum.iter_mut().zip(got.iter()) {
                *s += g;
            }
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        for (s, y) in sum.iter().zip(truth.iter()) {
            assert!((s / trials as f64 - y).abs() < 0.3, "bias detected");
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn intro_example_error() {
        // Section 1: NOD answers q1/q2/q3 with variance 8/ε², 4/ε², 4/ε²
        // → total 16/ε².
        let w = Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap();
        let mech = NoiseOnData::compile(&w);
        let e = eps(1.0);
        assert!((mech.expected_error(e, None) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn custom_unit_sensitivity() {
        let w = toy();
        let mech = NoiseOnData::with_unit_sensitivity(&w, 2.0).unwrap();
        let base = NoiseOnData::compile(&w);
        let e = eps(1.0);
        assert!((mech.expected_error(e, None) - 4.0 * base.expected_error(e, None)).abs() < 1e-9);
        assert!(NoiseOnData::with_unit_sensitivity(&w, 0.0).is_err());
    }

    #[test]
    fn gaussian_baseline_rejects_pure_and_matches_analytic() {
        let w = toy();
        let mech = GaussianNoiseOnData::compile(&w);
        assert_eq!(mech.name(), "GM");
        let x = [5.0, 2.0, 1.0];
        assert!(mech.answer(&x, eps(1.0), &mut derive_rng(0, 0)).is_err());
        assert!(mech.expected_error(eps(1.0), None).is_infinite());

        let truth = w.answer(&x).unwrap();
        let budget = lrm_dp::Budget::approx(eps(1.0), 1e-6).unwrap();
        let trials = 4000;
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech
                .answer_budget(&x, budget, &mut derive_rng(11, t))
                .unwrap();
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error_budget(budget, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn gaussian_baseline_topup_is_reproducible_and_ordered() {
        let w = toy();
        let mech = GaussianNoiseOnData::compile(&w);
        let x = [5.0, 2.0, 1.0];
        let loose = lrm_dp::Budget::approx(eps(2.0), 1e-6).unwrap();
        let tight = lrm_dp::Budget::approx(eps(0.5), 1e-6).unwrap();

        let a = mech
            .answer_with_topup(
                &x,
                loose,
                tight,
                &mut derive_rng(5, 0),
                &mut derive_rng(5, 1),
            )
            .unwrap();
        let b = mech
            .answer_with_topup(
                &x,
                loose,
                tight,
                &mut derive_rng(5, 0),
                &mut derive_rng(5, 1),
            )
            .unwrap();
        assert_eq!(a, b);
        // Removing noise is impossible.
        assert!(mech
            .answer_with_topup(
                &x,
                tight,
                loose,
                &mut derive_rng(5, 0),
                &mut derive_rng(5, 1)
            )
            .is_err());
        // Zero residual: equals the plain release on the base stream.
        let d = mech
            .answer_with_topup(
                &x,
                loose,
                loose,
                &mut derive_rng(5, 0),
                &mut derive_rng(5, 9),
            )
            .unwrap();
        let plain = mech
            .answer_budget(&x, loose, &mut derive_rng(5, 0))
            .unwrap();
        assert_eq!(d, plain);
    }
}
