//! Wavelet Mechanism (WM) — Privelet, Xiao, Wang & Gehrke (ICDE 2010),
//! the paper's ref \[28\].
//!
//! The mechanism publishes a noisy Haar wavelet transform of the unit
//! counts and answers the workload from the reconstruction:
//!
//! 1. Pad the domain to `n' = 2^h` and take the Haar transform: the
//!    overall mean `a` plus, for every dyadic node `v` at level `l`
//!    (each child spanning `2^l` leaves), the detail coefficient
//!    `d_v = (mean(left) − mean(right))/2`.
//! 2. Adding one record to a leaf changes `a` by `1/n'` and one detail
//!    coefficient per level by `1/2^{l+1}`. With Privelet's weights
//!    `W(a) = n'`, `W(d_v) = 2^{l+1}`, the **generalized sensitivity** is
//!    `ρ = Σ_c W(c)·|Δc| = 1 + h = 1 + log₂ n'`.
//! 3. Publish every coefficient with noise `Lap(ρ / (ε·W(c)))` — ε-DP by
//!    the weighted-Laplace argument (the per-record perturbation measured
//!    in units of each coefficient's noise scale sums to at most ε).
//! 4. Reconstruct `x̂` by the inverse transform and answer `ŷ = W·x̂`.
//!
//! Because `x̂ − x` is a fixed linear map of the coefficient noise, the
//! expected workload error has the closed form
//! `2/ε² · [ (ρ/n')²·‖W·1‖² + Σ_v (ρ/2^{l+1})²·‖W·σ_v‖² ]`
//! where `σ_v` is the ±1 left/right indicator of node `v`; all the
//! `‖W·σ_v‖²` are computed with per-row prefix sums in `O(m·n·log n)`.

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::operator::MatrixOp;
use lrm_workload::Workload;
use rand::RngCore;
use std::sync::Arc;

/// Compiled Privelet mechanism for one workload.
///
/// The workload stays behind its structure-aware operator: compile-time
/// row prefix sums stream one row at a time through `fill_row`, and
/// answering is one structured `W·x̂` matvec — no dense `W` copy.
#[derive(Debug, Clone)]
pub struct WaveletMechanism {
    w: Arc<dyn MatrixOp>,
    n_pad: usize,
    /// `h = log₂ n_pad`; zero for a single-leaf domain.
    levels: usize,
    /// Generalized sensitivity `ρ = 1 + h`.
    rho: f64,
    /// `Σ_c (1/W_c)²·‖W·σ_c‖²` so that expected error = `2ρ²/ε² ·` this.
    weighted_pattern_sum: f64,
}

impl WaveletMechanism {
    /// Compiles the mechanism: fixes the padded Haar tree and precomputes
    /// the closed-form error terms.
    pub fn compile(workload: &Workload) -> Self {
        let w = Arc::clone(workload.op());
        let n = w.cols();
        let n_pad = n.next_power_of_two();
        let levels = n_pad.trailing_zeros() as usize;
        let rho = 1.0 + levels as f64;

        // Row prefix sums over the padded domain (padding columns are 0),
        // streamed row by row through the operator.
        let m = w.rows();
        let mut prefix = vec![vec![0.0; n_pad + 1]; m];
        let mut row_buf = vec![0.0; n];
        for (i, p) in prefix.iter_mut().enumerate() {
            w.fill_row(i, &mut row_buf);
            for (j, &v) in row_buf.iter().enumerate() {
                p[j + 1] = p[j] + v;
            }
            for j in n..n_pad {
                p[j + 1] = p[j];
            }
        }

        // Average coefficient: pattern 1, weight n_pad.
        let mut sum = 0.0;
        let w_inv = 1.0 / n_pad as f64;
        for p in &prefix {
            let row_sum = p[n_pad];
            sum += (row_sum * w_inv).powi(2) * 1.0; // (‖W·1‖² scaled)
        }
        // Detail coefficients: level l has nodes spanning 2^{l+1} leaves.
        for l in 0..levels {
            let span = 1usize << (l + 1);
            let half = span / 2;
            let weight = span as f64; // W(d_v) = 2^{l+1}
            let inv_w2 = 1.0 / (weight * weight);
            for k in 0..(n_pad / span) {
                let lo = k * span;
                let mid = lo + half;
                let hi = lo + span;
                if lo >= n {
                    break; // pattern entirely over zero padding
                }
                let mut pattern_norm_sq = 0.0;
                for p in &prefix {
                    let left = p[mid] - p[lo];
                    let right = p[hi] - p[mid];
                    let v = left - right;
                    pattern_norm_sq += v * v;
                }
                sum += inv_w2 * pattern_norm_sq;
            }
        }

        Self {
            w,
            n_pad,
            levels,
            rho,
            weighted_pattern_sum: sum,
        }
    }

    /// The padded domain size `n' = 2^h`.
    pub fn padded_domain(&self) -> usize {
        self.n_pad
    }

    /// The generalized sensitivity `ρ = 1 + log₂ n'`.
    pub fn generalized_sensitivity(&self) -> f64 {
        self.rho
    }

    /// Number of detail levels `h = log₂ n'` in the Haar tree.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Forward Haar transform: returns `(average, details)` with
    /// `details[l][k]` the coefficient of node `k` at level `l`.
    pub fn haar_forward(x: &[f64]) -> (f64, Vec<Vec<f64>>) {
        let n = x.len();
        assert!(n.is_power_of_two(), "Haar transform needs a 2^h domain");
        let levels = n.trailing_zeros() as usize;
        // `sums[k]` holds block sums at the current granularity.
        let mut sums: Vec<f64> = x.to_vec();
        let mut details = Vec::with_capacity(levels);
        for l in 0..levels {
            let span = 1usize << (l + 1);
            let half_count = n >> (l + 1);
            let mut next = Vec::with_capacity(half_count);
            let mut level_details = Vec::with_capacity(half_count);
            for k in 0..half_count {
                let left = sums[2 * k];
                let right = sums[2 * k + 1];
                // Means of each child block (block size 2^l).
                let denom = (span / 2) as f64;
                level_details.push((left / denom - right / denom) / 2.0);
                next.push(left + right);
            }
            details.push(level_details);
            sums = next;
        }
        let average = sums[0] / n as f64;
        (average, details)
    }

    /// Inverse Haar transform matching [`WaveletMechanism::haar_forward`].
    pub fn haar_inverse(average: f64, details: &[Vec<f64>]) -> Vec<f64> {
        let levels = details.len();
        let n = 1usize << levels;
        let mut x = vec![average; n];
        for (l, level_details) in details.iter().enumerate() {
            for (i, v) in x.iter_mut().enumerate() {
                let node = i >> (l + 1);
                let sign = if (i >> l) & 1 == 0 { 1.0 } else { -1.0 };
                *v += sign * level_details[node];
            }
        }
        x
    }
}

impl Mechanism for WaveletMechanism {
    fn name(&self) -> &'static str {
        "WM"
    }

    fn num_queries(&self) -> usize {
        self.w.rows()
    }

    fn domain_size(&self) -> usize {
        self.w.cols()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let mut padded = x.to_vec();
        padded.resize(self.n_pad, 0.0);

        let (mut average, mut details) = Self::haar_forward(&padded);

        // Noise each coefficient at scale ρ/(ε·W_c).
        let eps_v = eps.value();
        let avg_noise = Laplace::centered(self.rho / (eps_v * self.n_pad as f64))?;
        average += avg_noise.sample(rng);
        for (l, level_details) in details.iter_mut().enumerate() {
            let weight = (1usize << (l + 1)) as f64;
            let noise = Laplace::centered(self.rho / (eps_v * weight))?;
            for d in level_details.iter_mut() {
                *d += noise.sample(rng);
            }
        }

        let reconstructed = Self::haar_inverse(average, &details);
        Ok(self.w.matvec(&reconstructed[..self.w.cols()]))
    }

    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        2.0 * self.rho * self.rho * self.weighted_pattern_sum / (eps.value() * eps.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn haar_round_trip() {
        for &n in &[1usize, 2, 4, 8, 32] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
            let (a, d) = WaveletMechanism::haar_forward(&x);
            let back = WaveletMechanism::haar_inverse(a, &d);
            for (xi, bi) in x.iter().zip(back.iter()) {
                assert!((xi - bi).abs() < 1e-10, "round trip failed at n={n}");
            }
        }
    }

    #[test]
    fn haar_known_values() {
        let x = [4.0, 2.0, 1.0, 3.0];
        let (a, d) = WaveletMechanism::haar_forward(&x);
        assert!((a - 2.5).abs() < 1e-12);
        // Level 0: (4−2)/2 = 1, (1−3)/2 = −1.
        assert!((d[0][0] - 1.0).abs() < 1e-12);
        assert!((d[0][1] + 1.0).abs() < 1e-12);
        // Level 1: (mean(4,2) − mean(1,3))/2 = (3 − 2)/2 = 0.5.
        assert!((d[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn generalized_sensitivity_value() {
        let w = WRange
            .generate(5, 16, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech = WaveletMechanism::compile(&w);
        assert_eq!(mech.generalized_sensitivity(), 5.0); // 1 + log2(16)
        assert_eq!(mech.padded_domain(), 16);
    }

    #[test]
    fn pads_non_power_of_two() {
        let w = Workload::from_rows(&[&[1.0, 1.0, 1.0, 1.0, 1.0]]).unwrap();
        let mech = WaveletMechanism::compile(&w);
        assert_eq!(mech.padded_domain(), 8);
        assert_eq!(mech.levels, 3);
    }

    #[test]
    fn coefficient_sensitivity_sums_to_rho() {
        // Adding one record to leaf i changes a by 1/n' and one detail per
        // level by 1/2^{l+1}; with weights n' and 2^{l+1} the weighted
        // change is exactly ρ.
        let n = 16usize;
        let mut x = vec![0.0; n];
        x[5] = 1.0;
        let (a, d) = WaveletMechanism::haar_forward(&x);
        let levels = d.len();
        let mut weighted = (n as f64) * a.abs();
        for (l, level) in d.iter().enumerate() {
            let weight = (1usize << (l + 1)) as f64;
            weighted += weight * level.iter().map(|v| v.abs()).sum::<f64>();
        }
        assert!(
            (weighted - (1.0 + levels as f64)).abs() < 1e-10,
            "weighted change {weighted}"
        );
    }

    #[test]
    fn empirical_error_matches_closed_form() {
        let w = WRange
            .generate(10, 32, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let mech = WaveletMechanism::compile(&w);
        let x: Vec<f64> = (0..32).map(|i| ((i * 3) % 17) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);
        let trials = 3000;
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(5, t)).unwrap();
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.12,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn unbiased() {
        let w = Workload::from_rows(&[&[1.0, 0.0, 2.0, -1.0]]).unwrap();
        let mech = WaveletMechanism::compile(&w);
        let x = [3.0, 1.0, 4.0, 1.0];
        let truth = w.answer(&x).unwrap()[0];
        let e = eps(2.0);
        let trials = 5000;
        let mut sum = 0.0;
        for t in 0..trials {
            sum += mech.answer(&x, e, &mut derive_rng(6, t)).unwrap()[0];
        }
        let mean = sum / trials as f64;
        assert!((mean - truth).abs() < 0.25, "mean {mean} vs {truth}");
    }

    #[test]
    fn range_query_advantage_on_large_domains() {
        // WM's raison d'être: for range workloads over large domains its
        // error grows polylogarithmically while NOD's grows linearly.
        use crate::baselines::nod::NoiseOnData;
        let mut rng = StdRng::seed_from_u64(3);
        let w = WRange.generate(32, 1024, &mut rng).unwrap();
        let e = eps(0.1);
        let wm = WaveletMechanism::compile(&w);
        let nod = NoiseOnData::compile(&w);
        assert!(
            wm.expected_error(e, None) < nod.expected_error(e, None),
            "WM {} vs NOD {}",
            wm.expected_error(e, None),
            nod.expected_error(e, None)
        );
    }
}
