//! Hierarchical Mechanism (HM) — Hay, Rastogi, Miklau & Suciu
//! (PVLDB 2010), the paper's ref \[15\].
//!
//! The mechanism materializes a complete binary interval tree over the
//! (padded) domain, publishes every node's count with
//! `Lap((h+1)/ε)` noise (the budget is split evenly over the `h+1`
//! levels; one record touches exactly one node per level), and then
//! enforces consistency by **constrained inference**: the published tree
//! is replaced by the least-squares tree that satisfies
//! "parent = sum of children", computed by Hay et al.'s two linear passes:
//!
//! * bottom-up: `z_v = α_ℓ·ỹ_v + (1 − α_ℓ)·Σ_children z_c` with
//!   `α_ℓ = (2^ℓ − 2^{ℓ−1})/(2^ℓ − 1)` for a node at height ℓ (leaves
//!   have ℓ = 1);
//! * top-down: `x̄_root = z_root`,
//!   `x̄_c = z_c + (x̄_v − Σ_{c'} z_{c'})/2`.
//!
//! The consistent leaves answer the workload: `ŷ = W·x̄`.
//!
//! **Closed-form error.** The constrained-inference estimate is the
//! least-squares solution `x̂ = (TᵀT)⁻¹Tᵀ·ỹ` for the tree matrix `T`, so
//! `E‖W(x̂−x)‖² = 2s²·tr(W(TᵀT)⁻¹Wᵀ)`. `TᵀT = Σ_levels blockdiag(J_{2^l})`
//! is diagonalized by the **Haar basis**: the normalized constant vector
//! has eigenvalue `2n−1` and a detail vector spanning a block of size `s`
//! has eigenvalue `s−1`. Hence
//! `tr(W(TᵀT)⁻¹Wᵀ) = ‖W·1‖²/(n(2n−1)) + Σ_v ‖W·σ_v‖²/(s_v(s_v−1))`,
//! computable with row prefix sums in `O(m·n·log n)` — no `n×n` solve.

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::operator::MatrixOp;
use lrm_workload::Workload;
use rand::RngCore;
use std::sync::Arc;

/// Compiled hierarchical mechanism for one workload.
///
/// The workload stays behind its structure-aware operator: the error
/// trace streams rows through `fill_row` at compile time, and answering
/// is one structured `W·x̄` matvec — no dense `W` copy.
#[derive(Debug, Clone)]
pub struct HierarchicalMechanism {
    w: Arc<dyn MatrixOp>,
    n_pad: usize,
    /// Tree height: leaves = 2^height; the tree has `height + 1` levels.
    height: usize,
    /// `tr(W·(TᵀT)⁻¹·Wᵀ)` so expected error = `2·s²·` this.
    trace_term: f64,
}

impl HierarchicalMechanism {
    /// Compiles the mechanism: pads the domain to a power of two and
    /// precomputes the closed-form error trace.
    pub fn compile(workload: &Workload) -> Self {
        let w = Arc::clone(workload.op());
        let n = w.cols();
        let n_pad = n.next_power_of_two();
        let height = n_pad.trailing_zeros() as usize;

        // Row prefix sums on the padded domain, streamed row by row.
        let m = w.rows();
        let mut prefix = vec![vec![0.0; n_pad + 1]; m];
        let mut row_buf = vec![0.0; n];
        for (i, p) in prefix.iter_mut().enumerate() {
            w.fill_row(i, &mut row_buf);
            for (j, &v) in row_buf.iter().enumerate() {
                p[j + 1] = p[j] + v;
            }
            for j in n..n_pad {
                p[j + 1] = p[j];
            }
        }

        // Haar eigen-expansion of tr(W (TᵀT)⁻¹ Wᵀ).
        let mut trace = 0.0;
        // Constant eigenvector: eigenvalue 2n'−1, squared norm n'.
        let lam_const = (2 * n_pad - 1) as f64;
        for p in &prefix {
            let row_sum = p[n_pad];
            trace += row_sum * row_sum / (n_pad as f64 * lam_const);
        }
        // Detail eigenvectors at block size s = 2^{l+1}: eigenvalue s−1,
        // squared norm s.
        if n_pad > 1 {
            for l in 0..height {
                let span = 1usize << (l + 1);
                let half = span / 2;
                let lam = (span - 1) as f64;
                for k in 0..(n_pad / span) {
                    let lo = k * span;
                    if lo >= n {
                        break;
                    }
                    let mid = lo + half;
                    let hi = lo + span;
                    let mut norm_sq = 0.0;
                    for p in &prefix {
                        let v = (p[mid] - p[lo]) - (p[hi] - p[mid]);
                        norm_sq += v * v;
                    }
                    trace += norm_sq / (span as f64 * lam);
                }
            }
        }

        Self {
            w,
            n_pad,
            height,
            trace_term: trace,
        }
    }

    /// Padded domain size (a power of two).
    pub fn padded_domain(&self) -> usize {
        self.n_pad
    }

    /// Number of tree levels `h + 1` — the per-node noise is
    /// `Lap((h+1)/ε)`.
    pub fn num_levels(&self) -> usize {
        self.height + 1
    }

    /// Runs Hay et al.'s two-pass constrained inference on a noisy tree.
    ///
    /// `noisy` holds one `Vec` per level, root first (`noisy\[0\].len() == 1`,
    /// `noisy[h].len() == n_pad`). Returns the consistent leaf estimates.
    pub fn constrained_inference(noisy: &[Vec<f64>]) -> Vec<f64> {
        let levels = noisy.len();
        assert!(levels >= 1, "tree must have at least a root");
        // Bottom-up pass: z values per level.
        let mut z: Vec<Vec<f64>> = noisy.to_vec();
        for depth in (0..levels - 1).rev() {
            // Node at this depth has height ℓ = levels − depth.
            let ell = (levels - depth) as u32;
            let pow_l = 2f64.powi(ell as i32);
            let pow_lm1 = 2f64.powi(ell as i32 - 1);
            let alpha = (pow_l - pow_lm1) / (pow_l - 1.0);
            let (upper, lower) = z.split_at_mut(depth + 1);
            let current = &mut upper[depth];
            let children = &lower[0];
            for (k, zv) in current.iter_mut().enumerate() {
                let child_sum = children[2 * k] + children[2 * k + 1];
                *zv = alpha * noisy[depth][k] + (1.0 - alpha) * child_sum;
            }
        }
        // Top-down pass.
        let mut xbar: Vec<Vec<f64>> = z.clone();
        for depth in 1..levels {
            let (upper, lower) = xbar.split_at_mut(depth);
            let parents = &upper[depth - 1];
            let current = &mut lower[0];
            for k in 0..current.len() {
                let parent = parents[k / 2];
                let sibling_sum = z[depth][2 * (k / 2)] + z[depth][2 * (k / 2) + 1];
                current[k] = z[depth][k] + (parent - sibling_sum) / 2.0;
            }
        }
        xbar[levels - 1].clone()
    }

    /// Builds the exact (noise-free) tree counts for a padded database.
    fn exact_tree(&self, padded: &[f64]) -> Vec<Vec<f64>> {
        let levels = self.num_levels();
        let mut tree: Vec<Vec<f64>> = Vec::with_capacity(levels);
        tree.push(padded.to_vec());
        let mut current = padded.to_vec();
        while current.len() > 1 {
            let next: Vec<f64> = current.chunks_exact(2).map(|c| c[0] + c[1]).collect();
            tree.push(next.clone());
            current = next;
        }
        tree.reverse(); // root first
        tree
    }
}

impl Mechanism for HierarchicalMechanism {
    fn name(&self) -> &'static str {
        "HM"
    }

    fn num_queries(&self) -> usize {
        self.w.rows()
    }

    fn domain_size(&self) -> usize {
        self.w.cols()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let mut padded = x.to_vec();
        padded.resize(self.n_pad, 0.0);

        let scale = self.num_levels() as f64 / eps.value();
        let noise = Laplace::centered(scale)?;
        let mut tree = self.exact_tree(&padded);
        for level in tree.iter_mut() {
            for v in level.iter_mut() {
                *v += noise.sample(rng);
            }
        }

        let leaves = Self::constrained_inference(&tree);
        Ok(self.w.matvec(&leaves[..self.w.cols()]))
    }

    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        let scale = self.num_levels() as f64 / eps.value();
        2.0 * scale * scale * self.trace_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_linalg::decomp::lu;
    use lrm_linalg::{ops, Matrix};
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn exact_tree_counts() {
        let w = Workload::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]).unwrap();
        let mech = HierarchicalMechanism::compile(&w);
        let tree = mech.exact_tree(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree[0], vec![10.0]); // root
        assert_eq!(tree[1], vec![3.0, 7.0]);
        assert_eq!(tree[2], vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn inference_is_identity_on_consistent_trees() {
        // With zero noise the tree is already consistent, so constrained
        // inference must return the exact leaves.
        let w = Workload::from_rows(&[&[1.0; 8]]).unwrap();
        let mech = HierarchicalMechanism::compile(&w);
        let x: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let tree = mech.exact_tree(&x);
        let leaves = HierarchicalMechanism::constrained_inference(&tree);
        for (a, b) in leaves.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inference_matches_explicit_least_squares() {
        // Oracle check: x̂ = (TᵀT)⁻¹Tᵀỹ for the explicit tree matrix.
        let n = 8usize;
        let levels = 4usize; // 1+2+4+8 = 15 nodes

        // Build T (15×8): rows are node interval indicators, root first.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for l in 0..levels {
            let count = 1usize << l;
            let span = n / count;
            for k in 0..count {
                let mut r = vec![0.0; n];
                r[k * span..(k + 1) * span]
                    .iter_mut()
                    .for_each(|v| *v = 1.0);
                rows.push(r);
            }
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let t = Matrix::from_rows(&row_refs);

        // A noisy observation vector, grouped per level for our code.
        let mut rng = derive_rng(123, 0);
        let noise_dist = Laplace::centered(1.5).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i * i % 7) as f64).collect();
        let exact = ops::mul_vec(&t, &x).unwrap();
        let noisy_flat: Vec<f64> = exact
            .iter()
            .map(|v| v + noise_dist.sample(&mut rng))
            .collect();
        let mut noisy_levels = Vec::new();
        let mut idx = 0;
        for l in 0..levels {
            let count = 1usize << l;
            noisy_levels.push(noisy_flat[idx..idx + count].to_vec());
            idx += count;
        }

        let ours = HierarchicalMechanism::constrained_inference(&noisy_levels);

        // Explicit LS: (TᵀT) x̂ = Tᵀ ỹ.
        let tt = ops::gram(&t);
        let tty = ops::tr_mul_vec(&t, &noisy_flat).unwrap();
        let ls = lu::solve(&tt, &tty).unwrap();

        for (a, b) in ours.iter().zip(ls.iter()) {
            assert!((a - b).abs() < 1e-9, "two-pass {a} vs least squares {b}");
        }
    }

    #[test]
    fn closed_form_error_matches_ls_trace() {
        // tr(W (TᵀT)⁻¹ Wᵀ) via the Haar eigenbasis must equal the direct
        // dense computation on a small instance.
        let mut rng = StdRng::seed_from_u64(9);
        let w = WRange.generate(6, 16, &mut rng).unwrap();
        let mech = HierarchicalMechanism::compile(&w);

        // Dense oracle.
        let n = 16usize;
        let levels = 5usize;
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for l in 0..levels {
            let count = 1usize << l;
            let span = n / count;
            for k in 0..count {
                let mut r = vec![0.0; n];
                r[k * span..(k + 1) * span]
                    .iter_mut()
                    .for_each(|v| *v = 1.0);
                rows.push(r);
            }
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let t = Matrix::from_rows(&row_refs);
        let tt_inv = lu::inverse(&ops::gram(&t)).unwrap();
        let wt = w.matrix().transpose();
        let prod = ops::matmul(&tt_inv, &wt).unwrap(); // (TᵀT)⁻¹Wᵀ
        let full = ops::matmul(&w.matrix(), &prod).unwrap(); // W(TᵀT)⁻¹Wᵀ
        let oracle = full.trace().unwrap();

        assert!(
            (mech.trace_term - oracle).abs() < 1e-9 * oracle.max(1.0),
            "haar trace {} vs dense {}",
            mech.trace_term,
            oracle
        );
    }

    #[test]
    fn empirical_error_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(10);
        let w = WRange.generate(8, 32, &mut rng).unwrap();
        let mech = HierarchicalMechanism::compile(&w);
        let x: Vec<f64> = (0..32).map(|i| ((i * 5) % 23) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);
        let trials = 3000;
        let mut sq = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(17, t)).unwrap();
            sq += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, None);
        assert!(
            (empirical - analytic).abs() / analytic < 0.12,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn single_leaf_domain() {
        let w = Workload::from_rows(&[&[2.0]]).unwrap();
        let mech = HierarchicalMechanism::compile(&w);
        assert_eq!(mech.num_levels(), 1);
        let e = eps(1.0);
        // One node, scale 1/ε, pattern W·1 = 2 → error 2·(1/ε)²·(2²/(1·1)).
        let expected = 2.0 * 4.0;
        assert!((mech.expected_error(e, None) - expected).abs() < 1e-9);
    }

    #[test]
    fn beats_nod_on_large_range_workloads() {
        use crate::baselines::nod::NoiseOnData;
        let mut rng = StdRng::seed_from_u64(11);
        let w = WRange.generate(32, 1024, &mut rng).unwrap();
        let e = eps(0.1);
        let hm = HierarchicalMechanism::compile(&w);
        let nod = NoiseOnData::compile(&w);
        assert!(
            hm.expected_error(e, None) < nod.expected_error(e, None),
            "HM {} vs NOD {}",
            hm.expected_error(e, None),
            nod.expected_error(e, None)
        );
    }
}
