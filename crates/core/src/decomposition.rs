//! Workload matrix decomposition — Sections 4 and 5 of the paper.
//!
//! Finds `B ∈ R^{m×r}`, `L ∈ R^{r×n}` minimizing `tr(BᵀB)` subject to
//! `‖W − B·L‖_F ≤ γ` and `∀j Σ_i |L_ij| ≤ 1` (Formulas 7/8), via the
//! inexact Augmented Lagrangian method of **Algorithm 1**:
//!
//! * the Lagrangian subproblem
//!   `J(B,L) = ½tr(BᵀB) + ⟨π, W−BL⟩ + β/2‖W−BL‖²_F`
//!   is bi-convex and solved by alternating
//!   - the closed-form `B` update `B = (βW + π)Lᵀ(βLLᵀ + I)⁻¹` (Eq. 9,
//!     a Cholesky solve — the system is SPD by construction), and
//!   - Nesterov's projected gradient on
//!     `G(L) = β/2·tr(LᵀBᵀBL) − tr((βW+π)ᵀBL)` (Formula 10,
//!     **Algorithm 2**) with per-column L1-ball projection (Formula 11);
//! * the outer loop doubles β every 10 iterations and updates
//!   `π ← π + β(W − BL)`, stopping when `‖W−BL‖_F ≤ γ` or β saturates.
//!
//! Initialization uses the feasible construction from the Lemma 3 proof:
//! `B₀ = √ρ·U·Σ`, `L₀ = V/√ρ` (ρ = number of singular values used), which
//! is feasible because each column `v` of `V` has `‖v‖₁ ≤ √ρ·‖v‖₂ ≤ √ρ`.
//! The solver therefore starts at the Lemma 3 upper bound and improves
//! monotonically in practice.

use crate::error::CoreError;
use lrm_dp::{sensitivity, Budget, Gaussian, SensitivityNorm};
use lrm_linalg::decomp::Cholesky;
use lrm_linalg::operator::MatrixOp;
use lrm_linalg::{ops, Matrix};
use lrm_opt::{
    nesterov_projected, project_columns_l1, project_columns_l2, AlmSchedule, AlmState,
    NesterovConfig, WarmStart,
};
use lrm_workload::{Workload, WorkloadStructure};

/// Projects every column of `l` onto the unit-radius ball of the given
/// sensitivity norm — the feasible set of the pure-ε (L1/Laplace) or
/// approximate-DP (L2/Gaussian) decomposition respectively.
fn project_columns(l: &mut Matrix, radius: f64, norm: SensitivityNorm) {
    match norm {
        SensitivityNorm::L1 => {
            project_columns_l1(l, radius);
        }
        SensitivityNorm::L2 => {
            project_columns_l2(l, radius);
        }
    }
}

/// `max_j ‖L_:j‖` under the given norm — the sensitivity the feasibility
/// safety check re-asserts before privacy accounting trusts `Δ ≤ 1`.
fn max_col_norm(l: &Matrix, norm: SensitivityNorm) -> f64 {
    match norm {
        SensitivityNorm::L1 => l.max_col_abs_sum(),
        SensitivityNorm::L2 => sensitivity::l2_sensitivity(l),
    }
}

/// How to choose the inner dimension `r` of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetRank {
    /// `r = max(1, round(ratio · rank(W)))` — the paper's Fig. 3
    /// parameterization; the recommended ratio is 1.0–1.2 (Section 6.1).
    RatioOfRank(f64),
    /// An explicit `r`.
    Exact(usize),
}

impl TargetRank {
    /// Resolves to a concrete `r` for the given workload.
    pub fn resolve(&self, workload: &Workload) -> Result<usize, CoreError> {
        match *self {
            TargetRank::RatioOfRank(ratio) => {
                if !(ratio > 0.0 && ratio.is_finite()) {
                    return Err(CoreError::InvalidArgument(format!(
                        "rank ratio must be positive, got {ratio}"
                    )));
                }
                let rank = workload.rank().max(1);
                Ok(((ratio * rank as f64).round() as usize).max(1))
            }
            TargetRank::Exact(r) => {
                if r == 0 {
                    return Err(CoreError::InvalidArgument(
                        "decomposition rank r must be at least 1".into(),
                    ));
                }
                Ok(r)
            }
        }
    }
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DecompositionConfig {
    /// Inner dimension `r`; default `1.2 · rank(W)` per Section 6.1
    /// ("a good value for r is between rank(W) and 1.2·rank(W)").
    pub target_rank: TargetRank,
    /// Relaxation tolerance γ on `‖W − BL‖_F` (Formula 8). The paper's
    /// Fig. 2 shows accuracy is flat over γ ∈ [1e-4, 10] while larger γ is
    /// faster; 0.01 is the default grid point.
    pub gamma: f64,
    /// β schedule (β₀ = 1, ×2 every 10 outer iterations, as in the paper).
    pub schedule: AlmSchedule,
    /// Cap on outer (multiplier) iterations.
    pub max_outer_iters: usize,
    /// B/L alternations per subproblem solve ("approximately solve", line
    /// 3-6 of Algorithm 1).
    pub inner_alternations: usize,
    /// Relative change threshold that ends the inner loop early.
    pub inner_tol: f64,
    /// Budget for the Nesterov `L`-solver (Algorithm 2).
    pub nesterov: NesterovConfig,
    /// Extra outer iterations run after `τ ≤ γ` first holds, to let τ
    /// collapse further at (almost) no cost in Φ. This is what keeps the
    /// data-dependent structural error `‖(W−BL)x‖²` negligible — the
    /// behaviour behind the flat γ-curves of the paper's Fig. 2.
    pub polish_iters: usize,
}

impl Default for DecompositionConfig {
    fn default() -> Self {
        Self {
            target_rank: TargetRank::RatioOfRank(1.2),
            gamma: 0.01,
            schedule: AlmSchedule::default(),
            max_outer_iters: 120,
            inner_alternations: 4,
            inner_tol: 1e-7,
            nesterov: NesterovConfig {
                max_iters: 40,
                ..NesterovConfig::default()
            },
            polish_iters: 30,
        }
    }
}

impl DecompositionConfig {
    /// Validates configuration parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.gamma >= 0.0 && self.gamma.is_finite()) {
            return Err(CoreError::InvalidArgument(format!(
                "gamma must be non-negative and finite, got {}",
                self.gamma
            )));
        }
        if self.max_outer_iters == 0 || self.inner_alternations == 0 {
            return Err(CoreError::InvalidArgument(
                "iteration budgets must be at least 1".into(),
            ));
        }
        self.schedule
            .validate()
            .map_err(CoreError::InvalidArgument)?;
        Ok(())
    }
}

/// Solver diagnostics.
#[derive(Debug, Clone)]
pub struct DecompositionStats {
    /// Outer (multiplier) iterations performed.
    pub outer_iterations: usize,
    /// Final `‖W − BL‖_F`.
    pub residual: f64,
    /// Final penalty β.
    pub final_beta: f64,
    /// Whether the `residual ≤ γ` criterion fired (vs. β saturation or the
    /// iteration cap).
    pub converged: bool,
    /// `tr(BᵀB)` at the initializer (the Lemma 3 construction), for
    /// measuring how much the optimizer improved on it.
    pub initial_scale: f64,
    /// True when the solver never reached `τ ≤ γ` and the result is the
    /// (feasible) Lemma 3 initializer instead of the last ALM iterate.
    pub fell_back_to_initializer: bool,
    /// True when the run started from a caller-supplied warm-start seed
    /// (a cached decomposition) instead of the Lemma 3 construction.
    pub warm_started: bool,
}

/// The decomposition `W ≈ B·L` produced by Algorithm 1.
#[derive(Debug, Clone)]
pub struct WorkloadDecomposition {
    b: Matrix,
    l: Matrix,
    /// `W − B·L`, kept for the structural-error term of Theorem 3.
    residual_matrix: Matrix,
    /// Which column norm bounds the sensitivity of `L` — L1 for the
    /// paper's pure-ε (Laplace) mechanism, L2 for the approximate-DP
    /// (Gaussian) variant. The norm is part of the strategy's identity:
    /// an L1-feasible `L` says nothing about Gaussian calibration.
    norm: SensitivityNorm,
    stats: DecompositionStats,
}

impl WorkloadDecomposition {
    /// Runs Algorithm 1 on the workload.
    ///
    /// Every product involving `W` goes through the workload's
    /// [`MatrixOp`]: `W·Lᵀ` and `Bᵀ·W` are structured operator products,
    /// the residual is assembled as `−(B·L) + W` without materializing
    /// `W`, and the Lemma 3 initializer consumes the operator-aware SVD.
    /// For sparse/implicit workloads the dense `m×n` matrix therefore
    /// never exists — only the multiplier π and the residual are dense
    /// (they are genuinely dense objects of the algorithm), and the
    /// GEMMs against π are skipped outright while π is still zero, which
    /// covers every outer iteration of a run that converges before the
    /// first multiplier update.
    pub fn compute(workload: &Workload, config: &DecompositionConfig) -> Result<Self, CoreError> {
        Self::compute_with_init_flavored(workload, config, SensitivityNorm::L1, None)
    }

    /// Runs Algorithm 1 with the feasible set chosen by `norm`: per-column
    /// **L1** balls for the paper's pure-ε (Laplace) mechanism, per-column
    /// **L2** balls for the approximate-DP (Gaussian) variant. The L2 ball
    /// contains the L1 ball, so the Gaussian program optimizes over a
    /// strictly larger feasible set — everything else (the ALM outer loop,
    /// the convergence contract, the polish phase) is shared code.
    pub fn compute_flavored(
        workload: &Workload,
        config: &DecompositionConfig,
        norm: SensitivityNorm,
    ) -> Result<Self, CoreError> {
        Self::compute_with_init_flavored(workload, config, norm, None)
    }

    /// Runs Algorithm 1 from a warm-start seed instead of the Lemma 3
    /// construction: the seed `L` is re-projected onto the target rank
    /// (feasible by construction, see [`WarmStart::reproject_l`]) and `B`
    /// is either taken from the seed (when its shape matches exactly) or
    /// refit in closed form — the β→∞ limit of Eq. 9, which is the best
    /// `B` for the seeded `L` and works across different query counts
    /// `m`. Everything after the initializer — the outer loop, the
    /// convergence criteria, the polish phase, the safety fallbacks — is
    /// the identical code path as [`Self::compute`], so a warm-started
    /// decomposition meets exactly the same feasibility and convergence
    /// contract as a cold one; only the starting point (and therefore
    /// the recorded `outer_iterations`) differs.
    ///
    /// A seed over the wrong domain size (or a failing closed-form
    /// refit) is ignored and the run falls back to the cold initializer;
    /// `stats().warm_started` reports what actually happened.
    pub fn compute_with_init(
        workload: &Workload,
        config: &DecompositionConfig,
        init: Option<&WarmStart>,
    ) -> Result<Self, CoreError> {
        Self::compute_with_init_flavored(workload, config, SensitivityNorm::L1, init)
    }

    /// [`Self::compute_flavored`] from a warm-start seed. The seed is
    /// re-projected onto the **target** norm's feasible set
    /// ([`WarmStart::reproject_l`] / [`WarmStart::reproject_l_l2`]), which
    /// is what lets an L1-optimized neighbor seed — never serve — an L2
    /// compile: the factors carry over, the feasible set does not.
    pub fn compute_with_init_flavored(
        workload: &Workload,
        config: &DecompositionConfig,
        norm: SensitivityNorm,
        init: Option<&WarmStart>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let op = workload.op().as_ref();
        let (m, n) = op.shape();
        let w_fro = op.frobenius_sq().sqrt();
        let r = config.target_rank.resolve(workload)?;

        // --- Initialization: warm-start seed, else Lemma 3. ---
        let warm_init = init
            .filter(|seed| seed.domain_size() == n && seed.rank() > 0)
            .and_then(|seed| {
                let l = match norm {
                    SensitivityNorm::L1 => seed.reproject_l(r),
                    SensitivityNorm::L2 => seed.reproject_l_l2(r),
                };
                // Always refit B against the *new* workload (the β→∞
                // limit of Eq. 9) instead of trusting the seed's B: the
                // seed was fit to a similar-but-different W, and carrying
                // its B verbatim would bake the old workload into the
                // warm-start multiplier below. The refit also makes seeds
                // portable across query counts m.
                let b = refit_b(op, &l).ok()?;
                if b.has_non_finite() || l.has_non_finite() {
                    return None;
                }
                Some((b, l))
            });
        let warm_started = warm_init.is_some();
        let (mut b, mut l) = match warm_init {
            Some(pair) => pair,
            None => lemma3_initializer(workload, r),
        };
        debug_assert_eq!(b.shape(), (m, r));
        debug_assert_eq!(l.shape(), (r, n));
        let initial_scale = b.squared_sum();

        let mut residual = residual_of(op, &b, &l);

        // A warm seed must resume the ALM trajectory, not replay it: with
        // (near-)exact inner solves the iterates depend only on (β, π),
        // so a fresh π = 0 would let the first β₀ subproblem walk the
        // seed straight back to the high-residual regime the cold run
        // climbs out of, forgetting the seed entirely. Reconstruct the
        // multiplier from the seed's own KKT condition instead — at an
        // ALM optimum `∂(½tr(BᵀB) − ⟨π, BL⟩)/∂B = 0` gives `B = π·Lᵀ`,
        // solved (ridge-stabilized) by `π = B·(LLᵀ)⁻¹·L`. The convergence
        // criteria are untouched; only the starting multiplier differs.
        let mut alm = None;
        if warm_started {
            if let Ok(pi0) = kkt_multiplier(&b, &l) {
                alm = AlmState::with_multiplier(pi0, config.schedule.clone()).ok();
            }
        }
        let mut alm = match alm {
            Some(state) => state,
            None => {
                AlmState::new(m, n, config.schedule.clone()).map_err(CoreError::InvalidArgument)?
            }
        };
        let mut stats = DecompositionStats {
            outer_iterations: 0,
            residual: residual.frobenius_norm(),
            final_beta: alm.beta(),
            converged: stats_converged(residual.frobenius_norm(), config.gamma),
            initial_scale,
            fell_back_to_initializer: false,
            warm_started,
        };
        if stats.converged && initial_scale == 0.0 {
            // Zero workload: (B, L) = (0, 0) is already optimal.
            return Ok(Self {
                b,
                l,
                residual_matrix: residual,
                norm,
                stats,
            });
        }

        let mut lipschitz_warm_start = config.nesterov.initial_lipschitz;

        // γ far beyond a few percent of ‖W‖_F would let the loop stop at a
        // meaningless early iterate (the paper never operates there: its
        // γ ≤ 10 against ‖W‖_F in the hundreds). Clamp the *stopping*
        // threshold; the caller's γ still defines `converged`.
        let gamma_eff = config.gamma.min(0.02 * w_fro).max(1e-10);
        // Once τ ≤ γ first fires we keep iterating for a bounded number of
        // polish rounds: the ALM trajectory collapses τ by further orders
        // of magnitude at almost no cost in Φ (which is what makes the
        // paper's Fig. 2 flat in γ — the structural error ‖(W−BL)x‖²
        // becomes negligible even for large-count databases). We track the
        // best feasible iterate seen and return it.
        let polish_floor = 1e-5 * (1.0 + w_fro);
        let mut polish_remaining: Option<usize> = None;
        let mut polish_stall = 0usize;
        let mut best: Option<(Matrix, Matrix, Matrix, f64, f64)> = None; // (B, L, res, τ, Φ)
        let mut phi_at_first_feasible = f64::INFINITY;

        for _outer in 0..config.max_outer_iters {
            // Cooperative per-batch compile deadline (see
            // `lrm_opt::deadline`): an over-budget ALM run is abandoned
            // with a typed error so the serving layer can answer the
            // batch with a non-iterative fallback at the same ε. Checked
            // once per outer iteration; the Nesterov inner loop polls the
            // same token and truncates itself, bounding the overshoot to
            // roughly one inner alternation.
            lrm_testing::failpoint!("core::alm::stall");
            if lrm_opt::deadline::expired() {
                return Err(CoreError::DeadlineExceeded);
            }
            let beta = alm.beta();
            let pi = alm.multiplier();
            // Both updates target βW + π. W stays behind the operator; the
            // π GEMMs are skipped while π is still exactly zero (true for
            // every iteration before the first multiplier update — i.e.
            // the whole run, when the initializer already satisfies τ ≤ γ).
            let pi_is_zero = pi.max_abs() == 0.0;
            // Dense workloads materialize βW + π once per outer iteration
            // and run the fused GEMMs — the exact pre-operator arithmetic,
            // kept because the β=1 ALM phase is chaotic enough that a
            // different-but-equivalent rounding can change which attractor
            // a borderline run lands in. Structured workloads use the
            // split products; βW + π for them would BE the densification
            // this refactor removes.
            let fused_bw_pi: Option<Matrix> = if workload.structure() == WorkloadStructure::Dense {
                let mut bw_pi = workload.matrix().scale(beta);
                bw_pi += pi;
                Some(bw_pi)
            } else {
                None
            };

            // --- Inner loop: alternate B (Eq. 9) and L (Algorithm 2). ---
            // During the polish phase the subproblems are solved harder:
            // ALM's multiplier converges superlinearly only under
            // (near-)exact solves, and exactness is what collapses τ the
            // final orders of magnitude.
            let (alternations, nesterov_cfg) = if polish_remaining.is_some() {
                (
                    config.inner_alternations * 2,
                    NesterovConfig {
                        max_iters: config.nesterov.max_iters * 2,
                        ..config.nesterov.clone()
                    },
                )
            } else {
                (config.inner_alternations, config.nesterov.clone())
            };
            for _inner in 0..alternations {
                // (βW + π)·Lᵀ — the Eq. 9 right-hand side. Structured
                // path: W·Lᵀ is a structured operator product and the
                // dense π·Lᵀ GEMM is skipped while π = 0.
                let rhs_b = if let Some(bw_pi) = &fused_bw_pi {
                    ops::mul_tr(bw_pi, &l)?
                } else {
                    let mut rhs = op.mul_tr(&l);
                    rhs.map_inplace(|x| x * beta);
                    if !pi_is_zero {
                        rhs += &ops::mul_tr(pi, &l)?;
                    }
                    rhs
                };
                let b_new = update_b(&rhs_b, &l, beta)?;

                // Bᵀ(βW + π) — the Formula 10 linear term, same split.
                let bt_target = if let Some(bw_pi) = &fused_bw_pi {
                    ops::tr_mul(&b_new, bw_pi)?
                } else {
                    let mut t = op.tr_mul(&b_new);
                    t.map_inplace(|x| x * beta);
                    if !pi_is_zero {
                        t += &ops::tr_mul(&b_new, pi)?;
                    }
                    t
                };
                let (l_new, lipschitz) = update_l(
                    &bt_target,
                    &b_new,
                    &l,
                    beta,
                    norm,
                    &nesterov_cfg,
                    lipschitz_warm_start,
                );
                lipschitz_warm_start = (lipschitz * 0.5).max(1e-6);

                let change = relative_change(&b, &b_new) + relative_change(&l, &l_new);
                b = b_new;
                l = l_new;
                if change < config.inner_tol {
                    break;
                }
            }

            residual = residual_of(op, &b, &l);
            let mut tau = residual.frobenius_norm();

            // Warm runs check feasibility through the β→∞ refit lens every
            // iteration (cold runs only at the very end): the ALM iterate's
            // B lags the penalty schedule by design, so its τ can hover
            // just above γ for many outer iterations while the *optimal* B
            // for the current L has long been feasible. The tolerance is
            // identical — only which B is measured differs — and the same
            // Φ guard as the final refit keeps the swap from trading scale
            // for residual.
            if warm_started && tau > gamma_eff {
                if let Ok(refit) = refit_b(op, &l) {
                    let refit_residual = residual_of(op, &refit, &l);
                    let refit_tau = refit_residual.frobenius_norm();
                    let phi_ok = refit.squared_sum() <= b.squared_sum() * 1.05 + 1e-12;
                    if refit_tau <= gamma_eff && phi_ok {
                        b = refit;
                        residual = refit_residual;
                        tau = refit_tau;
                    }
                }
            }
            stats.outer_iterations += 1;
            stats.residual = tau;
            stats.final_beta = alm.beta();
            // Data-independent by construction: τ is a property of the
            // workload factorization alone (see lrm_opt::telemetry).
            lrm_opt::telemetry::observe(lrm_opt::AlmIteration {
                outer: stats.outer_iterations,
                residual: tau,
                beta: alm.beta(),
            });

            // Algorithm 1, line 8: τ ≤ γ (plus the polish rounds) or a
            // saturated β end the optimization.
            if tau <= gamma_eff {
                stats.converged = true;
                match polish_remaining {
                    None => {
                        polish_remaining = Some(config.polish_iters);
                        phi_at_first_feasible = b.squared_sum();
                        best = Some((
                            b.clone(),
                            l.clone(),
                            residual.clone(),
                            tau,
                            phi_at_first_feasible,
                        ));
                    }
                    Some(ref mut left) => {
                        let phi = b.squared_sum();
                        // Accept strictly smaller τ as long as Φ has not
                        // drifted meaningfully above the first feasible Φ.
                        if phi <= phi_at_first_feasible * 1.05 {
                            if let Some((_, _, _, best_tau, _)) = best {
                                if tau < best_tau * 0.97 {
                                    best = Some((b.clone(), l.clone(), residual.clone(), tau, phi));
                                    polish_stall = 0;
                                } else {
                                    polish_stall += 1;
                                }
                            }
                        } else {
                            polish_stall += 1;
                        }
                        if *left == 0 || polish_stall >= 5 {
                            break;
                        }
                        *left -= 1;
                    }
                }
                // τ small enough that the structural term is negligible
                // for any realistic data scale: stop polishing.
                if tau <= polish_floor {
                    break;
                }
            } else if let Some(ref mut left) = polish_remaining {
                // Fell back out of feasibility during polish; allow the
                // remaining budget to recover, else return the stored best.
                if *left == 0 {
                    break;
                }
                *left -= 1;
            }
            if alm.beta_saturated() {
                break;
            }
            alm.advance(&residual);

            // Alternating minimization can kill a direction for good: once
            // row i of L hits exactly zero (column-wise soft-thresholding
            // does this), Eq. 9 zeroes column i of B, and then the gradient
            // of Formula 10 w.r.t. row i vanishes identically — neither
            // update can revive it, no matter how large π grows. Re-seed
            // dead rows with the residual's leading right-singular
            // directions so the lost rank is spent where it reduces the
            // constraint violation most.
            if tau > gamma_eff {
                revive_dead_directions(&mut b, &mut l, &residual, norm);
            }
        }
        let had_feasible = best.is_some();
        if let Some((best_b, best_l, best_res, best_tau, _)) = best {
            b = best_b;
            l = best_l;
            residual = best_res;
            stats.residual = best_tau;
        }
        // Final exact refit of B: the β→∞ limit of Eq. 9 is the plain
        // least-squares fit B = W·Lᵀ(LLᵀ)⁻¹, which realizes the *minimum*
        // residual any B can achieve for the found L (the projection of W
        // off rowspace(L)) at a negligible Φ increase. This is what drives
        // τ the last orders of magnitude down and keeps the Theorem-3
        // structural term out of sight for any γ — the paper's flat Fig. 2.
        if let Ok(refit) = refit_b(op, &l) {
            let refit_residual = residual_of(op, &refit, &l);
            let refit_tau = refit_residual.frobenius_norm();
            // Guard: far from convergence the LS fit chases the residual
            // with an enormous Φ; only accept a cheap improvement.
            let phi_ok = refit.squared_sum() <= b.squared_sum() * 1.05 + 1e-12;
            if refit_tau < stats.residual && phi_ok {
                b = refit;
                residual = refit_residual;
                stats.residual = refit_tau;
            }
        }
        if !had_feasible && stats.residual > 0.02 * w_fro {
            // The ALM iterate is still far from W (e.g. an undersized r or
            // an exhausted budget on a hard instance). When the Lemma 3
            // initializer was essentially exact (r ≥ rank(W)), fall back
            // to it: its Φ = ρ·Σλ² is worse than a converged solve but its
            // residual is ~zero, so the mechanism's error stays bounded by
            // Lemma 3 instead of blowing up through the data-dependent
            // structural term. A final iterate within 2% of ‖W‖_F is kept
            // even if it missed the literal γ — the paper's Algorithm 1
            // likewise returns the last ALM iterate on exhaustion.
            let (init_b, init_l) = lemma3_initializer(workload, r);
            let init_residual = residual_of(op, &init_b, &init_l);
            let init_tau = init_residual.frobenius_norm();
            if init_tau < stats.residual && init_tau <= 1e-6 * (1.0 + w_fro) {
                b = init_b;
                l = init_l;
                residual = init_residual;
                stats.residual = init_tau;
                stats.fell_back_to_initializer = true;
            }
        }
        stats.converged = stats_converged(stats.residual, config.gamma);

        // Numerical safety: the Nesterov projection guarantees feasibility,
        // but re-assert it so downstream privacy accounting can rely on
        // Δ(B, L) ≤ 1 — measured in the norm this decomposition's
        // mechanism actually calibrates noise against.
        let over = max_col_norm(&l, norm);
        if over > 1.0 + 1e-9 {
            project_columns(&mut l, 1.0, norm);
            residual = residual_of(op, &b, &l);
            stats.residual = residual.frobenius_norm();
        }

        Ok(Self {
            b,
            l,
            residual_matrix: residual,
            norm,
            stats,
        })
    }

    /// Assembles a decomposition from explicit factors (used when loading
    /// a cached decomposition from disk; see `crate::persistence`). The
    /// residual must be `W − B·L` for the workload it will answer — the
    /// loader recomputes it rather than trusting storage.
    pub fn from_parts(b: Matrix, l: Matrix, residual: Matrix) -> Self {
        Self::from_parts_with_norm(b, l, residual, SensitivityNorm::L1)
    }

    /// [`Self::from_parts`] with an explicit sensitivity norm — used when
    /// loading an approximate-DP (L2/Gaussian) strategy from the store.
    pub fn from_parts_with_norm(
        b: Matrix,
        l: Matrix,
        residual: Matrix,
        norm: SensitivityNorm,
    ) -> Self {
        let stats = DecompositionStats {
            outer_iterations: 0,
            residual: residual.frobenius_norm(),
            final_beta: 0.0,
            converged: true,
            initial_scale: b.squared_sum(),
            fell_back_to_initializer: false,
            warm_started: false,
        };
        Self {
            b,
            l,
            residual_matrix: residual,
            norm,
            stats,
        }
    }

    /// The `m×r` factor `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The `r×n` factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Inner dimension `r`.
    pub fn rank(&self) -> usize {
        self.b.cols()
    }

    /// Solver diagnostics.
    pub fn stats(&self) -> &DecompositionStats {
        &self.stats
    }

    /// `W − B·L`.
    pub fn residual_matrix(&self) -> &Matrix {
        &self.residual_matrix
    }

    /// The paper's query scale `Φ(B, L) = tr(BᵀB)` (Definition 1).
    pub fn scale(&self) -> f64 {
        sensitivity::query_scale(&self.b)
    }

    /// The sensitivity norm this decomposition's feasible set (and
    /// therefore its noise calibration) is defined in.
    pub fn norm(&self) -> SensitivityNorm {
        self.norm
    }

    /// The query sensitivity `Δ(B, L) = max_j ‖L_:j‖` under this
    /// decomposition's [`norm`](Self::norm) (the paper's Definition 2 for
    /// L1; the Gaussian variant's L2 twin); ≤ 1 by construction.
    pub fn sensitivity(&self) -> f64 {
        match self.norm {
            SensitivityNorm::L1 => sensitivity::l1_sensitivity(&self.l),
            SensitivityNorm::L2 => sensitivity::l2_sensitivity(&self.l),
        }
    }

    /// Lemma 1: expected squared noise error `2·Φ·Δ²/ε²` of the Laplace
    /// release. An L2 decomposition cannot be released at a pure-ε budget
    /// at all, so it reports `+∞` here — use
    /// [`Self::expected_noise_error_budget`].
    pub fn expected_noise_error(&self, eps: f64) -> f64 {
        match self.norm {
            SensitivityNorm::L1 => {
                let delta = self.sensitivity();
                2.0 * self.scale() * delta * delta / (eps * eps)
            }
            SensitivityNorm::L2 => f64::INFINITY,
        }
    }

    /// Expected squared noise error under an (ε, δ) budget: the Lemma 1
    /// Laplace formula for L1 decompositions (pure ε-DP also satisfies
    /// every (ε, δ), at unchanged noise), or `σ²·Φ` for L2 decompositions
    /// with σ from the analytic Gaussian calibration. An L2 decomposition
    /// under a pure (δ = 0) budget reports `+∞`: no finite Gaussian noise
    /// achieves ε-DP.
    pub fn expected_noise_error_budget(&self, budget: Budget) -> f64 {
        match self.norm {
            SensitivityNorm::L1 => self.expected_noise_error(budget.eps().value()),
            SensitivityNorm::L2 => {
                let delta2 = self.sensitivity();
                if delta2 == 0.0 {
                    return 0.0;
                }
                match Gaussian::calibrated(delta2, budget) {
                    Ok(g) => sensitivity::linear_gaussian_error(&self.b, g.sigma()),
                    Err(_) => f64::INFINITY,
                }
            }
        }
    }

    /// Structural error `‖(W − BL)·x‖²` of the relaxed decomposition
    /// (the data-dependent term of Theorem 3).
    pub fn structural_error(&self, x: &[f64]) -> Result<f64, CoreError> {
        let residual_answers = ops::mul_vec(&self.residual_matrix, x)?;
        Ok(residual_answers.iter().map(|v| v * v).sum())
    }
}

fn stats_converged(residual: f64, gamma: f64) -> bool {
    // "τ is sufficiently small": we treat γ as that threshold; for γ = 0 a
    // tiny numerical floor stands in.
    residual <= gamma.max(1e-10)
}

/// `W − B·L`, assembled as `−(B·L) + W` so the workload operator never has
/// to densify: the only `m×n` buffer is the residual itself (which the
/// Theorem-3 structural term genuinely needs). Bit-identical to the dense
/// `w − bl` (IEEE subtraction is `a + (−b)`).
pub(crate) fn residual_of(op: &dyn MatrixOp, b: &Matrix, l: &Matrix) -> Matrix {
    let mut out = ops::matmul(b, l).expect("decomposition shapes agree");
    out.map_inplace(|x| -x);
    op.add_to(&mut out);
    out
}

fn relative_change(old: &Matrix, new: &Matrix) -> f64 {
    let denom = old.frobenius_norm().max(1e-12);
    (new - old).frobenius_norm() / denom
}

/// The multiplier a warm-start seed would have ended with: at an ALM
/// optimum the B-stationarity of the Lagrangian gives `B = π·Lᵀ`, whose
/// ridge-stabilized solution is `π = B·(LLᵀ + δI)⁻¹·L`. For `W = B·L`
/// this makes the seed an exact fixed point of the Eq. 9 update at any β
/// — which is precisely what "resuming" the trajectory means.
fn kkt_multiplier(b: &Matrix, l: &Matrix) -> Result<Matrix, CoreError> {
    let r = l.rows();
    let base = ops::mul_tr(l, l)?; // L·Lᵀ, r×r
    let mean_eig = (base.trace()? / r as f64).max(1e-300);
    let b_norm = b.frobenius_norm().max(1e-300);
    // When the seed's L has near-dead directions, LLᵀ is nearly singular
    // and the tiniest ridge lets π blow up along the noise directions —
    // injecting a multiplier with ‖π‖ ≫ ‖B‖ makes the first subproblem
    // *diverge* instead of resume (healthy seeds measure ‖π‖/‖B‖ well
    // under 1). Escalate the ridge until the solve stops amplifying; a
    // stronger ridge only damps the weak directions, so the fixed-point
    // property is preserved exactly where it is trustworthy.
    for ridge_rel in [1e-12, 1e-8, 1e-5, 1e-2] {
        let mut sys = base.clone();
        let ridge = mean_eig * ridge_rel;
        for i in 0..r {
            let v = sys.get(i, i) + ridge;
            sys.set(i, i, v);
        }
        let chol = Cholesky::compute(&sys)?;
        let x = chol.solve_right(b)?; // B·(LLᵀ + δI)⁻¹, m×r
        let pi = ops::matmul(&x, l)?;
        if pi.frobenius_norm() <= 4.0 * b_norm {
            return Ok(pi);
        }
    }
    Err(CoreError::InvalidArgument(
        "seed factors too ill-conditioned for a multiplier warm start".into(),
    ))
}

/// The β→∞ limit of Eq. 9: the ridge-stabilized least-squares refit
/// `B = W·Lᵀ·(LLᵀ + δI)⁻¹`, used as the final step of the solver.
fn refit_b(op: &dyn MatrixOp, l: &Matrix) -> Result<Matrix, CoreError> {
    let r = l.rows();
    let rhs = op.mul_tr(l); // W·Lᵀ, m×r
    let mut sys = ops::mul_tr(l, l)?; // L·Lᵀ, r×r
    let ridge = (sys.trace()? / r as f64).max(1e-300) * 1e-12;
    for i in 0..r {
        let v = sys.get(i, i) + ridge;
        sys.set(i, i, v);
    }
    let chol = Cholesky::compute(&sys)?;
    Ok(chol.solve_right(&rhs)?)
}

/// Eq. 9: `B = (βW + π)·Lᵀ·(β·LLᵀ + I)⁻¹`, via a Cholesky solve of the SPD
/// system from the right. The caller supplies `rhs = (βW + π)·Lᵀ`, already
/// split into a structured `W·Lᵀ` product and a (skippable) `π·Lᵀ` GEMM.
fn update_b(rhs: &Matrix, l: &Matrix, beta: f64) -> Result<Matrix, CoreError> {
    let r = l.rows();
    let mut sys = ops::mul_tr(l, l)?; // L·Lᵀ, r×r
    sys = sys.scale(beta);
    sys += &Matrix::identity(r);
    let chol = Cholesky::compute(&sys)?;
    Ok(chol.solve_right(rhs)?)
}

/// Algorithm 2 on Formula 10:
/// `G(L) = β/2·tr(LᵀBᵀBL) − tr((βW+π)ᵀBL)`,
/// `∂G/∂L = β·BᵀB·L − Bᵀ(βW + π)`,
/// subject to per-column balls in the decomposition's sensitivity norm
/// (L1 per Formula 11; L2 for the Gaussian variant — a radial rescale, so
/// Algorithm 2 is otherwise unchanged). The caller supplies
/// `bt_target = Bᵀ(βW + π)` (structured `Bᵀ·W` product plus skippable
/// `Bᵀ·π` GEMM). Returns the new `L` and the discovered Lipschitz
/// estimate (used to warm-start the next call).
fn update_l(
    bt_target: &Matrix,
    b: &Matrix,
    l0: &Matrix,
    beta: f64,
    norm: SensitivityNorm,
    nesterov: &NesterovConfig,
    lipschitz_warm_start: f64,
) -> (Matrix, f64) {
    let btb = ops::gram(b); // BᵀB, r×r

    let objective = |l: &Matrix| -> f64 {
        let btbl = ops::matmul(&btb, l).expect("shapes agree");
        0.5 * beta * ops::frob_inner(l, &btbl).expect("shapes agree")
            - ops::frob_inner(bt_target, l).expect("shapes agree")
    };
    let gradient = |l: &Matrix| -> Matrix {
        let mut g = ops::matmul(&btb, l).expect("shapes agree");
        g = g.scale(beta);
        g -= bt_target;
        g
    };
    let project = move |l: &mut Matrix| {
        project_columns(l, 1.0, norm);
    };

    let cfg = NesterovConfig {
        initial_lipschitz: lipschitz_warm_start,
        ..nesterov.clone()
    };
    let result = nesterov_projected(objective, gradient, project, l0.clone(), &cfg);
    (result.x, result.lipschitz)
}

/// Detects rows of `L` whose direction has died (row of `L` and matching
/// column of `B` both ≈ 0) and re-seeds them with the top right-singular
/// vectors of the residual `W − BL`, scaled small enough that the
/// re-projected columns stay feasible. Returns the number of revived rows.
fn revive_dead_directions(
    b: &mut Matrix,
    l: &mut Matrix,
    residual: &Matrix,
    norm: SensitivityNorm,
) -> usize {
    let r = l.rows();
    let l_scale = l.max_abs().max(1e-12);
    let b_scale = b.max_abs().max(1e-12);
    let dead: Vec<usize> = (0..r)
        .filter(|&i| {
            let row_max = l.row(i).iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
            let col_max = b.col(i).iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
            row_max < 1e-9 * l_scale && col_max < 1e-9 * b_scale
        })
        .collect();
    if dead.is_empty() {
        return 0;
    }

    // Top right-singular directions of the residual via power iteration
    // with deflation (cheap: O(mn) per iteration, few dead rows).
    let mut deflated: Vec<Vec<f64>> = Vec::new();
    for &row_idx in &dead {
        if let Some(direction) = top_right_singular_vector(residual, &deflated) {
            // Small amplitude: the per-column L1 re-projection below keeps
            // the whole L feasible; the next B update rebalances magnitude.
            let amp = 0.05;
            let seeded: Vec<f64> = direction.iter().map(|v| v * amp).collect();
            l.set_row(row_idx, &seeded);
            deflated.push(direction);
        }
    }
    project_columns(l, 1.0, norm);
    dead.len()
}

/// Power iteration for the leading right-singular vector of `residual`,
/// orthogonalized against already-used directions. Returns a unit vector,
/// or `None` when the residual is numerically zero in the remaining space.
fn top_right_singular_vector(residual: &Matrix, deflated: &[Vec<f64>]) -> Option<Vec<f64>> {
    let n = residual.cols();
    // Deterministic start.
    let mut v: Vec<f64> = (0..n)
        .map(|j| if j % 2 == 0 { 1.0 } else { -0.5 } / (n as f64).sqrt())
        .collect();
    for _ in 0..12 {
        // Orthogonalize against deflated directions.
        for d in deflated {
            let proj = ops::dot(&v, d);
            for (vi, di) in v.iter_mut().zip(d.iter()) {
                *vi -= proj * di;
            }
        }
        let rv = ops::mul_vec(residual, &v).expect("shapes agree");
        let mut next = ops::tr_mul_vec(residual, &rv).expect("shapes agree");
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-14 {
            return None;
        }
        for x in next.iter_mut() {
            *x /= norm;
        }
        v = next;
    }
    Some(v)
}

/// The Lemma 3 construction: `B = √ρ·U·Σ`, `L = V/√ρ`, padded with zeros
/// when `r` exceeds the number of non-zero singular values and truncated
/// when `r` is smaller (then `B·L` is the best rank-`r` approximation of
/// `W`, appropriately for the relaxed Formula 8).
///
/// When `r` exceeds ρ, the extra rows of `L` are seeded with a small
/// deterministic orthogonal-ish fill (and the columns re-projected) so the
/// optimizer can actually use the extra dimensions — all-zero padding is a
/// stationary point of the alternating updates.
fn lemma3_initializer(workload: &Workload, r: usize) -> (Matrix, Matrix) {
    let (m, n) = (workload.num_queries(), workload.domain_size());
    let svd = workload.svd();
    let nonzero = svd.nonzero_singular_values();
    let rho = nonzero.len().min(r);

    let mut b = Matrix::zeros(m, r);
    let mut l = Matrix::zeros(r, n);
    if rho == 0 {
        return (b, l); // zero workload
    }
    let sqrt_rho = (rho as f64).sqrt();
    for k in 0..rho {
        let sigma = svd.singular_values[k];
        // B column k = √ρ · σ_k · u_k.
        let u_col = svd.u.col(k);
        let b_col: Vec<f64> = u_col.iter().map(|v| v * sigma * sqrt_rho).collect();
        b.set_col(k, &b_col);
        // L row k = v_kᵀ / √ρ.
        let v_row = svd.vt.row(k);
        let l_row: Vec<f64> = v_row.iter().map(|v| v / sqrt_rho).collect();
        l.set_row(k, &l_row);
    }

    if r > rho {
        // Deterministic low-amplitude fill for the surplus rows.
        let amp = 1.0 / (2.0 * (r as f64) * (n as f64)).sqrt();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        for i in rho..r {
            for j in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let unit = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                l.set(i, j, amp * unit);
            }
        }
        project_columns_l1(&mut l, 1.0);
    }
    (b, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decompose_default(w: &Workload) -> WorkloadDecomposition {
        WorkloadDecomposition::compute(w, &DecompositionConfig::default()).unwrap()
    }

    #[test]
    fn feasibility_on_intro_example() {
        let w = Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap();
        let d = decompose_default(&w);
        assert!(d.sensitivity() <= 1.0 + 1e-9, "Δ = {}", d.sensitivity());
        assert!(
            d.stats().residual <= 0.011,
            "residual {} exceeds γ",
            d.stats().residual
        );
    }

    #[test]
    fn beats_or_matches_lemma3_initializer() {
        // The optimizer starts at the Lemma 3 construction; it must never
        // return something worse.
        let w = WRange
            .generate(24, 32, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let d = decompose_default(&w);
        assert!(
            d.scale() <= d.stats().initial_scale * (1.0 + 1e-6),
            "scale {} worse than init {}",
            d.scale(),
            d.stats().initial_scale
        );
    }

    #[test]
    fn improves_on_low_rank_workloads() {
        // For a genuinely low-rank workload the optimizer should improve
        // noticeably over the generic NOD-style scale.
        let gen = WRelated { base_queries: 3 };
        let w = gen.generate(20, 30, &mut StdRng::seed_from_u64(6)).unwrap();
        let d = decompose_default(&w);
        assert_eq!(d.rank(), 4); // 1.2 · 3 rounded
        assert!(d.sensitivity() <= 1.0 + 1e-9);
        // Lemma 1 error with Δ ≤ 1 is 2Φ/ε²; NOD's is 2‖W‖_F²·Δ_W²… the
        // relevant sanity check is simply Φ being finite and positive.
        assert!(d.scale() > 0.0 && d.scale().is_finite());
    }

    #[test]
    fn residual_meets_gamma_on_full_rank() {
        let w = WDiscrete::default()
            .generate(10, 12, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let cfg = DecompositionConfig {
            gamma: 0.05,
            ..DecompositionConfig::default()
        };
        let d = WorkloadDecomposition::compute(&w, &cfg).unwrap();
        assert!(
            d.stats().residual <= 0.05 + 1e-9 || d.stats().final_beta >= 1e10,
            "residual {} with β {}",
            d.stats().residual,
            d.stats().final_beta
        );
        assert!(d.sensitivity() <= 1.0 + 1e-9);
    }

    #[test]
    fn rank_resolution() {
        let gen = WRelated { base_queries: 5 };
        let w = gen.generate(16, 20, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(TargetRank::RatioOfRank(1.0).resolve(&w).unwrap(), 5);
        assert_eq!(TargetRank::RatioOfRank(1.2).resolve(&w).unwrap(), 6);
        assert_eq!(TargetRank::RatioOfRank(2.0).resolve(&w).unwrap(), 10);
        assert_eq!(TargetRank::Exact(3).resolve(&w).unwrap(), 3);
        assert!(TargetRank::Exact(0).resolve(&w).is_err());
        assert!(TargetRank::RatioOfRank(-1.0).resolve(&w).is_err());
    }

    #[test]
    fn undersized_rank_still_feasible() {
        // r < rank(W): the equality constraint cannot be met; the solver
        // must still return a feasible-in-L, finite decomposition (the
        // relaxed Formula 8 regime; Fig. 3's ratio-0.8 points).
        let w = WRange
            .generate(12, 16, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let cfg = DecompositionConfig {
            target_rank: TargetRank::RatioOfRank(0.5),
            max_outer_iters: 40,
            ..DecompositionConfig::default()
        };
        let d = WorkloadDecomposition::compute(&w, &cfg).unwrap();
        assert!(d.sensitivity() <= 1.0 + 1e-9);
        assert!(d.stats().residual.is_finite());
        assert!(d.stats().residual > 0.05); // genuinely cannot hit γ

        // Structural error is consistent with the stored residual.
        let x = vec![1.0; 16];
        let s = d.structural_error(&x).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn zero_workload_short_circuits() {
        let w = Workload::new(Matrix::zeros(3, 4)).unwrap();
        let d = decompose_default(&w);
        assert_eq!(d.scale(), 0.0);
        assert_eq!(d.stats().residual, 0.0);
        assert!(d.stats().converged);
    }

    #[test]
    fn config_validation() {
        let w = Workload::from_rows(&[&[1.0, 0.0]]).unwrap();
        let bad_gamma = DecompositionConfig {
            gamma: f64::NAN,
            ..DecompositionConfig::default()
        };
        assert!(WorkloadDecomposition::compute(&w, &bad_gamma).is_err());
        let bad_iters = DecompositionConfig {
            max_outer_iters: 0,
            ..DecompositionConfig::default()
        };
        assert!(WorkloadDecomposition::compute(&w, &bad_iters).is_err());
    }

    #[test]
    fn deterministic() {
        let w = WRange
            .generate(10, 14, &mut StdRng::seed_from_u64(10))
            .unwrap();
        let d1 = decompose_default(&w);
        let d2 = decompose_default(&w);
        assert_eq!(d1.b(), d2.b());
        assert_eq!(d1.l(), d2.l());
    }

    /// A dashboard-style panel over `n` bins: `cuts` equal ranges, four
    /// quarter rollups, and the grand total — the workload family whose
    /// near-duplicates motivate warm starts.
    fn panel(n: usize, cuts: usize) -> Workload {
        let mut iv = Vec::with_capacity(cuts + 5);
        for c in 0..cuts {
            iv.push((c * n / cuts, (c + 1) * n / cuts - 1));
        }
        for q in 0..4 {
            iv.push((q * n / 4, (q + 1) * n / 4 - 1));
        }
        iv.push((0, n - 1));
        Workload::from_intervals(n, iv).unwrap()
    }

    #[test]
    fn warm_start_saves_iterations_on_a_near_duplicate() {
        // The motivating production case: the same range panel with one
        // extra cut. Seeding from the neighbor's factors must meet the
        // identical convergence contract in fewer outer iterations.
        let cfg = DecompositionConfig {
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let wa = panel(64, 15);
        let wb = panel(64, 16);
        let cold_a = WorkloadDecomposition::compute(&wa, &cfg).unwrap();
        let cold_b = WorkloadDecomposition::compute(&wb, &cfg).unwrap();
        assert!(!cold_b.stats().warm_started);

        let seed = WarmStart::new(cold_a.b().clone(), cold_a.l().clone());
        let warm_b = WorkloadDecomposition::compute_with_init(&wb, &cfg, Some(&seed)).unwrap();
        assert!(warm_b.stats().warm_started);
        assert_eq!(warm_b.stats().converged, cold_b.stats().converged);
        assert!(warm_b.sensitivity() <= 1.0 + 1e-9);
        // Same tolerance as cold: both residuals sit under the clamped γ.
        let gamma_eff = cfg.gamma.min(0.02 * wb.op().frobenius_sq().sqrt());
        assert!(warm_b.stats().residual <= gamma_eff + 1e-12);
        assert!(
            warm_b.stats().outer_iterations < cold_b.stats().outer_iterations,
            "warm {} vs cold {} iterations",
            warm_b.stats().outer_iterations,
            cold_b.stats().outer_iterations
        );
    }

    #[test]
    fn warm_start_reprojects_across_ranks() {
        // A cached rank-4 decomposition seeding a rank-6 target (and vice
        // versa) still produces a feasible, converged result.
        let w = Workload::from_intervals(24, vec![(0, 5), (6, 11), (12, 17), (18, 23)]).unwrap();
        let cfg4 = DecompositionConfig {
            target_rank: TargetRank::Exact(4),
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let cfg6 = DecompositionConfig {
            target_rank: TargetRank::Exact(6),
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let d4 = WorkloadDecomposition::compute(&w, &cfg4).unwrap();
        let seed = WarmStart::new(d4.b().clone(), d4.l().clone());

        let up = WorkloadDecomposition::compute_with_init(&w, &cfg6, Some(&seed)).unwrap();
        assert!(up.stats().warm_started);
        assert_eq!(up.rank(), 6);
        assert!(up.sensitivity() <= 1.0 + 1e-9);

        let d6 = WorkloadDecomposition::compute(&w, &cfg6).unwrap();
        let seed6 = WarmStart::new(d6.b().clone(), d6.l().clone());
        let down = WorkloadDecomposition::compute_with_init(&w, &cfg4, Some(&seed6)).unwrap();
        assert!(down.stats().warm_started);
        assert_eq!(down.rank(), 4);
        assert!(down.sensitivity() <= 1.0 + 1e-9);
    }

    #[test]
    fn mismatched_domain_seed_falls_back_to_cold() {
        let w = Workload::from_intervals(16, vec![(0, 7), (8, 15)]).unwrap();
        let other = Workload::from_intervals(32, vec![(0, 15), (16, 31)]).unwrap();
        let cfg = DecompositionConfig::default();
        let d = WorkloadDecomposition::compute(&other, &cfg).unwrap();
        let seed = WarmStart::new(d.b().clone(), d.l().clone());
        let got = WorkloadDecomposition::compute_with_init(&w, &cfg, Some(&seed)).unwrap();
        assert!(!got.stats().warm_started, "wrong-n seed must be ignored");
        assert!(got.sensitivity() <= 1.0 + 1e-9);
    }

    #[test]
    fn scale_times_sensitivity_invariance() {
        // Lemma 2: rescaling (B, L) → (αB, L/α) keeps Φ·Δ² constant; our
        // solver pins Δ ≤ 1, so Φ·Δ² ≤ Φ. Verify the reported error uses
        // the actual Δ.
        let w = WRange
            .generate(8, 10, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let d = decompose_default(&w);
        let eps = 0.5;
        let expected = 2.0 * d.scale() * d.sensitivity().powi(2) / (eps * eps);
        assert!((d.expected_noise_error(eps) - expected).abs() < 1e-9 * expected.max(1.0));
    }

    #[test]
    fn l2_flavor_is_l2_feasible_and_meets_the_same_gamma() {
        let w = WRange
            .generate(12, 16, &mut StdRng::seed_from_u64(21))
            .unwrap();
        let cfg = DecompositionConfig::default();
        let d1 = WorkloadDecomposition::compute(&w, &cfg).unwrap();
        let d2 = WorkloadDecomposition::compute_flavored(&w, &cfg, SensitivityNorm::L2).unwrap();
        assert_eq!(d1.norm(), SensitivityNorm::L1);
        assert_eq!(d2.norm(), SensitivityNorm::L2);
        // Feasible in the L2 norm and converged under the same contract.
        assert!(d2.sensitivity() <= 1.0 + 1e-9, "Δ₂ = {}", d2.sensitivity());
        assert!(d2.stats().converged, "residual {}", d2.stats().residual);
        // The L2 ball contains the L1 ball: the Gaussian program optimizes
        // over a larger feasible set, so its scale should not blow up past
        // the Laplace program's (deterministic solver — no flake margin
        // needed beyond heuristic slack).
        assert!(
            d2.scale() <= d1.scale() * 1.25 + 1e-9,
            "Φ₂ {} vs Φ₁ {}",
            d2.scale(),
            d1.scale()
        );
    }

    #[test]
    fn l2_flavor_noise_error_needs_a_delta() {
        let w = WRange
            .generate(8, 12, &mut StdRng::seed_from_u64(22))
            .unwrap();
        let d = WorkloadDecomposition::compute_flavored(
            &w,
            &DecompositionConfig::default(),
            SensitivityNorm::L2,
        )
        .unwrap();
        // No finite Gaussian noise achieves pure ε-DP.
        assert!(d.expected_noise_error(1.0).is_infinite());
        let eps = lrm_dp::Epsilon::new(1.0).unwrap();
        assert!(d
            .expected_noise_error_budget(Budget::pure(eps))
            .is_infinite());
        // A looser δ needs less noise.
        let tight = d.expected_noise_error_budget(Budget::approx(eps, 1e-9).unwrap());
        let loose = d.expected_noise_error_budget(Budget::approx(eps, 1e-3).unwrap());
        assert!(tight.is_finite() && tight > 0.0);
        assert!(loose < tight, "loose {loose} vs tight {tight}");
        // And the error is exactly σ²·Φ.
        let budget = Budget::approx(eps, 1e-6).unwrap();
        let sigma = Gaussian::calibrated(d.sensitivity(), budget)
            .unwrap()
            .sigma();
        let err = d.expected_noise_error_budget(budget);
        assert!((err - sigma * sigma * d.scale()).abs() <= 1e-9 * err);
    }

    #[test]
    fn l1_seed_warm_starts_an_l2_compile() {
        // Cross-flavor seeding: an L1-optimized neighbor seeds the L2
        // program; the result is a fresh, L2-feasible, converged
        // decomposition — the seed is never served.
        let cfg = DecompositionConfig {
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let w = panel(64, 15);
        let l1 = WorkloadDecomposition::compute(&w, &cfg).unwrap();
        let seed = WarmStart::new(l1.b().clone(), l1.l().clone());
        let l2 = WorkloadDecomposition::compute_with_init_flavored(
            &w,
            &cfg,
            SensitivityNorm::L2,
            Some(&seed),
        )
        .unwrap();
        assert!(l2.stats().warm_started);
        assert_eq!(l2.norm(), SensitivityNorm::L2);
        assert!(l2.sensitivity() <= 1.0 + 1e-9);
        assert!(l2.stats().converged);
    }
}
