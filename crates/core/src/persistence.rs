//! Saving and loading workload decompositions.
//!
//! Algorithm 1 is the expensive part of LRM (minutes at the paper's full
//! scale), while answering is microseconds. Production use therefore
//! wants to decompose once and reuse the `(B, L)` pair across releases —
//! which is safe: the decomposition depends only on the public workload,
//! never on data or ε.
//!
//! The on-disk format is two `LRMM` matrix blocks (see `lrm_linalg::io`)
//! — `B` then `L` — preceded by a small header.

use crate::decomposition::WorkloadDecomposition;
use crate::error::CoreError;
use crate::lrm::LowRankMechanism;
use lrm_linalg::Matrix;
use lrm_workload::Workload;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LRMD";
const VERSION: u32 = 1;

/// Writes a decomposition's factors to `path`.
pub fn save_decomposition(
    decomposition: &WorkloadDecomposition,
    path: &Path,
) -> Result<(), CoreError> {
    let file = File::create(path).map_err(|e| CoreError::io(path, e))?;
    let mut out = BufWriter::new(file);
    (|| -> std::io::Result<()> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        decomposition.b().write_binary(&mut out)?;
        decomposition.l().write_binary(&mut out)?;
        out.flush()
    })()
    .map_err(|e| CoreError::io(path, e))?;
    Ok(())
}

/// Loads factors saved by [`save_decomposition`] and revalidates them
/// against the workload: shapes must match, the sensitivity constraint
/// `Δ(B,L) ≤ 1` must hold, and the residual is recomputed fresh (never
/// trusted from disk).
pub fn load_decomposition(
    workload: &Workload,
    path: &Path,
) -> Result<WorkloadDecomposition, CoreError> {
    let file = File::open(path).map_err(|e| CoreError::io(path, e))?;
    let mut input = BufReader::new(file);

    let mut magic = [0u8; 4];
    input
        .read_exact(&mut magic)
        .map_err(|e| CoreError::io(path, e))?;
    if &magic != MAGIC {
        return Err(CoreError::InvalidArgument(
            "not an LRMD decomposition file (bad magic)".into(),
        ));
    }
    let mut word4 = [0u8; 4];
    input
        .read_exact(&mut word4)
        .map_err(|e| CoreError::io(path, e))?;
    let version = u32::from_le_bytes(word4);
    if version != VERSION {
        return Err(CoreError::InvalidArgument(format!(
            "unsupported LRMD version {version}"
        )));
    }

    let b = Matrix::read_binary(&mut input)?;
    let l = Matrix::read_binary(&mut input)?;
    let (m, n) = (workload.num_queries(), workload.domain_size());
    if b.rows() != m || l.cols() != n || b.cols() != l.rows() {
        return Err(CoreError::InvalidArgument(format!(
            "decomposition shapes B {}x{}, L {}x{} do not fit a {m}x{n} workload",
            b.rows(),
            b.cols(),
            l.rows(),
            l.cols()
        )));
    }
    let sensitivity = l.max_col_abs_sum();
    if sensitivity > 1.0 + 1e-6 {
        return Err(CoreError::InvalidArgument(format!(
            "stored L violates the sensitivity constraint: Δ = {sensitivity}"
        )));
    }
    // Recompute the residual against the *current* workload; a stale file
    // for a different workload becomes a visible (huge) residual rather
    // than silent wrong answers. Assembled through the operator, so a
    // structured workload is not densified by the load path.
    let residual = crate::decomposition::residual_of(workload.op().as_ref(), &b, &l);
    Ok(WorkloadDecomposition::from_parts(b, l, residual))
}

/// [`load_decomposition`] wrapped into a ready-to-use mechanism.
pub fn load_mechanism(workload: &Workload, path: &Path) -> Result<LowRankMechanism, CoreError> {
    let decomposition = load_decomposition(workload, path)?;
    Ok(LowRankMechanism::from_decomposition(
        decomposition,
        workload.num_queries(),
        workload.domain_size(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::DecompositionConfig;
    use crate::mechanism::Mechanism;
    use lrm_dp::rng::derive_rng;
    use lrm_dp::Epsilon;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lrm_persistence_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_answers() {
        let w = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let path = tmp("roundtrip");
        save_decomposition(mech.decomposition(), &path).unwrap();

        let loaded = load_mechanism(&w, &path).unwrap();
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let eps = Epsilon::new(1.0).unwrap();
        let a = mech.answer(&x, eps, &mut derive_rng(9, 9)).unwrap();
        let b = loaded.answer(&x, eps, &mut derive_rng(9, 9)).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_mismatched_workload() {
        let w1 = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let w2 = WRange
            .generate(8, 20, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let mech = LowRankMechanism::compile(&w1, &DecompositionConfig::default()).unwrap();
        let path = tmp("mismatch");
        save_decomposition(mech.decomposition(), &path).unwrap();
        assert!(load_mechanism(&w2, &path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stale_file_shows_up_as_residual() {
        // Same shape, different workload: loading succeeds but the
        // recomputed residual is large — visible in expected_error.
        let w1 = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let w2 = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let mech = LowRankMechanism::compile(&w1, &DecompositionConfig::default()).unwrap();
        let path = tmp("stale");
        save_decomposition(mech.decomposition(), &path).unwrap();
        let loaded = load_mechanism(&w2, &path).unwrap();
        assert!(
            loaded.decomposition().stats().residual > 0.5,
            "stale decomposition should show a large residual, got {}",
            loaded.decomposition().stats().residual
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a decomposition").unwrap();
        let w = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert!(load_mechanism(&w, &path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
