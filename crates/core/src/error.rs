//! Error type for mechanism compilation and answering.

use std::fmt;

/// Errors surfaced by mechanism compilation or query answering.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An invalid configuration or argument.
    InvalidArgument(String),
    /// The database vector does not match the workload's domain size.
    DomainMismatch {
        /// Domain size the mechanism was compiled for.
        expected: usize,
        /// Length of the supplied database vector.
        got: usize,
    },
    /// A numerical routine failed.
    Numerical(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::DomainMismatch { expected, got } => write!(
                f,
                "database has {got} counts but the workload covers {expected}"
            ),
            CoreError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<lrm_linalg::LinalgError> for CoreError {
    fn from(e: lrm_linalg::LinalgError) -> Self {
        CoreError::Numerical(e.to_string())
    }
}
