//! Error type for mechanism compilation and answering.

use lrm_dp::DpError;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors surfaced by mechanism compilation, query answering, or strategy
/// persistence.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// An invalid configuration or argument.
    InvalidArgument(String),
    /// The database vector does not match the workload's domain size.
    DomainMismatch {
        /// Domain size the mechanism was compiled for.
        expected: usize,
        /// Length of the supplied database vector.
        got: usize,
    },
    /// A numerical routine failed.
    Numerical(String),
    /// A differential-privacy primitive rejected its parameters.
    Dp(DpError),
    /// An I/O operation on a persisted strategy failed.
    Io {
        /// The file the operation targeted.
        path: PathBuf,
        /// The underlying I/O error (shared so `CoreError` stays `Clone`).
        source: Arc<std::io::Error>,
    },
    /// An iterative compile was abandoned because its cooperative
    /// deadline ([`lrm_opt::deadline`]) expired; the caller should fall
    /// back to a non-iterative strategy at the same ε.
    DeadlineExceeded,
}

impl CoreError {
    /// Wraps an `std::io::Error` with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CoreError::Io {
            path: path.into(),
            source: Arc::new(source),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::DomainMismatch { expected, got } => write!(
                f,
                "database has {got} counts but the workload covers {expected}"
            ),
            CoreError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            CoreError::Dp(e) => write!(f, "privacy parameter rejected: {e}"),
            CoreError::Io { path, source } => {
                write!(f, "I/O failure on {}: {source}", path.display())
            }
            CoreError::DeadlineExceeded => {
                write!(f, "compile abandoned: cooperative deadline expired")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dp(e) => Some(e),
            CoreError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

// `std::io::Error` is neither `Clone` nor `PartialEq`; compare `Io` by path
// and error kind so the enum as a whole stays comparable in tests.
impl PartialEq for CoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CoreError::InvalidArgument(a), CoreError::InvalidArgument(b)) => a == b,
            (
                CoreError::DomainMismatch {
                    expected: e1,
                    got: g1,
                },
                CoreError::DomainMismatch {
                    expected: e2,
                    got: g2,
                },
            ) => e1 == e2 && g1 == g2,
            (CoreError::Numerical(a), CoreError::Numerical(b)) => a == b,
            (CoreError::Dp(a), CoreError::Dp(b)) => a == b,
            (
                CoreError::Io {
                    path: p1,
                    source: s1,
                },
                CoreError::Io {
                    path: p2,
                    source: s2,
                },
            ) => p1 == p2 && s1.kind() == s2.kind(),
            (CoreError::DeadlineExceeded, CoreError::DeadlineExceeded) => true,
            _ => false,
        }
    }
}

impl From<lrm_linalg::LinalgError> for CoreError {
    fn from(e: lrm_linalg::LinalgError) -> Self {
        CoreError::Numerical(e.to_string())
    }
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<lrm_workload::WorkloadError> for CoreError {
    fn from(e: lrm_workload::WorkloadError) -> Self {
        use lrm_workload::WorkloadError;
        match e {
            WorkloadError::DomainMismatch { expected, got } => {
                CoreError::DomainMismatch { expected, got }
            }
            other => CoreError::InvalidArgument(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn io_variant_carries_path_and_source() {
        let e = CoreError::io(
            "/tmp/strategy.lrmd",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(
            s.contains("/tmp/strategy.lrmd") && s.contains("gone"),
            "{s}"
        );
        let src = e.source().expect("has a source");
        assert!(src.to_string().contains("gone"));
    }

    #[test]
    fn workload_errors_convert() {
        use lrm_workload::WorkloadError;
        let e = CoreError::from(WorkloadError::DomainMismatch {
            expected: 8,
            got: 7,
        });
        assert_eq!(
            e,
            CoreError::DomainMismatch {
                expected: 8,
                got: 7
            }
        );
        let e2 = CoreError::from(WorkloadError::NonFinite);
        assert!(matches!(e2, CoreError::InvalidArgument(_)));
    }

    #[test]
    fn dp_errors_convert_with_source() {
        let e = CoreError::from(DpError::NonPositiveEpsilon(-1.0));
        assert_eq!(e, CoreError::Dp(DpError::NonPositiveEpsilon(-1.0)));
        assert!(e.source().is_some());
    }

    #[test]
    fn io_equality_is_by_path_and_kind() {
        let not_found =
            || CoreError::io("/a", std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        let denied = CoreError::io(
            "/a",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "x"),
        );
        assert_eq!(not_found(), not_found());
        assert_ne!(not_found(), denied);
    }
}
