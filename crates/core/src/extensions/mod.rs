//! Extensions beyond the paper's core design.
//!
//! * [`data_aware`] — the direction sketched in the paper's conclusion
//!   ("further optimize LRM by utilizing also the correlations between
//!   data values"): spend part of the budget on the decomposition
//!   residual so the relaxed Formula-8 decomposition answers without
//!   structural bias.
//! * [`composite`] — a meta-mechanism that picks the best strategy per
//!   workload using the closed-form error (strategy selection is
//!   data-independent, so it costs no privacy budget).

pub mod composite;
pub mod data_aware;

pub use composite::BestOfMechanism;
pub use data_aware::CompensatedLowRankMechanism;
