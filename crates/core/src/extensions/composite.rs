//! Best-of meta-mechanism.
//!
//! Strategy selection depends only on the (public) workload and ε, never
//! on the data, so choosing among candidate mechanisms by their
//! closed-form expected error consumes no privacy budget. This captures
//! the operational reality behind the paper's figures: LM wins on small
//! dense workloads, WM/HM on large range workloads, LRM wherever the
//! workload has low rank — a deployment should just take the argmin.
//!
//! [`crate::engine::Engine::compile_best`] is the canonical entry point
//! for this selection: it compiles a registry panel through the strategy
//! cache and compares at the engine's reference ε. [`BestOfMechanism`]
//! remains for the lower-level case of already-compiled candidates
//! compared at a caller-chosen ε (optionally with a public data hint).

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::Epsilon;
use rand::RngCore;

/// Wraps candidate mechanisms and answers with the one whose closed-form
/// expected error at the *reference ε* is smallest.
///
/// The reference ε matters only if candidates' relative order could change
/// with ε; all mechanisms in this crate scale identically (`1/ε²`) in
/// their noise terms, so any reference gives the same choice unless LRM's
/// data-independent comparison is used with a structural residual — which
/// is ε-independent and therefore *can* reorder candidates across ε.
pub struct BestOfMechanism {
    candidates: Vec<Box<dyn Mechanism>>,
    chosen: usize,
}

impl BestOfMechanism {
    /// Picks the candidate minimizing expected error at `reference_eps`.
    ///
    /// `x_hint` optionally supplies a *public* magnitude proxy for the
    /// database (e.g. a released total) so that relaxed-LRM candidates can
    /// include their structural term in the comparison; pass `None` to
    /// compare pure noise errors.
    pub fn choose(
        candidates: Vec<Box<dyn Mechanism>>,
        reference_eps: Epsilon,
        x_hint: Option<&[f64]>,
    ) -> Result<Self, CoreError> {
        if candidates.is_empty() {
            return Err(CoreError::InvalidArgument(
                "need at least one candidate mechanism".into(),
            ));
        }
        let (m, n) = (candidates[0].num_queries(), candidates[0].domain_size());
        if candidates
            .iter()
            .any(|c| c.num_queries() != m || c.domain_size() != n)
        {
            return Err(CoreError::InvalidArgument(
                "candidates must be compiled for the same workload".into(),
            ));
        }
        let chosen = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.expected_error(reference_eps, x_hint)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("errors are finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        Ok(Self { candidates, chosen })
    }

    /// Name of the selected candidate.
    pub fn chosen_name(&self) -> &'static str {
        self.candidates[self.chosen].name()
    }
}

impl Mechanism for BestOfMechanism {
    fn name(&self) -> &'static str {
        "BestOf"
    }

    fn num_queries(&self) -> usize {
        self.candidates[self.chosen].num_queries()
    }

    fn domain_size(&self) -> usize {
        self.candidates[self.chosen].domain_size()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.candidates[self.chosen].answer(x, eps, rng)
    }

    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        self.candidates[self.chosen].expected_error(eps, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{NoiseOnData, WaveletMechanism};
    use crate::decomposition::DecompositionConfig;
    use crate::lrm::LowRankMechanism;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
    use lrm_workload::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn candidates(w: &Workload) -> Vec<Box<dyn Mechanism>> {
        vec![
            Box::new(NoiseOnData::compile(w)),
            Box::new(WaveletMechanism::compile(w)),
            Box::new(LowRankMechanism::compile(w, &DecompositionConfig::default()).unwrap()),
        ]
    }

    #[test]
    fn picks_lrm_on_low_rank() {
        let w = WRelated { base_queries: 3 }
            .generate(24, 48, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let best = BestOfMechanism::choose(candidates(&w), eps(0.1), None).unwrap();
        assert_eq!(best.chosen_name(), "LRM");
    }

    #[test]
    fn picks_wm_on_large_range_workload_without_lrm() {
        let w = WRange
            .generate(16, 512, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let cands: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoiseOnData::compile(&w)),
            Box::new(WaveletMechanism::compile(&w)),
        ];
        let best = BestOfMechanism::choose(cands, eps(0.1), None).unwrap();
        assert_eq!(best.chosen_name(), "WM");
    }

    #[test]
    fn picks_lm_on_small_dense_workload_without_lrm() {
        let w = WDiscrete::default()
            .generate(16, 24, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let cands: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoiseOnData::compile(&w)),
            Box::new(WaveletMechanism::compile(&w)),
        ];
        let best = BestOfMechanism::choose(cands, eps(0.1), None).unwrap();
        assert_eq!(best.chosen_name(), "LM");
    }

    #[test]
    fn error_is_min_of_candidates() {
        let w = WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let e = eps(0.1);
        let errors: Vec<f64> = candidates(&w)
            .iter()
            .map(|c| c.expected_error(e, None))
            .collect();
        let best = BestOfMechanism::choose(candidates(&w), e, None).unwrap();
        let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((best.expected_error(e, None) - min).abs() < 1e-9 * min);
    }

    #[test]
    fn answers_via_chosen_candidate() {
        let w = WRange
            .generate(5, 8, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let best = BestOfMechanism::choose(candidates(&w), eps(1.0), None).unwrap();
        let x = vec![3.0; 8];
        let y = best.answer(&x, eps(1.0), &mut derive_rng(1, 1)).unwrap();
        assert_eq!(y.len(), 5);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(BestOfMechanism::choose(vec![], eps(1.0), None).is_err());
        let w1 = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let w2 = WRange
            .generate(4, 9, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let cands: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoiseOnData::compile(&w1)),
            Box::new(NoiseOnData::compile(&w2)),
        ];
        assert!(BestOfMechanism::choose(cands, eps(1.0), None).is_err());
    }
}
