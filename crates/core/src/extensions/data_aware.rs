//! Residual-compensated LRM — an implementation of the future-work
//! direction in the paper's Section 7.
//!
//! The relaxed decomposition (Formula 8) leaves a residual `R = W − BL`
//! with `‖R‖_F ≤ γ`. Plain LRM ignores `R·x`, paying the deterministic
//! structural error of Theorem 3 — a *bias*, which for large-count
//! databases can dominate. This extension answers the residual part too,
//! splitting the budget by sequential composition:
//!
//! ```text
//! ŷ = B·(L·x + Lap(Δ(B,L)/ε₁)^r)  +  R·(x + Lap(1/ε₂)^n),   ε₁+ε₂ = ε
//! ```
//!
//! Both summands are ε₁- and ε₂-DP views of the data, so the sum is ε-DP.
//! The result is **unbiased**, with expected squared error
//!
//! ```text
//! 2·Φ·Δ²/ε₁²  +  2·‖R‖²_F/ε₂²
//! ```
//!
//! minimized in closed form over the split: writing `a = 2ΦΔ²` and
//! `b = 2‖R‖²_F`, the optimum of `a/ε₁² + b/ε₂²` under `ε₁+ε₂ = ε` is
//! `ε₁ = ε·∛a/(∛a+∛b)`. When the residual is numerically zero the whole
//! budget goes to the LRM part and this mechanism *is* plain LRM.

use crate::decomposition::{DecompositionConfig, WorkloadDecomposition};
use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::ops;
use lrm_workload::Workload;
use rand::RngCore;

/// LRM with the decomposition residual answered from a noisy database
/// view, removing Theorem 3's structural bias at a small noise cost.
#[derive(Debug, Clone)]
pub struct CompensatedLowRankMechanism {
    decomposition: WorkloadDecomposition,
    /// Fraction of ε given to the low-rank part (`ε₁ = fraction·ε`).
    lrm_fraction: f64,
    m: usize,
    n: usize,
}

impl CompensatedLowRankMechanism {
    /// Compiles the decomposition and the optimal budget split.
    pub fn compile(workload: &Workload, config: &DecompositionConfig) -> Result<Self, CoreError> {
        let decomposition = WorkloadDecomposition::compute(workload, config)?;
        Ok(Self::from_decomposition(
            decomposition,
            workload.num_queries(),
            workload.domain_size(),
        ))
    }

    /// Wraps an existing decomposition.
    pub fn from_decomposition(decomposition: WorkloadDecomposition, m: usize, n: usize) -> Self {
        // Optimal ε split for a/ε₁² + b/ε₂².
        let a = 2.0 * decomposition.scale() * decomposition.sensitivity().powi(2);
        let b = 2.0 * decomposition.residual_matrix().squared_sum();
        let lrm_fraction = if b <= 0.0 || a <= 0.0 {
            1.0
        } else {
            let ca = a.cbrt();
            let cb = b.cbrt();
            (ca / (ca + cb)).clamp(0.05, 1.0)
        };
        Self {
            decomposition,
            lrm_fraction,
            m,
            n,
        }
    }

    /// The underlying decomposition.
    pub fn decomposition(&self) -> &WorkloadDecomposition {
        &self.decomposition
    }

    /// The fraction of ε spent on the low-rank part.
    pub fn lrm_fraction(&self) -> f64 {
        self.lrm_fraction
    }
}

impl Mechanism for CompensatedLowRankMechanism {
    fn name(&self) -> &'static str {
        "LRM+"
    }

    fn num_queries(&self) -> usize {
        self.m
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let b = self.decomposition.b();
        let l = self.decomposition.l();
        let residual = self.decomposition.residual_matrix();
        let delta = self.decomposition.sensitivity();

        let eps1 = eps.value() * self.lrm_fraction;
        let eps2 = eps.value() - eps1;

        // Low-rank part at ε₁.
        let mut lx = ops::mul_vec(l, x)?;
        if delta > 0.0 {
            let noise = Laplace::centered(delta / eps1)?;
            for v in lx.iter_mut() {
                *v += noise.sample(rng);
            }
        }
        let mut y = ops::mul_vec(b, &lx)?;

        // Residual part at ε₂ (skipped when the whole budget went to LRM).
        if self.lrm_fraction < 1.0 {
            let noise = Laplace::centered(1.0 / eps2)?;
            let noisy_x: Vec<f64> = x.iter().map(|&v| v + noise.sample(rng)).collect();
            let residual_answers = ops::mul_vec(residual, &noisy_x)?;
            for (yi, ri) in y.iter_mut().zip(residual_answers.iter()) {
                *yi += ri;
            }
        }
        Ok(y)
    }

    /// Unbiased: no structural term, only the two noise terms.
    fn expected_error(&self, eps: Epsilon, _x: Option<&[f64]>) -> f64 {
        let a = 2.0 * self.decomposition.scale() * self.decomposition.sensitivity().powi(2);
        let eps1 = eps.value() * self.lrm_fraction;
        let mut err = a / (eps1 * eps1);
        if self.lrm_fraction < 1.0 {
            let b = 2.0 * self.decomposition.residual_matrix().squared_sum();
            let eps2 = eps.value() - eps1;
            err += b / (eps2 * eps2);
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrm::LowRankMechanism;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn optimal_split_formula() {
        // With a = b the optimal split is 50/50.
        let w = WRange
            .generate(10, 16, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech =
            CompensatedLowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let f = mech.lrm_fraction();
        assert!((0.05..=1.0).contains(&f));
        // The residual after polish is tiny, so nearly all budget goes to
        // the low-rank part.
        assert!(f > 0.5, "fraction {f}");
    }

    #[test]
    fn unbiased_even_with_coarse_gamma() {
        // Force a visible residual with an undersized rank (r < rank(W)
        // cannot represent W exactly), then verify the compensated
        // mechanism has no bias.
        let w = WRange
            .generate(8, 12, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let cfg = DecompositionConfig {
            target_rank: crate::decomposition::TargetRank::Exact(3),
            max_outer_iters: 10,
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let mech = CompensatedLowRankMechanism::compile(&w, &cfg).unwrap();
        assert!(
            mech.decomposition().stats().residual > 1e-4,
            "test needs a non-trivial residual"
        );
        let x: Vec<f64> = (0..12).map(|i| 100.0 + i as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(2.0);
        let trials = 4000;
        let mut mean = vec![0.0; truth.len()];
        for t in 0..trials {
            let y = mech.answer(&x, e, &mut derive_rng(5, t)).unwrap();
            for (m, v) in mean.iter_mut().zip(y.iter()) {
                *m += v / trials as f64;
            }
        }
        for (m, t) in mean.iter().zip(truth.iter()) {
            assert!((m - t).abs() < 1.5, "bias: mean {m} vs truth {t}");
        }
    }

    #[test]
    fn empirical_error_matches_closed_form() {
        let w = WRange
            .generate(6, 10, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let cfg = DecompositionConfig {
            target_rank: crate::decomposition::TargetRank::Exact(2),
            max_outer_iters: 10,
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let mech = CompensatedLowRankMechanism::compile(&w, &cfg).unwrap();
        let x: Vec<f64> = (0..10).map(|i| (i * 7 % 23) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);
        let trials = 4000;
        let mut sq = 0.0;
        for t in 0..trials {
            let y = mech.answer(&x, e, &mut derive_rng(6, t)).unwrap();
            sq += y
                .iter()
                .zip(truth.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        let empirical = sq / trials as f64;
        let analytic = mech.expected_error(e, Some(&x));
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn beats_plain_lrm_on_large_count_data() {
        // With a deliberately loose decomposition and large counts, the
        // structural bias dominates plain LRM; compensation wins.
        let w = WRange
            .generate(8, 12, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let cfg = DecompositionConfig {
            target_rank: crate::decomposition::TargetRank::Exact(3),
            max_outer_iters: 10,
            polish_iters: 0,
            ..DecompositionConfig::default()
        };
        let plain = LowRankMechanism::compile(&w, &cfg).unwrap();
        let comp =
            CompensatedLowRankMechanism::from_decomposition(plain.decomposition().clone(), 8, 12);
        let x: Vec<f64> = (0..12).map(|i| 1e5 + (i * 13) as f64).collect();
        let e = eps(0.5);
        let plain_err = plain.expected_error(e, Some(&x));
        let comp_err = comp.expected_error(e, Some(&x));
        assert!(
            comp_err < plain_err,
            "compensated {comp_err} not below plain {plain_err}"
        );
    }

    #[test]
    fn equals_lrm_when_residual_zero() {
        // Default config drives the residual to ~0 → fraction 1, and the
        // two mechanisms report identical errors.
        let w = WRange
            .generate(6, 8, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let cfg = DecompositionConfig::default();
        let plain = LowRankMechanism::compile(&w, &cfg).unwrap();
        let comp =
            CompensatedLowRankMechanism::from_decomposition(plain.decomposition().clone(), 6, 8);
        let e = eps(1.0);
        let ratio = comp.expected_error(e, None) / plain.expected_error(e, None);
        assert!(
            (0.99..=1.35).contains(&ratio),
            "compensation overhead too large: ratio {ratio}"
        );
    }
}
