//! The Low-Rank Mechanism — Eq. 6 of the paper.

use crate::decomposition::{DecompositionConfig, WorkloadDecomposition};
use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Epsilon, Laplace};
use lrm_linalg::ops;
use lrm_workload::Workload;
use rand::RngCore;

/// The Low-Rank Mechanism:
///
/// ```text
/// M_P(Q, D) = B · (L·x + Lap(Δ(B,L)/ε)^r)        (Eq. 6)
/// ```
///
/// where `W ≈ B·L` is the decomposition of Formula (7)/(8) found by
/// Algorithm 1. Privacy follows from the Laplace mechanism applied to the
/// intermediate queries `L·x`, whose L1 sensitivity is
/// `Δ(B, L) = max_j Σ_i |L_ij| ≤ 1` by the decomposition constraint; the
/// post-multiplication by `B` is data-independent post-processing.
#[derive(Debug, Clone)]
pub struct LowRankMechanism {
    decomposition: WorkloadDecomposition,
    m: usize,
    n: usize,
}

impl LowRankMechanism {
    /// Runs the workload decomposition and compiles the mechanism.
    pub fn compile(workload: &Workload, config: &DecompositionConfig) -> Result<Self, CoreError> {
        let decomposition = WorkloadDecomposition::compute(workload, config)?;
        Ok(Self::from_decomposition(
            decomposition,
            workload.num_queries(),
            workload.domain_size(),
        ))
    }

    /// Wraps an existing decomposition (e.g. to reuse one decomposition
    /// across several ε values, as the experiments do — the decomposition
    /// "does not rely on ε", Section 6.1).
    pub fn from_decomposition(decomposition: WorkloadDecomposition, m: usize, n: usize) -> Self {
        Self {
            decomposition,
            m,
            n,
        }
    }

    /// The underlying decomposition.
    pub fn decomposition(&self) -> &WorkloadDecomposition {
        &self.decomposition
    }
}

impl Mechanism for LowRankMechanism {
    fn name(&self) -> &'static str {
        "LRM"
    }

    fn num_queries(&self) -> usize {
        self.m
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        let b = self.decomposition.b();
        let l = self.decomposition.l();
        let delta = self.decomposition.sensitivity();

        // Intermediate strategy answers L·x.
        let mut lx = ops::mul_vec(l, x)?;
        if delta > 0.0 {
            let noise = Laplace::centered(delta / eps.value())?;
            for v in lx.iter_mut() {
                *v += noise.sample(rng);
            }
        }
        // Recombine: ŷ = B·(Lx + η).
        Ok(ops::mul_vec(b, &lx)?)
    }

    /// Lemma 1 noise error plus the Theorem 3 structural residual
    /// `‖(W − BL)·x‖²` when `x` is supplied.
    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        let noise = self.decomposition.expected_noise_error(eps.value());
        let structural = x
            .map(|x| {
                self.decomposition
                    .structural_error(x)
                    .expect("database checked by caller")
            })
            .unwrap_or(0.0);
        noise + structural
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WRelated, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn answers_have_right_shape_and_are_near_truth_for_large_eps() {
        let w = WRange
            .generate(12, 16, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i * 13 % 97) as f64).collect();
        let truth = w.answer(&x).unwrap();
        // With a huge ε the noise is negligible; only the γ-residual and
        // Laplace noise at scale Δ/ε remain.
        let got = mech.answer(&x, eps(1e9), &mut derive_rng(0, 1)).unwrap();
        assert_eq!(got.len(), 12);
        for (g, t) in got.iter().zip(truth.iter()) {
            assert!((g - t).abs() < 1.0, "answer {g} vs truth {t}");
        }
    }

    #[test]
    fn empirical_error_matches_lemma1() {
        let gen = WRelated { base_queries: 4 };
        let w = gen.generate(16, 24, &mut StdRng::seed_from_u64(2)).unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let x: Vec<f64> = (0..24).map(|i| ((i * 7) % 50) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);

        let trials = 3000;
        let mut total = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(42, t)).unwrap();
            total += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = total / trials as f64;
        let analytic = mech.expected_error(e, Some(&x));
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.1,
            "empirical {empirical} vs analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn error_scales_inverse_quadratically_in_eps() {
        let w = WRange
            .generate(8, 12, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let e1 = mech.expected_error(eps(1.0), None);
        let e01 = mech.expected_error(eps(0.1), None);
        assert!((e01 / e1 - 100.0).abs() < 1e-6, "ratio {}", e01 / e1);
    }

    #[test]
    fn rejects_bad_database() {
        let w = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let mut rng = derive_rng(0, 0);
        assert!(mech.answer(&[1.0; 7], eps(1.0), &mut rng).is_err());
        assert!(mech.answer(&[f64::NAN; 8], eps(1.0), &mut rng).is_err());
    }

    #[test]
    fn average_error_divides_by_m() {
        let w = WRange
            .generate(10, 12, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let e = eps(0.5);
        assert!(
            (mech.expected_average_error(e, None) * 10.0 - mech.expected_error(e, None)).abs()
                < 1e-12
        );
    }
}
