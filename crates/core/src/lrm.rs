//! The Low-Rank Mechanism — Eq. 6 of the paper — in both its Laplace
//! (pure ε-DP, L1 sensitivity) and Gaussian ((ε, δ)-DP, L2 sensitivity)
//! calibrations.

use crate::decomposition::{DecompositionConfig, WorkloadDecomposition};
use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Budget, Epsilon, Gaussian, Laplace, SensitivityNorm};
use lrm_linalg::ops;
use lrm_workload::Workload;
use rand::RngCore;

/// The Low-Rank Mechanism:
///
/// ```text
/// M_P(Q, D) = B · (L·x + Lap(Δ(B,L)/ε)^r)        (Eq. 6)
/// ```
///
/// where `W ≈ B·L` is the decomposition of Formula (7)/(8) found by
/// Algorithm 1. Privacy follows from the Laplace mechanism applied to the
/// intermediate queries `L·x`, whose L1 sensitivity is
/// `Δ(B, L) = max_j Σ_i |L_ij| ≤ 1` by the decomposition constraint; the
/// post-multiplication by `B` is data-independent post-processing.
///
/// The **approximate-DP variant** (`"LRM-G"`, from an L2-flavored
/// decomposition) swaps the Laplace draw for a Gaussian one calibrated by
/// the analytic mechanism against the per-column **L2** bound
/// `‖L_:j‖₂ ≤ 1`: `B·(L·x + N(0, σ²)^r)` with σ from
/// [`Gaussian::calibrated`]. It answers only through
/// [`Mechanism::answer_budget`] — no finite Gaussian noise achieves pure
/// ε-DP — and additionally supports
/// [`Mechanism::answer_with_topup`], the residual-noise primitive behind
/// the server's cross-ε batch coalescing.
#[derive(Debug, Clone)]
pub struct LowRankMechanism {
    decomposition: WorkloadDecomposition,
    m: usize,
    n: usize,
}

impl LowRankMechanism {
    /// Runs the workload decomposition and compiles the mechanism.
    pub fn compile(workload: &Workload, config: &DecompositionConfig) -> Result<Self, CoreError> {
        Self::compile_flavored(workload, config, SensitivityNorm::L1)
    }

    /// Runs the decomposition under the given sensitivity norm and
    /// compiles the matching mechanism: L1 → Laplace (`"LRM"`), L2 →
    /// Gaussian (`"LRM-G"`).
    pub fn compile_flavored(
        workload: &Workload,
        config: &DecompositionConfig,
        norm: SensitivityNorm,
    ) -> Result<Self, CoreError> {
        let decomposition = WorkloadDecomposition::compute_flavored(workload, config, norm)?;
        Ok(Self::from_decomposition(
            decomposition,
            workload.num_queries(),
            workload.domain_size(),
        ))
    }

    /// Wraps an existing decomposition (e.g. to reuse one decomposition
    /// across several ε values, as the experiments do — the decomposition
    /// "does not rely on ε", Section 6.1).
    pub fn from_decomposition(decomposition: WorkloadDecomposition, m: usize, n: usize) -> Self {
        Self {
            decomposition,
            m,
            n,
        }
    }

    /// The underlying decomposition.
    pub fn decomposition(&self) -> &WorkloadDecomposition {
        &self.decomposition
    }

    /// The intermediate strategy answers `L·x` — shared by every release
    /// path (plain, budgeted, topped-up).
    fn intermediate(&self, x: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.check_database(x)?;
        Ok(ops::mul_vec(self.decomposition.l(), x)?)
    }
}

impl Mechanism for LowRankMechanism {
    fn name(&self) -> &'static str {
        match self.decomposition.norm() {
            SensitivityNorm::L1 => "LRM",
            SensitivityNorm::L2 => "LRM-G",
        }
    }

    fn num_queries(&self) -> usize {
        self.m
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        if self.decomposition.norm() == SensitivityNorm::L2 {
            return Err(CoreError::InvalidArgument(
                "an L2-calibrated (Gaussian) strategy cannot release at a pure ε; \
                 supply an (ε, δ) budget via answer_budget"
                    .into(),
            ));
        }
        let mut lx = self.intermediate(x)?;
        let delta = self.decomposition.sensitivity();
        if delta > 0.0 {
            let noise = Laplace::centered(delta / eps.value())?;
            for v in lx.iter_mut() {
                *v += noise.sample(rng);
            }
        }
        // Recombine: ŷ = B·(Lx + η).
        Ok(ops::mul_vec(self.decomposition.b(), &lx)?)
    }

    fn answer_budget(
        &self,
        x: &[f64],
        budget: Budget,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        match self.decomposition.norm() {
            // δ buys a Laplace release nothing: pure ε-DP ⊆ (ε, δ)-DP.
            SensitivityNorm::L1 => self.answer(x, budget.eps(), rng),
            SensitivityNorm::L2 => {
                let mut lx = self.intermediate(x)?;
                let delta2 = self.decomposition.sensitivity();
                if delta2 > 0.0 {
                    let noise = Gaussian::calibrated(delta2, budget)?;
                    for v in lx.iter_mut() {
                        *v += noise.sample(rng);
                    }
                }
                Ok(ops::mul_vec(self.decomposition.b(), &lx)?)
            }
        }
    }

    fn answer_with_topup(
        &self,
        x: &[f64],
        base: Budget,
        target: Budget,
        base_rng: &mut dyn RngCore,
        topup_rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        if self.decomposition.norm() != SensitivityNorm::L2 {
            return Err(CoreError::InvalidArgument(
                "residual noise top-up requires a Gaussian (L2) strategy: \
                 Laplace noise is not closed under addition"
                    .into(),
            ));
        }
        let mut lx = self.intermediate(x)?;
        let delta2 = self.decomposition.sensitivity();
        if delta2 > 0.0 {
            let sigma_base = Gaussian::calibrated(delta2, base)?.sigma();
            let sigma_target = Gaussian::calibrated(delta2, target)?.sigma();
            if sigma_target < sigma_base * (1.0 - 1e-12) {
                return Err(CoreError::InvalidArgument(format!(
                    "top-up base must be the weakest member budget: \
                     σ(target) = {sigma_target} < σ(base) = {sigma_base}"
                )));
            }
            // The shared base draw first — every member of a coalesced
            // batch replays exactly this sequence from the same base_rng
            // stream — then the member-private top-up of the residual
            // variance, in a separate pass so the base sequence is
            // identical regardless of the member's own budget.
            let base_noise = Gaussian::centered(sigma_base)?;
            for v in lx.iter_mut() {
                *v += base_noise.sample(base_rng);
            }
            let topup_var = (sigma_target * sigma_target - sigma_base * sigma_base).max(0.0);
            if topup_var > 0.0 {
                let topup = Gaussian::centered(topup_var.sqrt())?;
                for v in lx.iter_mut() {
                    *v += topup.sample(topup_rng);
                }
            }
        }
        Ok(ops::mul_vec(self.decomposition.b(), &lx)?)
    }

    /// Lemma 1 noise error plus the Theorem 3 structural residual
    /// `‖(W − BL)·x‖²` when `x` is supplied. `+∞` for the Gaussian
    /// variant, which cannot release at a pure ε at all.
    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        let noise = self.decomposition.expected_noise_error(eps.value());
        let structural = x
            .map(|x| {
                self.decomposition
                    .structural_error(x)
                    .expect("database checked by caller")
            })
            .unwrap_or(0.0);
        noise + structural
    }

    fn expected_error_budget(&self, budget: Budget, x: Option<&[f64]>) -> f64 {
        let noise = self.decomposition.expected_noise_error_budget(budget);
        let structural = x
            .map(|x| {
                self.decomposition
                    .structural_error(x)
                    .expect("database checked by caller")
            })
            .unwrap_or(0.0);
        noise + structural
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WRelated, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn answers_have_right_shape_and_are_near_truth_for_large_eps() {
        let w = WRange
            .generate(12, 16, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i * 13 % 97) as f64).collect();
        let truth = w.answer(&x).unwrap();
        // With a huge ε the noise is negligible; only the γ-residual and
        // Laplace noise at scale Δ/ε remain.
        let got = mech.answer(&x, eps(1e9), &mut derive_rng(0, 1)).unwrap();
        assert_eq!(got.len(), 12);
        for (g, t) in got.iter().zip(truth.iter()) {
            assert!((g - t).abs() < 1.0, "answer {g} vs truth {t}");
        }
    }

    #[test]
    fn empirical_error_matches_lemma1() {
        let gen = WRelated { base_queries: 4 };
        let w = gen.generate(16, 24, &mut StdRng::seed_from_u64(2)).unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let x: Vec<f64> = (0..24).map(|i| ((i * 7) % 50) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let e = eps(1.0);

        let trials = 3000;
        let mut total = 0.0;
        for t in 0..trials {
            let got = mech.answer(&x, e, &mut derive_rng(42, t)).unwrap();
            total += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = total / trials as f64;
        let analytic = mech.expected_error(e, Some(&x));
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.1,
            "empirical {empirical} vs analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn error_scales_inverse_quadratically_in_eps() {
        let w = WRange
            .generate(8, 12, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let e1 = mech.expected_error(eps(1.0), None);
        let e01 = mech.expected_error(eps(0.1), None);
        assert!((e01 / e1 - 100.0).abs() < 1e-6, "ratio {}", e01 / e1);
    }

    #[test]
    fn rejects_bad_database() {
        let w = WRange
            .generate(4, 8, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let mut rng = derive_rng(0, 0);
        assert!(mech.answer(&[1.0; 7], eps(1.0), &mut rng).is_err());
        assert!(mech.answer(&[f64::NAN; 8], eps(1.0), &mut rng).is_err());
    }

    #[test]
    fn average_error_divides_by_m() {
        let w = WRange
            .generate(10, 12, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let mech = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        let e = eps(0.5);
        assert!(
            (mech.expected_average_error(e, None) * 10.0 - mech.expected_error(e, None)).abs()
                < 1e-12
        );
    }

    fn gaussian_mech(m: usize, n: usize, seed: u64) -> (Workload, LowRankMechanism) {
        let w = WRange
            .generate(m, n, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let mech = LowRankMechanism::compile_flavored(
            &w,
            &DecompositionConfig::default(),
            SensitivityNorm::L2,
        )
        .unwrap();
        (w, mech)
    }

    #[test]
    fn gaussian_variant_rejects_pure_release() {
        let (_, mech) = gaussian_mech(8, 12, 6);
        assert_eq!(mech.name(), "LRM-G");
        let x = [1.0; 12];
        let err = mech
            .answer(&x, eps(1.0), &mut derive_rng(0, 0))
            .unwrap_err();
        assert!(
            err.to_string().contains("answer_budget"),
            "unexpected error: {err}"
        );
        assert!(mech.expected_error(eps(1.0), None).is_infinite());
    }

    #[test]
    fn gaussian_empirical_error_matches_analytic_budget_formula() {
        let (w, mech) = gaussian_mech(12, 16, 7);
        let x: Vec<f64> = (0..16).map(|i| ((i * 11) % 40) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let budget = Budget::approx(eps(1.0), 1e-6).unwrap();

        let trials = 3000;
        let mut total = 0.0;
        for t in 0..trials {
            let got = mech
                .answer_budget(&x, budget, &mut derive_rng(9, t))
                .unwrap();
            total += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = total / trials as f64;
        let analytic = mech.expected_error_budget(budget, Some(&x));
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.1,
            "empirical {empirical} vs analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn topup_matches_externally_reconstructed_release() {
        // The coalescing contract: a member release produced by
        // answer_with_topup must be bit-identical to re-running the same
        // computation with the same two streams. A *different* top-up
        // stream must change the release (the top-up really is drawn),
        // while the base lane alone reproduces the weakest member's
        // answer_budget release exactly when the budgets coincide.
        let (_, mech) = gaussian_mech(10, 14, 8);
        let x: Vec<f64> = (0..14).map(|i| (i % 5) as f64).collect();
        let base = Budget::approx(eps(2.0), 1e-6).unwrap();
        let tight = Budget::approx(eps(0.5), 1e-6).unwrap();

        let a = mech
            .answer_with_topup(
                &x,
                base,
                tight,
                &mut derive_rng(3, 0),
                &mut derive_rng(3, 1),
            )
            .unwrap();
        let b = mech
            .answer_with_topup(
                &x,
                base,
                tight,
                &mut derive_rng(3, 0),
                &mut derive_rng(3, 1),
            )
            .unwrap();
        assert_eq!(a, b, "same streams must reproduce bit-identically");

        let c = mech
            .answer_with_topup(
                &x,
                base,
                tight,
                &mut derive_rng(3, 0),
                &mut derive_rng(3, 2),
            )
            .unwrap();
        assert_ne!(a, c, "a different top-up stream must change the release");

        // target == base: zero residual variance, the top-up stream is
        // never touched, and the release equals the plain budgeted one on
        // the base stream.
        let d = mech
            .answer_with_topup(&x, base, base, &mut derive_rng(3, 0), &mut derive_rng(3, 7))
            .unwrap();
        let plain = mech.answer_budget(&x, base, &mut derive_rng(3, 0)).unwrap();
        assert_eq!(d, plain, "zero top-up must equal the plain base release");
    }

    #[test]
    fn topup_rejects_inverted_budgets_and_pure_strategies() {
        let (_, mech) = gaussian_mech(6, 10, 9);
        let x = [1.0; 10];
        let loose = Budget::approx(eps(4.0), 1e-6).unwrap();
        let tight = Budget::approx(eps(0.5), 1e-6).unwrap();
        // Base must be the weakest budget: asking to *remove* noise fails.
        assert!(mech
            .answer_with_topup(
                &x,
                tight,
                loose,
                &mut derive_rng(0, 0),
                &mut derive_rng(0, 1)
            )
            .is_err());

        let w = WRange
            .generate(6, 10, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let laplace = LowRankMechanism::compile(&w, &DecompositionConfig::default()).unwrap();
        assert!(laplace
            .answer_with_topup(
                &x,
                loose,
                tight,
                &mut derive_rng(0, 0),
                &mut derive_rng(0, 1)
            )
            .is_err());
    }

    #[test]
    fn topup_variance_is_distributionally_calibrated() {
        // E‖ŷ − Wx‖² of a topped-up release must match the *target*
        // budget's analytic error — the member loses nothing to
        // coalescing.
        let (w, mech) = gaussian_mech(8, 12, 10);
        let x: Vec<f64> = (0..12).map(|i| ((i * 3) % 20) as f64).collect();
        let truth = w.answer(&x).unwrap();
        let base = Budget::approx(eps(2.0), 1e-5).unwrap();
        let tight = Budget::approx(eps(0.7), 1e-5).unwrap();

        let trials = 3000;
        let mut total = 0.0;
        for t in 0..trials {
            let got = mech
                .answer_with_topup(
                    &x,
                    base,
                    tight,
                    &mut derive_rng(21, 2 * t),
                    &mut derive_rng(21, 2 * t + 1),
                )
                .unwrap();
            total += got
                .iter()
                .zip(truth.iter())
                .map(|(g, y)| (g - y) * (g - y))
                .sum::<f64>();
        }
        let empirical = total / trials as f64;
        let analytic = mech.expected_error_budget(tight, Some(&x));
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.1,
            "empirical {empirical} vs analytic {analytic} (rel {rel})"
        );
    }
}
