//! The serving engine: compile once, cache by workload, answer many times
//! under a tracked privacy budget.
//!
//! The paper's operational insight is that strategy search (Algorithm 1)
//! is the expensive, *data-independent* step while answering is
//! microseconds. This module packages that shape as an API:
//!
//! * [`MechanismKind`] — the mechanism registry: every strategy in this
//!   crate behind one enum, compiled through one dispatch;
//! * [`Engine::compile`] — returns a [`CompiledMechanism`] (strategy +
//!   [`CompileMeta`]: wall-time, rank, cache outcome, expected error at
//!   the engine's reference ε), served through a two-layer
//!   compiled-strategy cache (in-memory map + optional `LRMD` disk spill)
//!   keyed by the workload's content [`lrm_workload::Fingerprint`];
//! * [`Engine::compile_best`] — argmin over a panel of kinds by
//!   closed-form expected error (free: it reads only public quantities);
//! * [`Session`] — answering under a [`BudgetLedger`](lrm_dp::BudgetLedger):
//!   each release debits ε, and exhaustion is a typed error, not a silent
//!   over-spend.
//!
//! ```
//! use lrm_core::engine::{Engine, MechanismKind};
//! use lrm_dp::Epsilon;
//! use lrm_workload::Workload;
//!
//! let w = Workload::from_rows(&[
//!     &[1.0, 1.0, 1.0, 1.0],
//!     &[1.0, 1.0, 0.0, 0.0],
//!     &[0.0, 0.0, 1.0, 1.0],
//! ]).unwrap();
//!
//! let engine = Engine::builder().build();
//! let compiled = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
//! let mut session = compiled.session(Epsilon::new(1.0).unwrap());
//!
//! let mut rng = lrm_dp::rng::derive_rng(7, 0);
//! let half = Epsilon::new(0.5).unwrap();
//! let release = session
//!     .answer(&[82_700.0, 19_000.0, 67_000.0, 5_900.0], half, &mut rng)
//!     .unwrap();
//! assert_eq!(release.answers.len(), 3);
//! assert!((release.eps_remaining - 0.5).abs() < 1e-12);
//! ```

mod cache;
mod registry;
mod session;
mod store;

pub use cache::{CacheOutcome, CacheStats};
pub use registry::{CompileOptions, MechanismKind};
pub use session::{BatchAnswer, EngineError, Session};

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use cache::{CachedStrategy, StrategyCache, PROFILE_BUCKETS};
use lrm_dp::Epsilon;
use lrm_linalg::operator::coarse_column_profile;
use lrm_workload::{Fingerprint, Workload};
use rand::RngCore;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Default bound on resident strategy-store files.
const DEFAULT_STORE_CAPACITY: usize = 512;

/// Builder for [`Engine`].
#[derive(Debug)]
pub struct EngineBuilder {
    reference_eps: Epsilon,
    defaults: CompileOptions,
    spill_dir: Option<PathBuf>,
    store_capacity: usize,
}

impl EngineBuilder {
    /// Starts from the defaults: reference ε = 1, default compile options,
    /// no disk spill.
    pub fn new() -> Self {
        Self {
            reference_eps: Epsilon::new(1.0).expect("1.0 is a valid budget"),
            defaults: CompileOptions::default(),
            spill_dir: None,
            store_capacity: DEFAULT_STORE_CAPACITY,
        }
    }

    /// Sets the reference ε used for the expected-error metadata and for
    /// [`Engine::compile_best`] comparisons. All noise errors scale as
    /// `1/ε²`, so the reference only matters when relaxed-LRM structural
    /// residuals enter a comparison.
    pub fn reference_epsilon(mut self, eps: Epsilon) -> Self {
        self.reference_eps = eps;
        self
    }

    /// Sets the default [`CompileOptions`] used by
    /// [`Engine::compile_default`].
    pub fn compile_options(mut self, options: CompileOptions) -> Self {
        self.defaults = options;
        self
    }

    /// Enables the on-disk strategy store: decomposition-backed strategies
    /// are persisted here (versioned `LRMS` format) and reloaded —
    /// revalidated exactly, or reused as warm-start seeds for similar
    /// workloads — instead of recompiled, across processes and restarts.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Bounds the number of files the strategy store retains; beyond it,
    /// the least recently written entries are evicted at save time.
    /// Default: 512.
    pub fn store_capacity(mut self, capacity: usize) -> Self {
        self.store_capacity = capacity.max(1);
        self
    }

    /// Finishes the builder. With a spill directory configured, surviving
    /// store files are header-scanned here to rebuild the similarity
    /// index, so the first compiles after a restart can already warm-start.
    pub fn build(self) -> Engine {
        Engine {
            reference_eps: self.reference_eps,
            defaults: self.defaults,
            cache: StrategyCache::new(self.spill_dir, self.store_capacity),
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The compile-once / answer-many entry point. See the
/// [module docs](self) for the full picture.
#[derive(Debug)]
pub struct Engine {
    reference_eps: Epsilon,
    defaults: CompileOptions,
    cache: StrategyCache,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts an [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The ε all compile metadata reports expected errors at.
    pub fn reference_epsilon(&self) -> Epsilon {
        self.reference_eps
    }

    /// The options [`Engine::compile_default`] uses.
    pub fn default_options(&self) -> &CompileOptions {
        &self.defaults
    }

    /// Cache counters: memory hits, disk hits, cold misses, warm-started
    /// compiles, store loads, store evictions, resident entries.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiles `kind` for `workload`, served from the strategy cache when
    /// the same `(workload, kind, options)` triple has been seen before.
    pub fn compile(
        &self,
        workload: &Workload,
        kind: MechanismKind,
        options: &CompileOptions,
    ) -> Result<CompiledMechanism, CoreError> {
        let t0 = Instant::now();
        let fingerprint = workload.fingerprint();
        let key = (fingerprint, kind, options.digest(kind));

        if let Some(cached) = self.cache.lookup(&key) {
            // Confirm the hit against the actual workload: on the
            // astronomically rare fingerprint collision we must recompile
            // rather than serve a strategy built for a different workload.
            // The compare streams rows through the operators — structured
            // workloads stay structured.
            if lrm_linalg::operator::op_logical_eq(
                cached.workload_op.as_ref(),
                workload.op().as_ref(),
            ) {
                self.cache.record(CacheOutcome::MemoryHit);
                return Ok(self.finish(
                    kind,
                    fingerprint,
                    CacheOutcome::MemoryHit,
                    t0,
                    cached,
                    None,
                ));
            }
        }

        if kind.is_decomposition_backed() {
            let profile = coarse_column_profile(workload.op().as_ref(), PROFILE_BUCKETS);

            if let Some((decomposition, header)) = self.cache.try_disk_load(&key, workload) {
                let decomposition = Arc::new(decomposition);
                self.cache.admit_seed(
                    &key,
                    workload,
                    profile,
                    header.cold_iterations,
                    Arc::clone(&decomposition),
                );
                let cached = self.admit(
                    key,
                    workload,
                    Some(decomposition.rank()),
                    None,
                    registry::rebuild_from_decomposition(kind, (*decomposition).clone(), workload),
                );
                self.cache.record(CacheOutcome::DiskHit);
                return Ok(self.finish(kind, fingerprint, CacheOutcome::DiskHit, t0, cached, None));
            }

            // Exact miss: a similar cached decomposition — same kind,
            // options, structural class, and domain, with compatible rank
            // and a close column profile — seeds the solver. The seeded
            // compile runs the full convergence contract; the seed is
            // never served directly.
            let target_rank = match options.decomposition_for(kind).target_rank {
                crate::decomposition::TargetRank::Exact(r) => Some(r),
                crate::decomposition::TargetRank::RatioOfRank(_) => None,
            };
            if let Some((seed, info)) =
                self.cache
                    .nearest_seed(kind, key.2, workload, target_rank, &profile)
            {
                if let Ok(built) = registry::build_with_seed(kind, workload, options, &seed) {
                    let dec = built
                        .decomposition
                        .expect("decomposition-backed kinds always produce factors");
                    if dec.stats().warm_started {
                        let iterations = dec.stats().outer_iterations;
                        self.cache.persist(&key, workload, &profile, &dec);
                        let dec = Arc::new(dec);
                        self.cache.admit_seed(
                            &key,
                            workload,
                            profile,
                            iterations,
                            Arc::clone(&dec),
                        );
                        let cached = self.admit(
                            key,
                            workload,
                            Some(dec.rank()),
                            Some(iterations),
                            built.mechanism,
                        );
                        self.cache.record(CacheOutcome::WarmStart);
                        let provenance = WarmStartProvenance {
                            seed_fingerprint: info.fingerprint,
                            profile_distance: info.distance,
                            seed_iterations: info.cold_iterations,
                            iterations,
                        };
                        return Ok(self.finish(
                            kind,
                            fingerprint,
                            CacheOutcome::WarmStart,
                            t0,
                            cached,
                            Some(provenance),
                        ));
                    }
                    // The solver rejected the seed (e.g. ill-conditioned
                    // factors) and ran cold anyway: report it as a miss.
                    let iterations = dec.stats().outer_iterations;
                    self.cache.persist(&key, workload, &profile, &dec);
                    let dec = Arc::new(dec);
                    self.cache
                        .admit_seed(&key, workload, profile, iterations, Arc::clone(&dec));
                    let cached = self.admit(
                        key,
                        workload,
                        Some(dec.rank()),
                        Some(iterations),
                        built.mechanism,
                    );
                    self.cache.record(CacheOutcome::Miss);
                    return Ok(self.finish(
                        kind,
                        fingerprint,
                        CacheOutcome::Miss,
                        t0,
                        cached,
                        None,
                    ));
                }
            }
        }

        let built = registry::build(kind, workload, options)?;
        let mut alm_iterations = None;
        if let Some(decomposition) = &built.decomposition {
            let profile = coarse_column_profile(workload.op().as_ref(), PROFILE_BUCKETS);
            let iterations = decomposition.stats().outer_iterations;
            alm_iterations = Some(iterations);
            self.cache.persist(&key, workload, &profile, decomposition);
            self.cache.admit_seed(
                &key,
                workload,
                profile,
                iterations,
                Arc::new(decomposition.clone()),
            );
        }
        let rank = built.decomposition.as_ref().map(|d| d.rank());
        let cached = self.admit(key, workload, rank, alm_iterations, built.mechanism);
        self.cache.record(CacheOutcome::Miss);
        Ok(self.finish(kind, fingerprint, CacheOutcome::Miss, t0, cached, None))
    }

    /// Builds the cache entry for a freshly compiled (or disk-loaded)
    /// strategy, evaluating its expected error once so later memory hits
    /// are pure map lookups.
    fn admit(
        &self,
        key: cache::CacheKey,
        workload: &Workload,
        strategy_rank: Option<usize>,
        alm_iterations: Option<usize>,
        mechanism: Arc<dyn Mechanism + Send + Sync>,
    ) -> CachedStrategy {
        let cached = CachedStrategy {
            expected_avg_error: mechanism.expected_average_error(self.reference_eps, None),
            workload_op: Arc::clone(workload.op()),
            strategy_rank,
            alm_iterations,
            mechanism,
        };
        self.cache.insert(key, cached.clone());
        cached
    }

    /// Drops every strategy resident in the memory cache (counters and
    /// the disk spill layer are untouched). Long sweeps over many distinct
    /// workloads — where no future compile will ever hit — call this to
    /// keep the cache from retaining every strategy they ever built.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// [`Engine::compile`] with the engine's default options.
    pub fn compile_default(
        &self,
        workload: &Workload,
        kind: MechanismKind,
    ) -> Result<CompiledMechanism, CoreError> {
        self.compile(workload, kind, &self.defaults)
    }

    /// Compiles every kind in `panel` and returns the one with the lowest
    /// closed-form expected error at the engine's reference ε — the argmin
    /// the paper's figures take by eye.
    ///
    /// Selection reads only public quantities (workload, options, ε), so
    /// it consumes no privacy budget. Kinds that fail to compile are
    /// skipped as long as at least one succeeds; all candidates stay in
    /// the strategy cache afterwards.
    pub fn compile_best(
        &self,
        workload: &Workload,
        panel: &[MechanismKind],
        options: &CompileOptions,
    ) -> Result<CompiledMechanism, CoreError> {
        let mut best: Option<CompiledMechanism> = None;
        let mut last_err: Option<CoreError> = None;
        for &kind in panel {
            match self.compile(workload, kind, options) {
                Ok(candidate) => {
                    let better = best.as_ref().is_none_or(|b| {
                        candidate.meta.expected_avg_error < b.meta.expected_avg_error
                    });
                    if better {
                        best = Some(candidate);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        best.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                CoreError::InvalidArgument("compile_best needs a non-empty panel".into())
            })
        })
    }

    /// [`Engine::compile_best`] over [`MechanismKind::STANDARD_PANEL`]
    /// with the engine's default options.
    pub fn compile_best_default(
        &self,
        workload: &Workload,
    ) -> Result<CompiledMechanism, CoreError> {
        self.compile_best(workload, &MechanismKind::STANDARD_PANEL, &self.defaults)
    }

    fn finish(
        &self,
        kind: MechanismKind,
        fingerprint: Fingerprint,
        cache: CacheOutcome,
        t0: Instant,
        cached: CachedStrategy,
        warm_start: Option<WarmStartProvenance>,
    ) -> CompiledMechanism {
        CompiledMechanism {
            meta: CompileMeta {
                kind,
                label: kind.label(),
                fingerprint,
                cache,
                compile_seconds: t0.elapsed().as_secs_f64(),
                strategy_rank: cached.strategy_rank,
                alm_iterations: cached.alm_iterations,
                warm_start,
                expected_avg_error: cached.expected_avg_error,
                reference_eps: self.reference_eps,
                degraded: false,
            },
            mechanism: cached.mechanism,
        }
    }

    /// [`Engine::compile`] under a cooperative wall-clock budget: the
    /// iterative solvers poll a thread-local deadline token
    /// ([`lrm_opt::deadline`]) once per iteration and the compile is
    /// abandoned with [`CoreError::DeadlineExceeded`] when it expires.
    ///
    /// The deadline is an execution constraint, not part of the strategy
    /// identity — it never enters the cache key, and an abandoned
    /// compile caches nothing. Cache and store hits return well within
    /// any realistic budget; only cold/warm ALM runs can be cut off.
    /// Callers (the serving runtime) are expected to fall back to a
    /// non-iterative kind such as [`MechanismKind::Laplace`] at the same
    /// ε and hand the shape to a background farm for recompile.
    pub fn compile_with_deadline(
        &self,
        workload: &Workload,
        kind: MechanismKind,
        options: &CompileOptions,
        budget: std::time::Duration,
    ) -> Result<CompiledMechanism, CoreError> {
        lrm_opt::deadline::with_deadline(lrm_opt::deadline::Deadline::after(budget), || {
            self.compile(workload, kind, options)
        })
    }

    /// The strategy-store spill directory this engine persists to, if
    /// one was configured. The serving layer parks its own durable
    /// state (e.g. the farm's popularity queue) next to the store.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.cache.spill_dir()
    }
}

// Thread-sharing contract: `lrm-server` worker pools compile through one
// shared `&Engine` and answer through shared `CompiledMechanism`s across
// threads. Every strategy is held as `Arc<dyn Mechanism + Send + Sync>`
// and the cache serializes behind its own locks, so these bounds hold
// structurally — this assertion turns any regression (e.g. an interior
// non-`Sync` cell added to the cache) into a compile error here instead
// of a trait-bound error in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineBuilder>();
    assert_send_sync::<CompiledMechanism>();
    assert_send_sync::<CompileMeta>();
    const fn assert_send<T: Send>() {}
    // A `Session` is single-owner (answering takes `&mut self`) but may
    // move to a worker thread.
    assert_send::<Session>();
};

/// Warm-start provenance: where a [`CacheOutcome::WarmStart`] compile's
/// seed came from and what it bought. All quantities here are public
/// (derived from workloads and solver behavior, never from data).
#[derive(Debug, Clone)]
pub struct WarmStartProvenance {
    /// Raw fingerprint of the workload whose decomposition seeded this
    /// compile.
    pub seed_fingerprint: u64,
    /// L1 distance between the two coarse column profiles (0 = identical).
    pub profile_distance: f64,
    /// Outer ALM iterations the *seed's* compile took — the baseline the
    /// savings are quoted against.
    pub seed_iterations: usize,
    /// Outer ALM iterations the seeded compile took.
    pub iterations: usize,
}

impl WarmStartProvenance {
    /// Iterations the warm start saved relative to the seed's compile
    /// (saturating: a warm run slower than its seed's reports 0).
    pub fn iterations_saved(&self) -> usize {
        self.seed_iterations.saturating_sub(self.iterations)
    }
}

/// Structured metadata attached to every [`Engine::compile`] result.
#[derive(Debug, Clone)]
pub struct CompileMeta {
    /// The registry entry that was compiled.
    pub kind: MechanismKind,
    /// Figure-legend label of the kind.
    pub label: &'static str,
    /// Content hash of the workload this strategy answers.
    pub fingerprint: Fingerprint,
    /// Where the compile was served from.
    pub cache: CacheOutcome,
    /// Wall-clock seconds this compile call took (≈0 on a memory hit).
    pub compile_seconds: f64,
    /// Decomposition rank `r` for decomposition-backed kinds.
    pub strategy_rank: Option<usize>,
    /// Outer ALM iterations the compile ran (`None` for non-iterative
    /// kinds and for strategies reloaded from the store).
    pub alm_iterations: Option<usize>,
    /// Present iff the compile was seeded by a similar cached strategy.
    pub warm_start: Option<WarmStartProvenance>,
    /// Closed-form expected **average** squared error at
    /// [`CompileMeta::reference_eps`] (data-independent terms only).
    pub expected_avg_error: f64,
    /// The reference ε the expected error is quoted at.
    pub reference_eps: Epsilon,
    /// Whether this strategy is a degraded-mode stand-in: the requested
    /// kind blew its compile deadline and a guaranteed-fast fallback
    /// answered instead — same ε, correct privacy accounting, higher
    /// error. Set by [`CompiledMechanism::mark_degraded`].
    pub degraded: bool,
}

/// A compiled strategy plus its [`CompileMeta`].
///
/// Implements [`Mechanism`] by delegation, so it can be measured or
/// answered directly; [`CompiledMechanism::session`] opens a
/// budget-tracked [`Session`] over it.
#[derive(Clone)]
pub struct CompiledMechanism {
    mechanism: Arc<dyn Mechanism + Send + Sync>,
    meta: CompileMeta,
}

impl CompiledMechanism {
    /// The compile metadata.
    pub fn meta(&self) -> &CompileMeta {
        &self.meta
    }

    /// Opens a budget-tracked [`Session`] holding `total` as its overall
    /// ε guarantee.
    pub fn session(&self, total: Epsilon) -> Session {
        Session::open(self, total)
    }

    /// Marks this strategy as a degraded-mode stand-in for a kind whose
    /// compile blew its deadline (see [`CompileMeta::degraded`]). Only
    /// the metadata changes; privacy accounting is untouched.
    pub fn mark_degraded(mut self) -> Self {
        self.meta.degraded = true;
        self
    }

    pub(crate) fn shared_mechanism(&self) -> Arc<dyn Mechanism + Send + Sync> {
        Arc::clone(&self.mechanism)
    }
}

impl Mechanism for CompiledMechanism {
    fn name(&self) -> &'static str {
        self.meta.label
    }

    fn num_queries(&self) -> usize {
        self.mechanism.num_queries()
    }

    fn domain_size(&self) -> usize {
        self.mechanism.domain_size()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.mechanism.answer(x, eps, rng)
    }

    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        self.mechanism.expected_error(eps, x)
    }
}

impl std::fmt::Debug for CompiledMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledMechanism")
            .field("meta", &self.meta)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WRelated, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn workload() -> Workload {
        WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(11))
            .unwrap()
    }

    #[test]
    fn second_compile_is_a_memory_hit() {
        let engine = Engine::builder().build();
        let w = workload();
        let first = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(first.meta().cache, CacheOutcome::Miss);

        let second = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::MemoryHit);
        let stats = engine.cache_stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));

        // Same strategy object, not a recompile.
        assert!(Arc::ptr_eq(&first.mechanism, &second.mechanism));
    }

    #[test]
    fn expired_deadline_abandons_iterative_compiles_only() {
        let engine = Engine::builder().build();
        let w = workload();

        // A zero budget is expired before the first ALM outer iteration.
        let err = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Lrm,
                engine.default_options(),
                std::time::Duration::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, CoreError::DeadlineExceeded);
        // An abandoned compile caches nothing.
        assert_eq!(engine.cache_stats().entries, 0);

        // Non-iterative kinds never poll the deadline.
        let fallback = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Laplace,
                engine.default_options(),
                std::time::Duration::ZERO,
            )
            .unwrap()
            .mark_degraded();
        assert!(fallback.meta().degraded);
        assert_eq!(fallback.meta().label, "LM");

        // A generous budget compiles normally, unmarked.
        let full = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Lrm,
                engine.default_options(),
                std::time::Duration::from_secs(600),
            )
            .unwrap();
        assert!(!full.meta().degraded);
        // The deadline is not part of the cache identity: a plain
        // compile afterwards is a memory hit.
        let again = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::MemoryHit);
    }

    #[test]
    fn clear_cache_drops_entries_but_keeps_counters() {
        let engine = Engine::builder().build();
        let w = workload();
        engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);

        engine.clear_cache();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);

        // A post-clear compile of the same workload recompiles.
        let again = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::Miss);
    }

    #[test]
    fn different_options_are_different_cache_entries() {
        let engine = Engine::builder().build();
        let w = workload();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();

        let mut opts = CompileOptions::default();
        opts.decomposition.gamma = 0.5;
        let other = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(other.meta().cache, CacheOutcome::Miss);
        assert_eq!(engine.cache_stats().entries, 2);
    }

    #[test]
    fn disk_spill_survives_an_engine_restart() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_spill_{}", std::process::id()));
        let w = workload();

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();

        // A fresh engine (cold memory cache) over the same spill dir.
        let engine2 = Engine::builder().spill_dir(&dir).build();
        let reloaded = engine2.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);
        assert_eq!(engine2.cache_stats().disk_hits, 1);

        // And the reloaded strategy answers identically.
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let direct = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        let a = direct.answer(&x, eps(1.0), &mut derive_rng(5, 6)).unwrap();
        let b = reloaded
            .answer(&x, eps(1.0), &mut derive_rng(5, 6))
            .unwrap();
        assert_eq!(a, b);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compile_best_prefers_lrm_on_low_rank_workloads() {
        let engine = Engine::builder().reference_epsilon(eps(0.1)).build();
        let w = WRelated { base_queries: 3 }
            .generate(24, 48, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let best = engine.compile_best_default(&w).unwrap();
        assert_eq!(best.meta().kind, MechanismKind::Lrm);

        // Never worse than the Laplace baseline (it is in the panel).
        let lm = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert!(best.meta().expected_avg_error <= lm.meta().expected_avg_error);
    }

    #[test]
    fn compile_best_tolerates_failing_candidates() {
        let engine = Engine::builder().build();
        let w = workload();
        // An impossible LRM config (zero iterations) fails; the panel
        // still yields the best of the remaining kinds.
        let mut opts = CompileOptions::default();
        opts.decomposition.max_outer_iters = 0;
        let best = engine
            .compile_best(&w, &[MechanismKind::Lrm, MechanismKind::Laplace], &opts)
            .unwrap();
        assert_eq!(best.meta().kind, MechanismKind::Laplace);

        // All candidates failing surfaces the error.
        assert!(engine
            .compile_best(&w, &[MechanismKind::Lrm], &opts)
            .is_err());
        assert!(engine.compile_best(&w, &[], &opts).is_err());
    }

    /// A dashboard-style range panel: `cuts` equal ranges, four quarter
    /// rollups, and the grand total over `n` bins. Panels with nearby cut
    /// counts are the similarity index's motivating near-duplicates.
    fn panel(n: usize, cuts: usize) -> Workload {
        let mut iv = Vec::with_capacity(cuts + 5);
        for c in 0..cuts {
            iv.push((c * n / cuts, (c + 1) * n / cuts - 1));
        }
        for q in 0..4 {
            iv.push((q * n / 4, (q + 1) * n / 4 - 1));
        }
        iv.push((0, n - 1));
        Workload::from_intervals(n, iv).unwrap()
    }

    #[test]
    fn similar_workload_warm_starts_but_is_never_served() {
        let engine = Engine::builder().build();
        let wa = panel(64, 15);
        let wb = panel(64, 16);
        let first = engine.compile_default(&wa, MechanismKind::Lrm).unwrap();
        assert_eq!(first.meta().cache, CacheOutcome::Miss);
        assert!(first.meta().alm_iterations.is_some());

        let second = engine.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::WarmStart);
        let prov = second.meta().warm_start.as_ref().expect("provenance");
        assert_eq!(prov.seed_fingerprint, wa.fingerprint().as_u64());
        assert!(prov.profile_distance < 0.5);
        assert_eq!(Some(prov.iterations), second.meta().alm_iterations);

        // Seeding only: the warm compile produced a *new* strategy for
        // wb's own queries, not the cached strategy for wa.
        assert!(!Arc::ptr_eq(&first.mechanism, &second.mechanism));
        assert_eq!(second.num_queries(), wb.num_queries());

        let stats = engine.cache_stats();
        assert_eq!((stats.misses, stats.warm_hits), (1, 1));

        // A repeat of wb is an exact memory hit, not another warm start.
        let third = engine.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(third.meta().cache, CacheOutcome::MemoryHit);
    }

    #[test]
    fn dissimilar_workload_compiles_cold() {
        let engine = Engine::builder().build();
        // Same class and n, but all the mass in opposite halves: profile
        // distance far above the similarity threshold.
        let left = Workload::from_intervals(32, vec![(0, 3), (4, 7), (8, 11), (12, 15)]).unwrap();
        let right =
            Workload::from_intervals(32, vec![(16, 19), (20, 23), (24, 27), (28, 31)]).unwrap();
        engine.compile_default(&left, MechanismKind::Lrm).unwrap();
        let second = engine.compile_default(&right, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::Miss);
        assert!(second.meta().warm_start.is_none());
        assert_eq!(engine.cache_stats().warm_hits, 0);
    }

    #[test]
    fn restarted_engine_warms_from_the_store() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wa = panel(64, 15);
        let wb = panel(64, 16);

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&wa, MechanismKind::Lrm).unwrap();
        drop(engine);

        // A fresh process: the header scan alone rebuilds the index, so
        // the near-duplicate warm-starts from the store without wa ever
        // being compiled here…
        let engine2 = Engine::builder().spill_dir(&dir).build();
        let warmed = engine2.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(warmed.meta().cache, CacheOutcome::WarmStart);
        assert_eq!(
            warmed.meta().warm_start.as_ref().unwrap().seed_fingerprint,
            wa.fingerprint().as_u64()
        );
        assert!(engine2.cache_stats().store_loads >= 1);

        // …and the exact workload reloads with zero recompiles.
        let reloaded = engine2.compile_default(&wa, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);
        assert_eq!(engine2.cache_stats().misses, 0);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn version_mismatched_store_entries_are_recompiled() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_vmm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = panel(64, 15);

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        drop(engine);

        // Corrupt the version word of every stored entry.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let path = entry.path();
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[4] = 0xEE;
            std::fs::write(&path, &bytes).unwrap();
        }

        let engine2 = Engine::builder().spill_dir(&dir).build();
        let again = engine2.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::Miss);
        assert_eq!(engine2.cache_stats().store_loads, 0);

        // The recompile overwrote the bad entry: a third engine reloads.
        drop(engine2);
        let engine3 = Engine::builder().spill_dir(&dir).build();
        let reloaded = engine3.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn meta_reports_rank_and_reference_error() {
        let engine = Engine::builder().build();
        let w = workload();
        let lrm = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert!(lrm.meta().strategy_rank.is_some());
        assert!(lrm.meta().expected_avg_error > 0.0);
        assert_eq!(lrm.meta().label, "LRM");

        let wm = engine.compile_default(&w, MechanismKind::Wavelet).unwrap();
        assert!(wm.meta().strategy_rank.is_none());
    }
}
