//! The serving engine: compile once, cache by workload, answer many times
//! under a tracked privacy budget.
//!
//! The paper's operational insight is that strategy search (Algorithm 1)
//! is the expensive, *data-independent* step while answering is
//! microseconds. This module packages that shape as an API:
//!
//! * [`MechanismKind`] — the mechanism registry: every strategy in this
//!   crate behind one enum, compiled through one dispatch;
//! * [`Engine::compile`] — returns a [`CompiledMechanism`] (strategy +
//!   [`CompileMeta`]: wall-time, rank, cache outcome, expected error at
//!   the engine's reference ε), served through a two-layer
//!   compiled-strategy cache (in-memory map + optional `LRMD` disk spill)
//!   keyed by the workload's content [`lrm_workload::Fingerprint`];
//! * [`Engine::compile_best`] — argmin over a panel of kinds by
//!   closed-form expected error (free: it reads only public quantities);
//! * [`Session`] — answering under a [`BudgetLedger`](lrm_dp::BudgetLedger):
//!   each release debits ε, and exhaustion is a typed error, not a silent
//!   over-spend.
//!
//! ```
//! use lrm_core::engine::{Engine, MechanismKind};
//! use lrm_dp::Epsilon;
//! use lrm_workload::Workload;
//!
//! let w = Workload::from_rows(&[
//!     &[1.0, 1.0, 1.0, 1.0],
//!     &[1.0, 1.0, 0.0, 0.0],
//!     &[0.0, 0.0, 1.0, 1.0],
//! ]).unwrap();
//!
//! let engine = Engine::builder().build();
//! let compiled = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
//! let mut session = compiled.session(Epsilon::new(1.0).unwrap());
//!
//! let mut rng = lrm_dp::rng::derive_rng(7, 0);
//! let half = Epsilon::new(0.5).unwrap();
//! let release = session
//!     .answer(&[82_700.0, 19_000.0, 67_000.0, 5_900.0], half, &mut rng)
//!     .unwrap();
//! assert_eq!(release.answers.len(), 3);
//! assert!((release.eps_remaining - 0.5).abs() < 1e-12);
//! ```

mod cache;
mod registry;
mod session;
mod store;

pub use cache::{CacheOutcome, CacheStats};
pub use registry::{CompileOptions, MechanismKind, NoiseFlavor};
pub use session::{BatchAnswer, EngineError, Session};

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use cache::{CachedStrategy, StrategyCache, PROFILE_BUCKETS};
use lrm_dp::{Budget, Epsilon};
use lrm_linalg::operator::coarse_column_profile;
use lrm_workload::{Fingerprint, Workload};
use rand::RngCore;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Default bound on resident strategy-store files.
const DEFAULT_STORE_CAPACITY: usize = 512;

/// Default reference δ quoted by approximate-DP compile metadata.
const DEFAULT_REFERENCE_DELTA: f64 = 1e-6;

/// Builder for [`Engine`].
#[derive(Debug)]
pub struct EngineBuilder {
    reference_eps: Epsilon,
    reference_delta: f64,
    defaults: CompileOptions,
    spill_dir: Option<PathBuf>,
    store_capacity: usize,
}

impl EngineBuilder {
    /// Starts from the defaults: reference ε = 1, reference δ = 1e-6,
    /// default compile options, no disk spill.
    pub fn new() -> Self {
        Self {
            reference_eps: Epsilon::new(1.0).expect("1.0 is a valid budget"),
            reference_delta: DEFAULT_REFERENCE_DELTA,
            defaults: CompileOptions::default(),
            spill_dir: None,
            store_capacity: DEFAULT_STORE_CAPACITY,
        }
    }

    /// Sets the reference ε used for the expected-error metadata and for
    /// [`Engine::compile_best`] comparisons. All noise errors scale as
    /// `1/ε²`, so the reference only matters when relaxed-LRM structural
    /// residuals enter a comparison.
    pub fn reference_epsilon(mut self, eps: Epsilon) -> Self {
        self.reference_eps = eps;
        self
    }

    /// Sets the reference δ that pairs with the reference ε when an
    /// approximate-DP ([`NoiseFlavor::ApproxDp`]) compile quotes its
    /// expected error — Gaussian noise has no pure-ε error at all.
    /// Ignored by pure compiles. Default: 1e-6.
    ///
    /// Panics if `delta` is not in `(0, 1)` — a configuration error, not
    /// a runtime condition.
    pub fn reference_delta(mut self, delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0 && delta < 1.0,
            "reference δ must be in (0, 1), got {delta}"
        );
        self.reference_delta = delta;
        self
    }

    /// Sets the default [`CompileOptions`] used by
    /// [`Engine::compile_default`].
    pub fn compile_options(mut self, options: CompileOptions) -> Self {
        self.defaults = options;
        self
    }

    /// Enables the on-disk strategy store: decomposition-backed strategies
    /// are persisted here (versioned `LRMS` format) and reloaded —
    /// revalidated exactly, or reused as warm-start seeds for similar
    /// workloads — instead of recompiled, across processes and restarts.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Bounds the number of files the strategy store retains; beyond it,
    /// the least recently written entries are evicted at save time.
    /// Default: 512.
    pub fn store_capacity(mut self, capacity: usize) -> Self {
        self.store_capacity = capacity.max(1);
        self
    }

    /// Finishes the builder. With a spill directory configured, surviving
    /// store files are header-scanned here to rebuild the similarity
    /// index, so the first compiles after a restart can already warm-start.
    pub fn build(self) -> Engine {
        Engine {
            reference_eps: self.reference_eps,
            reference_delta: self.reference_delta,
            defaults: self.defaults,
            cache: StrategyCache::new(self.spill_dir, self.store_capacity),
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The compile-once / answer-many entry point. See the
/// [module docs](self) for the full picture.
#[derive(Debug)]
pub struct Engine {
    reference_eps: Epsilon,
    reference_delta: f64,
    defaults: CompileOptions,
    cache: StrategyCache,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts an [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The ε all compile metadata reports expected errors at.
    pub fn reference_epsilon(&self) -> Epsilon {
        self.reference_eps
    }

    /// The δ paired with the reference ε for approximate-DP metadata.
    pub fn reference_delta(&self) -> f64 {
        self.reference_delta
    }

    /// The (ε, δ) budget `flavor`'s expected-error metadata is quoted at.
    fn reference_budget(&self, flavor: NoiseFlavor) -> Budget {
        match flavor {
            NoiseFlavor::PureDp => Budget::pure(self.reference_eps),
            NoiseFlavor::ApproxDp => Budget::approx(self.reference_eps, self.reference_delta)
                .expect("builder-validated reference δ"),
        }
    }

    /// The options [`Engine::compile_default`] uses.
    pub fn default_options(&self) -> &CompileOptions {
        &self.defaults
    }

    /// Cache counters: memory hits, disk hits, cold misses, warm-started
    /// compiles, store loads, store evictions, resident entries.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiles `kind` for `workload`, served from the strategy cache when
    /// the same `(workload, kind, options)` triple has been seen before.
    pub fn compile(
        &self,
        workload: &Workload,
        kind: MechanismKind,
        options: &CompileOptions,
    ) -> Result<CompiledMechanism, CoreError> {
        let t0 = Instant::now();
        registry::check_flavor_supported(kind, options.flavor)?;
        let fingerprint = workload.fingerprint();
        let key = (fingerprint, kind, options.digest(kind));
        let flavor = options.flavor;

        if let Some(cached) = self.cache.lookup(&key) {
            // Confirm the hit against the actual workload: on the
            // astronomically rare fingerprint collision we must recompile
            // rather than serve a strategy built for a different workload.
            // The compare streams rows through the operators — structured
            // workloads stay structured.
            if lrm_linalg::operator::op_logical_eq(
                cached.workload_op.as_ref(),
                workload.op().as_ref(),
            ) {
                self.cache.record(CacheOutcome::MemoryHit);
                return Ok(self.finish(
                    kind,
                    flavor,
                    fingerprint,
                    CacheOutcome::MemoryHit,
                    t0,
                    cached,
                    None,
                ));
            }
        }

        if kind.is_decomposition_backed() {
            let profile = coarse_column_profile(workload.op().as_ref(), PROFILE_BUCKETS);

            if let Some((decomposition, header)) = self.cache.try_disk_load(&key, workload, flavor)
            {
                let decomposition = Arc::new(decomposition);
                self.cache.admit_seed(
                    &key,
                    workload,
                    profile,
                    header.cold_iterations,
                    Arc::clone(&decomposition),
                );
                let cached = self.admit(
                    key,
                    flavor,
                    workload,
                    Some(decomposition.rank()),
                    None,
                    registry::rebuild_from_decomposition(kind, (*decomposition).clone(), workload),
                );
                self.cache.record(CacheOutcome::DiskHit);
                return Ok(self.finish(
                    kind,
                    flavor,
                    fingerprint,
                    CacheOutcome::DiskHit,
                    t0,
                    cached,
                    None,
                ));
            }

            // Exact miss: a similar cached decomposition — same kind,
            // options, structural class, and domain, with compatible rank
            // and a close column profile — seeds the solver. The seeded
            // compile runs the full convergence contract; the seed is
            // never served directly.
            let target_rank = match options.decomposition_for(kind).target_rank {
                crate::decomposition::TargetRank::Exact(r) => Some(r),
                crate::decomposition::TargetRank::RatioOfRank(_) => None,
            };
            if let Some((seed, info)) =
                self.cache
                    .nearest_seed(kind, key.2, workload, target_rank, &profile)
            {
                if let Ok(built) = registry::build_with_seed(kind, workload, options, &seed) {
                    let dec = built
                        .decomposition
                        .expect("decomposition-backed kinds always produce factors");
                    if dec.stats().warm_started {
                        let iterations = dec.stats().outer_iterations;
                        self.cache.persist(&key, workload, &profile, &dec, flavor);
                        let dec = Arc::new(dec);
                        self.cache.admit_seed(
                            &key,
                            workload,
                            profile,
                            iterations,
                            Arc::clone(&dec),
                        );
                        let cached = self.admit(
                            key,
                            flavor,
                            workload,
                            Some(dec.rank()),
                            Some(iterations),
                            built.mechanism,
                        );
                        self.cache.record(CacheOutcome::WarmStart);
                        let provenance = WarmStartProvenance {
                            seed_fingerprint: info.fingerprint,
                            profile_distance: info.distance,
                            seed_iterations: info.cold_iterations,
                            iterations,
                            cross_digest: info.cross_digest,
                            cross_flavor: info.seed_norm != flavor.norm(),
                        };
                        return Ok(self.finish(
                            kind,
                            flavor,
                            fingerprint,
                            CacheOutcome::WarmStart,
                            t0,
                            cached,
                            Some(provenance),
                        ));
                    }
                    // The solver rejected the seed (e.g. ill-conditioned
                    // factors) and ran cold anyway: report it as a miss.
                    let iterations = dec.stats().outer_iterations;
                    self.cache.persist(&key, workload, &profile, &dec, flavor);
                    let dec = Arc::new(dec);
                    self.cache
                        .admit_seed(&key, workload, profile, iterations, Arc::clone(&dec));
                    let cached = self.admit(
                        key,
                        flavor,
                        workload,
                        Some(dec.rank()),
                        Some(iterations),
                        built.mechanism,
                    );
                    self.cache.record(CacheOutcome::Miss);
                    return Ok(self.finish(
                        kind,
                        flavor,
                        fingerprint,
                        CacheOutcome::Miss,
                        t0,
                        cached,
                        None,
                    ));
                }
            }
        }

        let built = registry::build(kind, workload, options)?;
        let mut alm_iterations = None;
        if let Some(decomposition) = &built.decomposition {
            let profile = coarse_column_profile(workload.op().as_ref(), PROFILE_BUCKETS);
            let iterations = decomposition.stats().outer_iterations;
            alm_iterations = Some(iterations);
            self.cache
                .persist(&key, workload, &profile, decomposition, flavor);
            self.cache.admit_seed(
                &key,
                workload,
                profile,
                iterations,
                Arc::new(decomposition.clone()),
            );
        }
        let rank = built.decomposition.as_ref().map(|d| d.rank());
        let cached = self.admit(key, flavor, workload, rank, alm_iterations, built.mechanism);
        self.cache.record(CacheOutcome::Miss);
        Ok(self.finish(
            kind,
            flavor,
            fingerprint,
            CacheOutcome::Miss,
            t0,
            cached,
            None,
        ))
    }

    /// Builds the cache entry for a freshly compiled (or disk-loaded)
    /// strategy, evaluating its expected error once — at the reference
    /// budget matching the compile's flavor — so later memory hits are
    /// pure map lookups.
    fn admit(
        &self,
        key: cache::CacheKey,
        flavor: NoiseFlavor,
        workload: &Workload,
        strategy_rank: Option<usize>,
        alm_iterations: Option<usize>,
        mechanism: Arc<dyn Mechanism + Send + Sync>,
    ) -> CachedStrategy {
        let cached = CachedStrategy {
            expected_avg_error: mechanism
                .expected_average_error_budget(self.reference_budget(flavor), None),
            workload_op: Arc::clone(workload.op()),
            strategy_rank,
            alm_iterations,
            mechanism,
        };
        self.cache.insert(key, cached.clone());
        cached
    }

    /// Drops every strategy resident in the memory cache (counters and
    /// the disk spill layer are untouched). Long sweeps over many distinct
    /// workloads — where no future compile will ever hit — call this to
    /// keep the cache from retaining every strategy they ever built.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// [`Engine::compile`] with the engine's default options.
    pub fn compile_default(
        &self,
        workload: &Workload,
        kind: MechanismKind,
    ) -> Result<CompiledMechanism, CoreError> {
        self.compile(workload, kind, &self.defaults)
    }

    /// Compiles every kind in `panel` and returns the one with the lowest
    /// closed-form expected error at the engine's reference ε — the argmin
    /// the paper's figures take by eye.
    ///
    /// Selection reads only public quantities (workload, options, ε), so
    /// it consumes no privacy budget. Kinds that fail to compile are
    /// skipped as long as at least one succeeds; all candidates stay in
    /// the strategy cache afterwards.
    pub fn compile_best(
        &self,
        workload: &Workload,
        panel: &[MechanismKind],
        options: &CompileOptions,
    ) -> Result<CompiledMechanism, CoreError> {
        let mut best: Option<CompiledMechanism> = None;
        let mut last_err: Option<CoreError> = None;
        for &kind in panel {
            match self.compile(workload, kind, options) {
                Ok(candidate) => {
                    let better = best.as_ref().is_none_or(|b| {
                        candidate.meta.expected_avg_error < b.meta.expected_avg_error
                    });
                    if better {
                        best = Some(candidate);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        best.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                CoreError::InvalidArgument("compile_best needs a non-empty panel".into())
            })
        })
    }

    /// [`Engine::compile_best`] over [`MechanismKind::STANDARD_PANEL`]
    /// with the engine's default options.
    pub fn compile_best_default(
        &self,
        workload: &Workload,
    ) -> Result<CompiledMechanism, CoreError> {
        self.compile_best(workload, &MechanismKind::STANDARD_PANEL, &self.defaults)
    }

    // Internal assembly point for every compile path; the argument list
    // is the full CompileMeta provenance and is not worth a builder.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        kind: MechanismKind,
        flavor: NoiseFlavor,
        fingerprint: Fingerprint,
        cache: CacheOutcome,
        t0: Instant,
        cached: CachedStrategy,
        warm_start: Option<WarmStartProvenance>,
    ) -> CompiledMechanism {
        CompiledMechanism {
            meta: CompileMeta {
                kind,
                flavor,
                label: kind.label_for(flavor),
                fingerprint,
                cache,
                compile_seconds: t0.elapsed().as_secs_f64(),
                strategy_rank: cached.strategy_rank,
                alm_iterations: cached.alm_iterations,
                warm_start,
                expected_avg_error: cached.expected_avg_error,
                reference_eps: self.reference_eps,
                reference_delta: match flavor {
                    NoiseFlavor::PureDp => 0.0,
                    NoiseFlavor::ApproxDp => self.reference_delta,
                },
                degraded: false,
            },
            mechanism: cached.mechanism,
        }
    }

    /// [`Engine::compile`] under a cooperative wall-clock budget: the
    /// iterative solvers poll a thread-local deadline token
    /// ([`lrm_opt::deadline`]) once per iteration and the compile is
    /// abandoned with [`CoreError::DeadlineExceeded`] when it expires.
    ///
    /// The deadline is an execution constraint, not part of the strategy
    /// identity — it never enters the cache key, and an abandoned
    /// compile caches nothing. Cache and store hits return well within
    /// any realistic budget; only cold/warm ALM runs can be cut off.
    /// Callers (the serving runtime) are expected to fall back to a
    /// non-iterative kind such as [`MechanismKind::Laplace`] at the same
    /// ε and hand the shape to a background farm for recompile.
    pub fn compile_with_deadline(
        &self,
        workload: &Workload,
        kind: MechanismKind,
        options: &CompileOptions,
        budget: std::time::Duration,
    ) -> Result<CompiledMechanism, CoreError> {
        lrm_opt::deadline::with_deadline(lrm_opt::deadline::Deadline::after(budget), || {
            self.compile(workload, kind, options)
        })
    }

    /// The strategy-store spill directory this engine persists to, if
    /// one was configured. The serving layer parks its own durable
    /// state (e.g. the farm's popularity queue) next to the store.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.cache.spill_dir()
    }
}

// Thread-sharing contract: `lrm-server` worker pools compile through one
// shared `&Engine` and answer through shared `CompiledMechanism`s across
// threads. Every strategy is held as `Arc<dyn Mechanism + Send + Sync>`
// and the cache serializes behind its own locks, so these bounds hold
// structurally — this assertion turns any regression (e.g. an interior
// non-`Sync` cell added to the cache) into a compile error here instead
// of a trait-bound error in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineBuilder>();
    assert_send_sync::<CompiledMechanism>();
    assert_send_sync::<CompileMeta>();
    const fn assert_send<T: Send>() {}
    // A `Session` is single-owner (answering takes `&mut self`) but may
    // move to a worker thread.
    assert_send::<Session>();
};

/// Warm-start provenance: where a [`CacheOutcome::WarmStart`] compile's
/// seed came from and what it bought. All quantities here are public
/// (derived from workloads and solver behavior, never from data).
#[derive(Debug, Clone)]
pub struct WarmStartProvenance {
    /// Raw fingerprint of the workload whose decomposition seeded this
    /// compile.
    pub seed_fingerprint: u64,
    /// L1 distance between the two coarse column profiles (0 = identical).
    pub profile_distance: f64,
    /// Outer ALM iterations the *seed's* compile took — the baseline the
    /// savings are quoted against.
    pub seed_iterations: usize,
    /// Outer ALM iterations the seeded compile took.
    pub iterations: usize,
    /// The seed came from a different options digest (e.g. another γ, or
    /// the other noise flavor). Exact-digest seeds are always preferred,
    /// so this is only ever `true` when no exact-digest neighbor existed.
    pub cross_digest: bool,
    /// The seed's factors were optimized under the other sensitivity norm
    /// (an L1 neighbor seeding an L2 compile, or vice versa). The solver
    /// re-projected them onto this compile's feasible set and re-converged
    /// under the full contract — seeds cross flavors, strategies never do.
    pub cross_flavor: bool,
}

impl WarmStartProvenance {
    /// Iterations the warm start saved relative to the seed's compile
    /// (saturating: a warm run slower than its seed's reports 0).
    pub fn iterations_saved(&self) -> usize {
        self.seed_iterations.saturating_sub(self.iterations)
    }
}

/// Structured metadata attached to every [`Engine::compile`] result.
#[derive(Debug, Clone)]
pub struct CompileMeta {
    /// The registry entry that was compiled.
    pub kind: MechanismKind,
    /// The noise model the strategy is calibrated for.
    pub flavor: NoiseFlavor,
    /// Figure-legend label of the kind under its flavor (`"LRM"` pure,
    /// `"LRM-G"` approximate, …).
    pub label: &'static str,
    /// Content hash of the workload this strategy answers.
    pub fingerprint: Fingerprint,
    /// Where the compile was served from.
    pub cache: CacheOutcome,
    /// Wall-clock seconds this compile call took (≈0 on a memory hit).
    pub compile_seconds: f64,
    /// Decomposition rank `r` for decomposition-backed kinds.
    pub strategy_rank: Option<usize>,
    /// Outer ALM iterations the compile ran (`None` for non-iterative
    /// kinds and for strategies reloaded from the store).
    pub alm_iterations: Option<usize>,
    /// Present iff the compile was seeded by a similar cached strategy.
    pub warm_start: Option<WarmStartProvenance>,
    /// Closed-form expected **average** squared error at
    /// [`CompileMeta::reference_eps`] (paired with
    /// [`CompileMeta::reference_delta`] for approximate compiles;
    /// data-independent terms only).
    pub expected_avg_error: f64,
    /// The reference ε the expected error is quoted at.
    pub reference_eps: Epsilon,
    /// The reference δ the expected error is quoted at — `0` for pure
    /// compiles, the engine's configured reference δ for approximate ones.
    pub reference_delta: f64,
    /// Whether this strategy is a degraded-mode stand-in: the requested
    /// kind blew its compile deadline and a guaranteed-fast fallback
    /// answered instead — same ε, correct privacy accounting, higher
    /// error. Set by [`CompiledMechanism::mark_degraded`].
    pub degraded: bool,
}

/// A compiled strategy plus its [`CompileMeta`].
///
/// Implements [`Mechanism`] by delegation, so it can be measured or
/// answered directly; [`CompiledMechanism::session`] opens a
/// budget-tracked [`Session`] over it.
#[derive(Clone)]
pub struct CompiledMechanism {
    mechanism: Arc<dyn Mechanism + Send + Sync>,
    meta: CompileMeta,
}

impl CompiledMechanism {
    /// The compile metadata.
    pub fn meta(&self) -> &CompileMeta {
        &self.meta
    }

    /// Opens a budget-tracked [`Session`] holding `total` as its overall
    /// ε guarantee.
    pub fn session(&self, total: Epsilon) -> Session {
        Session::open(self, total)
    }

    /// Opens a budget-tracked [`Session`] holding `total` as its overall
    /// (ε, δ) guarantee — the entry point for approximate-DP strategies,
    /// whose releases need a δ to exist at all.
    pub fn session_budget(&self, total: Budget) -> Session {
        Session::open_budget(self, total)
    }

    /// Marks this strategy as a degraded-mode stand-in for a kind whose
    /// compile blew its deadline (see [`CompileMeta::degraded`]). Only
    /// the metadata changes; privacy accounting is untouched.
    pub fn mark_degraded(mut self) -> Self {
        self.meta.degraded = true;
        self
    }

    pub(crate) fn shared_mechanism(&self) -> Arc<dyn Mechanism + Send + Sync> {
        Arc::clone(&self.mechanism)
    }
}

impl Mechanism for CompiledMechanism {
    fn name(&self) -> &'static str {
        self.meta.label
    }

    fn num_queries(&self) -> usize {
        self.mechanism.num_queries()
    }

    fn domain_size(&self) -> usize {
        self.mechanism.domain_size()
    }

    fn answer(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.mechanism.answer(x, eps, rng)
    }

    fn expected_error(&self, eps: Epsilon, x: Option<&[f64]>) -> f64 {
        self.mechanism.expected_error(eps, x)
    }

    // The budget/top-up methods must delegate explicitly: the trait
    // defaults would route them through `CompiledMechanism::answer`,
    // which a Gaussian inner mechanism rejects.
    fn answer_budget(
        &self,
        x: &[f64],
        budget: Budget,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.mechanism.answer_budget(x, budget, rng)
    }

    fn answer_with_topup(
        &self,
        x: &[f64],
        base: Budget,
        target: Budget,
        base_rng: &mut dyn RngCore,
        topup_rng: &mut dyn RngCore,
    ) -> Result<Vec<f64>, CoreError> {
        self.mechanism
            .answer_with_topup(x, base, target, base_rng, topup_rng)
    }

    fn expected_error_budget(&self, budget: Budget, x: Option<&[f64]>) -> f64 {
        self.mechanism.expected_error_budget(budget, x)
    }
}

impl std::fmt::Debug for CompiledMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledMechanism")
            .field("meta", &self.meta)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_dp::rng::derive_rng;
    use lrm_workload::generators::{WRange, WRelated, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn workload() -> Workload {
        WRange
            .generate(8, 16, &mut StdRng::seed_from_u64(11))
            .unwrap()
    }

    #[test]
    fn second_compile_is_a_memory_hit() {
        let engine = Engine::builder().build();
        let w = workload();
        let first = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(first.meta().cache, CacheOutcome::Miss);

        let second = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::MemoryHit);
        let stats = engine.cache_stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));

        // Same strategy object, not a recompile.
        assert!(Arc::ptr_eq(&first.mechanism, &second.mechanism));
    }

    #[test]
    fn expired_deadline_abandons_iterative_compiles_only() {
        let engine = Engine::builder().build();
        let w = workload();

        // A zero budget is expired before the first ALM outer iteration.
        let err = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Lrm,
                engine.default_options(),
                std::time::Duration::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, CoreError::DeadlineExceeded);
        // An abandoned compile caches nothing.
        assert_eq!(engine.cache_stats().entries, 0);

        // Non-iterative kinds never poll the deadline.
        let fallback = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Laplace,
                engine.default_options(),
                std::time::Duration::ZERO,
            )
            .unwrap()
            .mark_degraded();
        assert!(fallback.meta().degraded);
        assert_eq!(fallback.meta().label, "LM");

        // A generous budget compiles normally, unmarked.
        let full = engine
            .compile_with_deadline(
                &w,
                MechanismKind::Lrm,
                engine.default_options(),
                std::time::Duration::from_secs(600),
            )
            .unwrap();
        assert!(!full.meta().degraded);
        // The deadline is not part of the cache identity: a plain
        // compile afterwards is a memory hit.
        let again = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::MemoryHit);
    }

    #[test]
    fn clear_cache_drops_entries_but_keeps_counters() {
        let engine = Engine::builder().build();
        let w = workload();
        engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);

        engine.clear_cache();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);

        // A post-clear compile of the same workload recompiles.
        let again = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::Miss);
    }

    #[test]
    fn different_options_are_different_cache_entries() {
        let engine = Engine::builder().build();
        let w = workload();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();

        let mut opts = CompileOptions::default();
        opts.decomposition.gamma = 0.5;
        let other = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        // A different digest is a different cache entry — but the first
        // compile's decomposition is close enough to seed it, so the
        // second full solve starts warm (cross-digest, same flavor).
        assert_eq!(other.meta().cache, CacheOutcome::WarmStart);
        let prov = other.meta().warm_start.as_ref().unwrap();
        assert!(prov.cross_digest);
        assert!(!prov.cross_flavor);
        assert_eq!(engine.cache_stats().entries, 2);

        // Repeats of both option sets are exact memory hits.
        let again = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::MemoryHit);
    }

    #[test]
    fn flavors_are_separate_cache_entries_and_labels() {
        let engine = Engine::builder().build();
        let w = workload();
        let pure = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(pure.meta().flavor, NoiseFlavor::PureDp);
        assert_eq!(pure.meta().label, "LRM");
        assert_eq!(pure.meta().reference_delta, 0.0);

        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let approx = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(approx.meta().flavor, NoiseFlavor::ApproxDp);
        assert_eq!(approx.meta().label, "LRM-G");
        assert!(approx.meta().reference_delta > 0.0);
        assert!(approx.meta().expected_avg_error.is_finite());
        assert_eq!(engine.cache_stats().entries, 2);
        assert!(!Arc::ptr_eq(&pure.mechanism, &approx.mechanism));

        // The pure strategy is NEVER served for an approximate request:
        // a repeat approximate compile hits its own entry…
        let again = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::MemoryHit);
        assert!(Arc::ptr_eq(&approx.mechanism, &again.mechanism));
        // …and the compiled artifacts enforce their own calibration.
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert!(approx.answer(&x, eps(1.0), &mut derive_rng(0, 0)).is_err());
        let b = Budget::approx(eps(1.0), 1e-6).unwrap();
        assert!(approx.answer_budget(&x, b, &mut derive_rng(0, 0)).is_ok());
    }

    #[test]
    fn pure_neighbor_seeds_an_approx_compile_across_flavors() {
        let engine = Engine::builder().build();
        let w = panel(64, 15);
        let first = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(first.meta().cache, CacheOutcome::Miss);

        // Same workload, other flavor: no exact entry, no exact-digest
        // neighbor — the pure decomposition seeds the L2 solve.
        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let approx = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(approx.meta().cache, CacheOutcome::WarmStart);
        let prov = approx.meta().warm_start.as_ref().unwrap();
        assert!(prov.cross_digest);
        assert!(prov.cross_flavor, "an L1 seed into an L2 compile");
        assert_eq!(prov.seed_fingerprint, w.fingerprint().as_u64());
        assert_eq!(approx.meta().label, "LRM-G");
    }

    #[test]
    fn approx_compile_of_unsupported_kind_is_a_typed_error() {
        let engine = Engine::builder().build();
        let w = workload();
        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let err = engine
            .compile(&w, MechanismKind::Wavelet, &opts)
            .unwrap_err();
        assert!(err.to_string().contains("no approximate-DP"), "{err}");
        // Nothing was cached for the failed compile.
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn pure_store_dir_warm_starts_but_never_serves_an_approx_compile() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_xflavor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = panel(64, 15);

        // A PR-7-style engine writes a pure entry.
        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        drop(engine);

        // A fresh engine asked for the approximate flavor of the SAME
        // workload: the stored pure entry must not disk-hit (different
        // digest ⇒ different path; and load_exact would reject the flavor
        // anyway), but its header seeds the L2 solve from disk.
        let engine2 = Engine::builder().spill_dir(&dir).build();
        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let approx = engine2.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        assert_eq!(approx.meta().cache, CacheOutcome::WarmStart);
        let prov = approx.meta().warm_start.as_ref().unwrap();
        assert!(prov.cross_flavor);
        assert_eq!(engine2.cache_stats().disk_hits, 0);

        // The pure entry still disk-hits for pure requests.
        let pure = engine2.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(pure.meta().cache, CacheOutcome::DiskHit);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_spill_survives_an_engine_restart() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_spill_{}", std::process::id()));
        let w = workload();

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();

        // A fresh engine (cold memory cache) over the same spill dir.
        let engine2 = Engine::builder().spill_dir(&dir).build();
        let reloaded = engine2.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);
        assert_eq!(engine2.cache_stats().disk_hits, 1);

        // And the reloaded strategy answers identically.
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let direct = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        let a = direct.answer(&x, eps(1.0), &mut derive_rng(5, 6)).unwrap();
        let b = reloaded
            .answer(&x, eps(1.0), &mut derive_rng(5, 6))
            .unwrap();
        assert_eq!(a, b);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compile_best_prefers_lrm_on_low_rank_workloads() {
        let engine = Engine::builder().reference_epsilon(eps(0.1)).build();
        let w = WRelated { base_queries: 3 }
            .generate(24, 48, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let best = engine.compile_best_default(&w).unwrap();
        assert_eq!(best.meta().kind, MechanismKind::Lrm);

        // Never worse than the Laplace baseline (it is in the panel).
        let lm = engine.compile_default(&w, MechanismKind::Laplace).unwrap();
        assert!(best.meta().expected_avg_error <= lm.meta().expected_avg_error);
    }

    #[test]
    fn compile_best_tolerates_failing_candidates() {
        let engine = Engine::builder().build();
        let w = workload();
        // An impossible LRM config (zero iterations) fails; the panel
        // still yields the best of the remaining kinds.
        let mut opts = CompileOptions::default();
        opts.decomposition.max_outer_iters = 0;
        let best = engine
            .compile_best(&w, &[MechanismKind::Lrm, MechanismKind::Laplace], &opts)
            .unwrap();
        assert_eq!(best.meta().kind, MechanismKind::Laplace);

        // All candidates failing surfaces the error.
        assert!(engine
            .compile_best(&w, &[MechanismKind::Lrm], &opts)
            .is_err());
        assert!(engine.compile_best(&w, &[], &opts).is_err());
    }

    /// A dashboard-style range panel: `cuts` equal ranges, four quarter
    /// rollups, and the grand total over `n` bins. Panels with nearby cut
    /// counts are the similarity index's motivating near-duplicates.
    fn panel(n: usize, cuts: usize) -> Workload {
        let mut iv = Vec::with_capacity(cuts + 5);
        for c in 0..cuts {
            iv.push((c * n / cuts, (c + 1) * n / cuts - 1));
        }
        for q in 0..4 {
            iv.push((q * n / 4, (q + 1) * n / 4 - 1));
        }
        iv.push((0, n - 1));
        Workload::from_intervals(n, iv).unwrap()
    }

    #[test]
    fn similar_workload_warm_starts_but_is_never_served() {
        let engine = Engine::builder().build();
        let wa = panel(64, 15);
        let wb = panel(64, 16);
        let first = engine.compile_default(&wa, MechanismKind::Lrm).unwrap();
        assert_eq!(first.meta().cache, CacheOutcome::Miss);
        assert!(first.meta().alm_iterations.is_some());

        let second = engine.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::WarmStart);
        let prov = second.meta().warm_start.as_ref().expect("provenance");
        assert_eq!(prov.seed_fingerprint, wa.fingerprint().as_u64());
        assert!(prov.profile_distance < 0.5);
        assert_eq!(Some(prov.iterations), second.meta().alm_iterations);

        // Seeding only: the warm compile produced a *new* strategy for
        // wb's own queries, not the cached strategy for wa.
        assert!(!Arc::ptr_eq(&first.mechanism, &second.mechanism));
        assert_eq!(second.num_queries(), wb.num_queries());

        let stats = engine.cache_stats();
        assert_eq!((stats.misses, stats.warm_hits), (1, 1));

        // A repeat of wb is an exact memory hit, not another warm start.
        let third = engine.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(third.meta().cache, CacheOutcome::MemoryHit);
    }

    #[test]
    fn dissimilar_workload_compiles_cold() {
        let engine = Engine::builder().build();
        // Same class and n, but all the mass in opposite halves: profile
        // distance far above the similarity threshold.
        let left = Workload::from_intervals(32, vec![(0, 3), (4, 7), (8, 11), (12, 15)]).unwrap();
        let right =
            Workload::from_intervals(32, vec![(16, 19), (20, 23), (24, 27), (28, 31)]).unwrap();
        engine.compile_default(&left, MechanismKind::Lrm).unwrap();
        let second = engine.compile_default(&right, MechanismKind::Lrm).unwrap();
        assert_eq!(second.meta().cache, CacheOutcome::Miss);
        assert!(second.meta().warm_start.is_none());
        assert_eq!(engine.cache_stats().warm_hits, 0);
    }

    #[test]
    fn restarted_engine_warms_from_the_store() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wa = panel(64, 15);
        let wb = panel(64, 16);

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&wa, MechanismKind::Lrm).unwrap();
        drop(engine);

        // A fresh process: the header scan alone rebuilds the index, so
        // the near-duplicate warm-starts from the store without wa ever
        // being compiled here…
        let engine2 = Engine::builder().spill_dir(&dir).build();
        let warmed = engine2.compile_default(&wb, MechanismKind::Lrm).unwrap();
        assert_eq!(warmed.meta().cache, CacheOutcome::WarmStart);
        assert_eq!(
            warmed.meta().warm_start.as_ref().unwrap().seed_fingerprint,
            wa.fingerprint().as_u64()
        );
        assert!(engine2.cache_stats().store_loads >= 1);

        // …and the exact workload reloads with zero recompiles.
        let reloaded = engine2.compile_default(&wa, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);
        assert_eq!(engine2.cache_stats().misses, 0);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn version_mismatched_store_entries_are_recompiled() {
        let dir = std::env::temp_dir().join(format!("lrm_engine_vmm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = panel(64, 15);

        let engine = Engine::builder().spill_dir(&dir).build();
        engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        drop(engine);

        // Corrupt the version word of every stored entry.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let path = entry.path();
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[4] = 0xEE;
            std::fs::write(&path, &bytes).unwrap();
        }

        let engine2 = Engine::builder().spill_dir(&dir).build();
        let again = engine2.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(again.meta().cache, CacheOutcome::Miss);
        assert_eq!(engine2.cache_stats().store_loads, 0);

        // The recompile overwrote the bad entry: a third engine reloads.
        drop(engine2);
        let engine3 = Engine::builder().spill_dir(&dir).build();
        let reloaded = engine3.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert_eq!(reloaded.meta().cache, CacheOutcome::DiskHit);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn budget_sessions_compose_delta_and_refuse_overspend() {
        let engine = Engine::builder().build();
        let w = workload();
        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let compiled = engine.compile(&w, MechanismKind::Lrm, &opts).unwrap();
        let total = Budget::approx(eps(1.0), 2e-6).unwrap();
        let mut session = compiled.session_budget(total);
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();

        let per_release = Budget::approx(eps(0.5), 1e-6).unwrap();
        let first = session
            .answer_budget(&x, per_release, &mut derive_rng(1, 0))
            .unwrap();
        assert_eq!(first.delta_spent, 1e-6);
        assert!((first.delta_remaining - 1e-6).abs() < 1e-18);
        assert!((first.eps_remaining - 0.5).abs() < 1e-12);
        assert!(first.expected_avg_error.is_finite());

        session
            .answer_budget(&x, per_release, &mut derive_rng(1, 1))
            .unwrap();
        // ε and δ are both exhausted now; a third release is refused and
        // the ledger is untouched by the refusal.
        let before = session.ledger().delta_spent();
        assert!(session
            .answer_budget(&x, per_release, &mut derive_rng(1, 2))
            .is_err());
        assert_eq!(session.ledger().delta_spent(), before);

        // A pure session over the Gaussian strategy can't release at all:
        // answer() is rejected by the mechanism before any debit.
        let mut pure_session = compiled.session(eps(1.0));
        assert!(pure_session
            .answer(&x, eps(0.5), &mut derive_rng(1, 3))
            .is_err());
        assert_eq!(pure_session.ledger().spent(), 0.0);
    }

    #[test]
    fn meta_reports_rank_and_reference_error() {
        let engine = Engine::builder().build();
        let w = workload();
        let lrm = engine.compile_default(&w, MechanismKind::Lrm).unwrap();
        assert!(lrm.meta().strategy_rank.is_some());
        assert!(lrm.meta().expected_avg_error > 0.0);
        assert_eq!(lrm.meta().label, "LRM");

        let wm = engine.compile_default(&w, MechanismKind::Wavelet).unwrap();
        assert!(wm.meta().strategy_rank.is_none());
    }
}
