//! The compiled-strategy cache.
//!
//! Strategy search is the expensive, data-independent step of every
//! mechanism here (Algorithm 1 takes minutes at the paper's full scale;
//! answering is microseconds), so the engine memoizes compiled strategies
//! by `(workload fingerprint, kind, options digest)`:
//!
//! * **Memory layer** — an `Arc`-shared map; a repeated compile of an
//!   already-seen workload is an O(1) map lookup with zero decomposition
//!   work.
//! * **Disk layer (optional)** — decomposition-backed strategies spill
//!   their `(B, L)` factors through the `LRMD` persistence format, so a
//!   fresh process pointed at the same spill directory skips Algorithm 1
//!   and only pays the (cheap) load-and-revalidate path.
//!
//! Caching is privacy-neutral: a strategy depends only on the public
//! workload `W` (keyed by its content fingerprint) and public solver
//! options — never on data or ε — so reuse releases nothing.

use crate::engine::registry::MechanismKind;
use crate::mechanism::Mechanism;
use crate::persistence::{load_decomposition, save_decomposition};
use lrm_workload::{Fingerprint, Workload};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: workload content, mechanism kind, and the digest of the
/// options that kind reads.
pub(crate) type CacheKey = (Fingerprint, MechanismKind, u64);

/// A cached compiled strategy.
#[derive(Clone)]
pub(crate) struct CachedStrategy {
    pub mechanism: Arc<dyn Mechanism + Send + Sync>,
    /// The workload operator this strategy was compiled for. A memory hit
    /// is confirmed against it before being served: the 64-bit fingerprint
    /// in the key is non-cryptographic, and a collision here would
    /// silently answer with a strategy built for a different `W`. The
    /// row-streamed logical compare (`op_logical_eq`) costs O(m·n) time
    /// but only O(n) scratch — structured workloads are never densified
    /// for it.
    pub workload_op: Arc<dyn lrm_linalg::MatrixOp>,
    /// Decomposition rank `r` for decomposition-backed kinds.
    pub strategy_rank: Option<usize>,
    /// Closed-form expected average error at the engine's reference ε,
    /// computed once at insert so cache hits pay no error evaluation.
    pub expected_avg_error: f64,
}

/// Where a compile was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Full strategy search ran.
    Miss,
    /// Served from the in-memory map — no decomposition work at all.
    MemoryHit,
    /// Factors loaded from the spill directory and revalidated — no
    /// decomposition work, only I/O and a residual recompute.
    DiskHit,
}

/// Counters exposed by [`Engine::cache_stats`](super::Engine::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compiles served from memory.
    pub memory_hits: u64,
    /// Compiles served by loading spilled factors.
    pub disk_hits: u64,
    /// Compiles that ran the full strategy search.
    pub misses: u64,
    /// Strategies currently held in memory.
    pub entries: usize,
}

pub(crate) struct StrategyCache {
    entries: Mutex<HashMap<CacheKey, CachedStrategy>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    spill_dir: Option<PathBuf>,
}

impl StrategyCache {
    pub fn new(spill_dir: Option<PathBuf>) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            spill_dir,
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len(),
        }
    }

    /// Memory lookup. Counting is the caller's job (via [`record`]) so
    /// every outcome is tallied in exactly one place.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedStrategy> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Records which path a compile took.
    pub fn record(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::DiskHit => self.disk_hits.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::MemoryHit => self.memory_hits.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub fn insert(&self, key: CacheKey, strategy: CachedStrategy) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, strategy);
    }

    /// Drops every resident strategy; counters and the spill layer are
    /// untouched.
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
    }

    fn spill_path(&self, key: &CacheKey) -> Option<PathBuf> {
        let (fingerprint, kind, digest) = key;
        self.spill_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{fingerprint}-{digest:016x}.lrmd",
                kind.label().to_lowercase().replace(['γ', '+'], "x")
            ))
        })
    }

    /// Tries to serve a decomposition-backed compile from the spill
    /// directory. Unreadable, corrupt, or mismatched files are treated as
    /// misses — the subsequent compile overwrites them.
    pub fn try_disk_load(
        &self,
        key: &CacheKey,
        workload: &Workload,
    ) -> Option<crate::decomposition::WorkloadDecomposition> {
        let path = self.spill_path(key)?;
        if !path.exists() {
            return None;
        }
        load_decomposition(workload, &path).ok()
    }

    /// Best-effort spill of freshly computed factors; a full cache (or a
    /// read-only directory) must not fail the compile that produced them.
    pub fn spill(
        &self,
        key: &CacheKey,
        decomposition: &crate::decomposition::WorkloadDecomposition,
    ) {
        if let Some(path) = self.spill_path(key) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = save_decomposition(decomposition, &path);
        }
    }
}

impl std::fmt::Debug for StrategyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyCache")
            .field("stats", &self.stats())
            .field("spill_dir", &self.spill_dir)
            .finish()
    }
}
