//! The compiled-strategy cache and its similarity index.
//!
//! Strategy search is the expensive, data-independent step of every
//! mechanism here (Algorithm 1 takes minutes at the paper's full scale;
//! answering is microseconds), so the engine memoizes compiled strategies
//! by `(workload fingerprint, kind, options digest)`:
//!
//! * **Memory layer** — an `Arc`-shared map; a repeated compile of an
//!   already-seen workload is an O(1) map lookup with zero decomposition
//!   work.
//! * **Store layer (optional)** — decomposition-backed strategies persist
//!   their `(B, L)` factors through the versioned `LRMS` strategy store
//!   (see [`super::store`]), so a fresh process pointed at the same
//!   directory skips Algorithm 1 and only pays the (cheap)
//!   load-and-revalidate path.
//! * **Similarity index** — on an exact miss, a nearest cached
//!   decomposition over the same `(kind, options, structural class, n)`
//!   with compatible rank and a close coarse column profile seeds the ALM
//!   solver as a warm start. A similarity hit is **never served**: the
//!   solver still runs to the full convergence contract; only its
//!   starting point changes.
//!
//! Caching is privacy-neutral: a strategy depends only on the public
//! workload `W` (keyed by its content fingerprint) and public solver
//! options — never on data or ε — so reuse releases nothing. Warm
//! starting is equally neutral: the seed is public for the same reason,
//! and the seeded solve satisfies the same `Δ(B,L) ≤ 1` constraint.

use crate::decomposition::WorkloadDecomposition;
use crate::engine::registry::{MechanismKind, NoiseFlavor};
use crate::engine::store::{StoredHeader, StrategyStore};
use crate::mechanism::Mechanism;
use lrm_dp::SensitivityNorm;
use lrm_linalg::operator::profile_distance;
use lrm_opt::WarmStart;
use lrm_workload::{Fingerprint, Workload};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: workload content, mechanism kind, and the digest of the
/// options that kind reads.
pub(crate) type CacheKey = (Fingerprint, MechanismKind, u64);

/// Number of buckets in the coarse column profile the similarity index
/// compares — coarse enough that a nudged panel boundary barely moves it,
/// fine enough that disjoint workloads are far apart.
pub(crate) const PROFILE_BUCKETS: usize = 16;

/// L1 distance above which two profiles are "not similar" (the full range
/// is `[0, 2]`; near-duplicates measure well under 0.1).
const SIMILARITY_THRESHOLD: f64 = 0.5;

/// Bound on resident similarity entries; oldest admitted go first.
const SIM_CAPACITY: usize = 256;

/// A cached compiled strategy.
#[derive(Clone)]
pub(crate) struct CachedStrategy {
    pub mechanism: Arc<dyn Mechanism + Send + Sync>,
    /// The workload operator this strategy was compiled for. A memory hit
    /// is confirmed against it before being served: the 64-bit fingerprint
    /// in the key is non-cryptographic, and a collision here would
    /// silently answer with a strategy built for a different `W`. The
    /// row-streamed logical compare (`op_logical_eq`) costs O(m·n) time
    /// but only O(n) scratch — structured workloads are never densified
    /// for it.
    pub workload_op: Arc<dyn lrm_linalg::MatrixOp>,
    /// Decomposition rank `r` for decomposition-backed kinds.
    pub strategy_rank: Option<usize>,
    /// Outer ALM iterations of the compile that produced this strategy
    /// (`None` for non-iterative kinds and disk reloads).
    pub alm_iterations: Option<usize>,
    /// Closed-form expected average error at the engine's reference ε,
    /// computed once at insert so cache hits pay no error evaluation.
    pub expected_avg_error: f64,
}

/// Where a compile was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Full strategy search ran from the cold (Lemma 3) initializer.
    Miss,
    /// Full strategy search ran, seeded by a similar cached decomposition
    /// — same convergence contract, fewer iterations.
    WarmStart,
    /// Served from the in-memory map — no decomposition work at all.
    MemoryHit,
    /// Factors loaded from the strategy store and revalidated — no
    /// decomposition work, only I/O and a residual recompute.
    DiskHit,
}

/// Counters exposed by [`Engine::cache_stats`](super::Engine::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compiles served from memory.
    pub memory_hits: u64,
    /// Compiles served by loading stored factors.
    pub disk_hits: u64,
    /// Compiles that ran the full strategy search cold.
    pub misses: u64,
    /// Compiles that ran the full strategy search from a similarity seed.
    pub warm_hits: u64,
    /// Factor loads from the on-disk strategy store (exact reloads and
    /// disk-resident warm-start seeds).
    pub store_loads: u64,
    /// Store files evicted to stay under the capacity bound.
    pub evictions: u64,
    /// Strategies currently held in memory.
    pub entries: usize,
}

/// Where a similarity seed's factors live.
enum SeedSource {
    /// Still resident from a compile in this process.
    Memory(Arc<WorkloadDecomposition>),
    /// On disk; loaded lazily only when the entry wins a nearest-seed
    /// query. This is what makes a restarted process warm from a
    /// header-only scan.
    Disk(PathBuf),
}

/// One similarity-index entry: the public coordinates of a cached
/// decomposition, plus a handle to its factors.
struct SimEntry {
    kind: MechanismKind,
    digest: u64,
    class: &'static str,
    n: usize,
    rank: usize,
    fingerprint: u64,
    cold_iterations: usize,
    /// Sensitivity norm the seed's factors were optimized under. Seeds
    /// cross flavors freely (the solver re-projects onto the target
    /// feasible set), but provenance records when they did.
    norm: SensitivityNorm,
    profile: Vec<f64>,
    source: SeedSource,
}

/// What the similarity index reports about a winning seed — surfaced as
/// warm-start provenance in [`CompileMeta`](super::CompileMeta).
#[derive(Debug, Clone)]
pub(crate) struct SeedInfo {
    pub fingerprint: u64,
    pub distance: f64,
    pub cold_iterations: usize,
    /// The seed came from a different options digest (e.g. a different γ,
    /// or the other noise flavor). Exact-digest seeds always win over
    /// cross-digest ones at any distance.
    pub cross_digest: bool,
    /// The norm the seed was optimized under — `!=` the compile's own
    /// norm exactly when this is a cross-flavor warm start.
    pub seed_norm: SensitivityNorm,
}

pub(crate) struct StrategyCache {
    entries: Mutex<HashMap<CacheKey, CachedStrategy>>,
    sim: Mutex<Vec<SimEntry>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    warm_hits: AtomicU64,
    store_loads: AtomicU64,
    evictions: AtomicU64,
    store: Option<StrategyStore>,
}

impl StrategyCache {
    /// Opens the cache; with a store directory, a header-only scan of the
    /// surviving `LRMS` files seeds the similarity index so a restarted
    /// process warms from its predecessor's work without loading a single
    /// factor matrix up front.
    pub fn new(store_dir: Option<PathBuf>, store_capacity: usize) -> Self {
        let store = store_dir.map(|dir| StrategyStore::open(dir, store_capacity));
        let mut sim = Vec::new();
        if let Some(store) = &store {
            for (header, path) in store.scan() {
                sim.push(SimEntry {
                    kind: header.kind,
                    digest: header.digest,
                    class: intern_class(&header.class),
                    n: header.n,
                    rank: header.rank,
                    fingerprint: header.fingerprint,
                    cold_iterations: header.cold_iterations,
                    norm: header.flavor.norm(),
                    profile: header.profile,
                    source: SeedSource::Disk(path),
                });
            }
        }
        Self {
            entries: Mutex::new(HashMap::new()),
            sim: Mutex::new(sim),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            store_loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            store,
        }
    }

    /// The store directory strategies spill to, if one was configured.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.dir())
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            store_loads: self.store_loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len(),
        }
    }

    /// Memory lookup. Counting is the caller's job (via [`record`]) so
    /// every outcome is tallied in exactly one place.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedStrategy> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Records which path a compile took.
    pub fn record(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::WarmStart => self.warm_hits.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::DiskHit => self.disk_hits.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::MemoryHit => self.memory_hits.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub fn insert(&self, key: CacheKey, strategy: CachedStrategy) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, strategy);
    }

    /// Drops every strategy resident in memory — the compiled map and the
    /// memory-backed similarity entries. Disk-backed similarity entries
    /// (headers pointing at store files) survive: they hold no factors.
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
        self.sim
            .lock()
            .expect("sim lock")
            .retain(|e| matches!(e.source, SeedSource::Disk(_)));
    }

    /// Tries to serve a decomposition-backed compile from the strategy
    /// store. Unreadable, corrupt, version-mismatched, or invalid files
    /// are treated as misses — the subsequent compile overwrites them.
    /// On success returns the decomposition and the stored cold iteration
    /// count.
    pub fn try_disk_load(
        &self,
        key: &CacheKey,
        workload: &Workload,
        flavor: NoiseFlavor,
    ) -> Option<(WorkloadDecomposition, StoredHeader)> {
        let store = self.store.as_ref()?;
        let path = store.path_for(key.0.as_u64(), key.1, key.2);
        if !path.exists() {
            return None;
        }
        let (dec, header) = store.load_exact(&path, workload, flavor).ok()?;
        self.store_loads.fetch_add(1, Ordering::Relaxed);
        Some((dec, header))
    }

    /// Best-effort persist of freshly computed factors plus their public
    /// coordinates; a full disk (or read-only directory) must not fail
    /// the compile that produced them.
    pub fn persist(
        &self,
        key: &CacheKey,
        workload: &Workload,
        profile: &[f64],
        decomposition: &WorkloadDecomposition,
        flavor: NoiseFlavor,
    ) {
        if let Some(store) = &self.store {
            let header = StoredHeader {
                fingerprint: key.0.as_u64(),
                digest: key.2,
                kind: key.1,
                flavor,
                class: workload.op().structure_class().to_string(),
                m: workload.num_queries(),
                n: workload.domain_size(),
                rank: decomposition.rank(),
                cold_iterations: decomposition.stats().outer_iterations,
                profile: profile.to_vec(),
            };
            let evicted = store.save(&header, decomposition);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                // Evicted files may back similarity entries; drop the
                // dangling ones so a nearest-seed query never chases a
                // deleted path.
                self.sim
                    .lock()
                    .expect("sim lock")
                    .retain(|e| match &e.source {
                        SeedSource::Disk(p) => p.exists(),
                        SeedSource::Memory(_) => true,
                    });
            }
        }
    }

    /// Admits a decomposition into the similarity index (replacing any
    /// previous entry for the same key coordinates).
    pub fn admit_seed(
        &self,
        key: &CacheKey,
        workload: &Workload,
        profile: Vec<f64>,
        cold_iterations: usize,
        decomposition: Arc<WorkloadDecomposition>,
    ) {
        let mut sim = self.sim.lock().expect("sim lock");
        let (fingerprint, kind, digest) = (key.0.as_u64(), key.1, key.2);
        sim.retain(|e| (e.fingerprint, e.kind, e.digest) != (fingerprint, kind, digest));
        if sim.len() >= SIM_CAPACITY {
            sim.remove(0);
        }
        sim.push(SimEntry {
            kind,
            digest,
            class: workload.op().structure_class(),
            n: workload.domain_size(),
            rank: decomposition.rank(),
            fingerprint,
            cold_iterations,
            norm: decomposition.norm(),
            profile,
            source: SeedSource::Memory(decomposition),
        });
    }

    /// Nearest cached decomposition usable as a warm-start seed for the
    /// given compile coordinates, or `None` when nothing is close enough.
    /// Candidates must match `(kind, structural class, n)` exactly, sit
    /// within a factor of two of the target rank (when the target is
    /// known), and measure under the profile-distance threshold.
    /// Exact-digest candidates always beat cross-digest ones (a different
    /// γ, or the other noise flavor — the cross-flavor case is what lets
    /// an L1 neighbor *seed*, never serve, an L2 compile); within each
    /// group the closest wins. The compile's own `(fingerprint, digest)`
    /// entry is excluded — that would be an exact hit, not a seed.
    /// Disk-backed winners are loaded here (and dropped from the index if
    /// their file has rotted).
    pub fn nearest_seed(
        &self,
        kind: MechanismKind,
        digest: u64,
        workload: &Workload,
        target_rank: Option<usize>,
        profile: &[f64],
    ) -> Option<(WarmStart, SeedInfo)> {
        let class = workload.op().structure_class();
        let n = workload.domain_size();
        let fingerprint = workload.fingerprint().as_u64();
        loop {
            let (info, source_path) = {
                let sim = self.sim.lock().expect("sim lock");
                let mut best: Option<(usize, (bool, f64))> = None;
                for (i, e) in sim.iter().enumerate() {
                    if e.kind != kind
                        || e.class != class
                        || e.n != n
                        || (e.fingerprint == fingerprint && e.digest == digest)
                    {
                        continue;
                    }
                    if let Some(r) = target_rank {
                        if e.rank < r.div_ceil(2) || e.rank > 2 * r {
                            continue;
                        }
                    }
                    let d = profile_distance(&e.profile, profile);
                    if d >= SIMILARITY_THRESHOLD {
                        continue;
                    }
                    let rank_key = (e.digest != digest, d);
                    if best.is_none_or(|(_, bk)| rank_key < bk) {
                        best = Some((i, rank_key));
                    }
                }
                let (i, (cross_digest, d)) = best?;
                let e = &sim[i];
                let info = SeedInfo {
                    fingerprint: e.fingerprint,
                    distance: d,
                    cold_iterations: e.cold_iterations,
                    cross_digest,
                    seed_norm: e.norm,
                };
                match &e.source {
                    SeedSource::Memory(dec) => {
                        return Some((WarmStart::new(dec.b().clone(), dec.l().clone()), info));
                    }
                    SeedSource::Disk(path) => (info, path.clone()),
                }
            };
            match self.store.as_ref()?.load_seed(&source_path) {
                Ok((b, l)) if b.cols() == l.rows() && l.cols() == n => {
                    self.store_loads.fetch_add(1, Ordering::Relaxed);
                    return Some((WarmStart::new(b, l), info));
                }
                _ => {
                    // Rotten entry: drop it and rescan for the next best.
                    self.sim
                        .lock()
                        .expect("sim lock")
                        .retain(|e| !matches!(&e.source, SeedSource::Disk(p) if p == &source_path));
                }
            }
        }
    }
}

/// Maps a stored class string back to the `&'static str` tags the live
/// operators report, so disk- and memory-sourced entries compare equal.
fn intern_class(class: &str) -> &'static str {
    match class {
        "sparse" => "sparse",
        "intervals" => "intervals",
        _ => "dense",
    }
}

impl std::fmt::Debug for StrategyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyCache")
            .field("stats", &self.stats())
            .field("sim_entries", &self.sim.lock().expect("sim lock").len())
            .field("store", &self.store)
            .finish()
    }
}
