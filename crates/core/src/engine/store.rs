//! The cross-restart strategy store (`LRMS` format).
//!
//! The engine's original disk layer was a bare spill of `(B, L)` factors.
//! The store promotes it into a first-class artifact: every file carries a
//! versioned header with enough public metadata — workload fingerprint,
//! mechanism kind, options digest, shapes, rank, structural class, coarse
//! column profile, and the iteration count of the compile that produced it
//! — that a fresh process can rebuild the *similarity index* from a
//! header-only scan, without deserializing a single factor matrix. Exact
//! hits then lazily load and revalidate factors; near misses lazily load
//! factors as warm-start seeds.
//!
//! Trust model (same as the `LRMD` persistence format): nothing loaded
//! from disk is served without revalidation. Shapes must fit the live
//! workload, the sensitivity constraint `Δ(L) ≤ 1` is re-checked, and the
//! residual is always recomputed against the live workload — a stale or
//! tampered file becomes a visible error or a huge residual, never a
//! silent wrong answer. Version-mismatched files are rejected with a
//! typed error and simply recompiled over.
//!
//! The store is bounded: beyond `capacity` files, the least recently
//! written entries (by mtime) are evicted at save time.

use crate::decomposition::WorkloadDecomposition;
use crate::engine::registry::{MechanismKind, NoiseFlavor};
use lrm_dp::{sensitivity, SensitivityNorm};
use lrm_linalg::Matrix;
use lrm_workload::Workload;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"LRMS";
/// v1: pre-flavor files (everything is pure ε-DP / Laplace / L1).
/// v2: one noise-flavor byte after the mechanism kind tag.
///
/// Both versions load; v1 entries are read as [`NoiseFlavor::PureDp`] —
/// exactly what every v1 compile was — so a store directory written by an
/// earlier release keeps serving pure requests and is never offered to an
/// approximate-DP request.
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

/// Why a store file could not be used. Internal: the engine maps every
/// variant to "treat as miss and recompile", but tests distinguish them.
#[derive(Debug)]
pub(crate) enum StoreError {
    /// I/O or truncation.
    Io(std::io::Error),
    /// Not an `LRMS` file at all.
    BadMagic,
    /// An `LRMS` file from an incompatible format revision.
    VersionMismatch { found: u32 },
    /// Header or factors are inconsistent with the live workload.
    Invalid(String),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not an LRMS strategy file (bad magic)"),
            StoreError::VersionMismatch { found } => {
                write!(
                    f,
                    "unsupported LRMS version {found} (expected {MIN_VERSION}..={VERSION})"
                )
            }
            StoreError::Invalid(why) => write!(f, "invalid LRMS entry: {why}"),
        }
    }
}

/// The header of one stored strategy — everything the similarity index
/// needs, with the factor matrices left on disk.
#[derive(Debug, Clone)]
pub(crate) struct StoredHeader {
    pub fingerprint: u64,
    pub digest: u64,
    pub kind: MechanismKind,
    /// Noise model the stored strategy was calibrated for. v1 files have
    /// no flavor byte and always read back as [`NoiseFlavor::PureDp`].
    pub flavor: NoiseFlavor,
    pub class: String,
    pub m: usize,
    pub n: usize,
    pub rank: usize,
    /// Outer ALM iterations of the compile that produced this entry — the
    /// baseline a warm start's savings are quoted against.
    pub cold_iterations: usize,
    pub profile: Vec<f64>,
}

/// A bounded directory of `LRMS` files addressed by
/// `(fingerprint, kind, options digest)`.
#[derive(Debug)]
pub(crate) struct StrategyStore {
    dir: PathBuf,
    capacity: usize,
}

impl StrategyStore {
    pub fn open(dir: PathBuf, capacity: usize) -> Self {
        Self { dir, capacity }
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn path_for(&self, fingerprint: u64, kind: MechanismKind, digest: u64) -> PathBuf {
        self.dir.join(format!(
            "{fingerprint:016x}-{:02x}-{digest:016x}.lrms",
            kind.store_tag()
        ))
    }

    /// Header-only scan of every readable `LRMS` file — what a restarted
    /// engine rebuilds its similarity index from. Unreadable, corrupt, or
    /// version-mismatched files are skipped, not errors: the store is a
    /// cache, and the worst case is a cold compile.
    pub fn scan(&self) -> Vec<(StoredHeader, PathBuf)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("lrms") {
                continue;
            }
            if let Ok(header) = read_header_only(&path) {
                found.push((header, path));
            }
        }
        found
    }

    /// Loads and revalidates the factors behind `path` for serving:
    /// header must match the live workload's shape **and the requested
    /// noise flavor**, the flavor's own sensitivity constraint (`Δ₁(L) ≤ 1`
    /// pure, `Δ₂(L) ≤ 1` approximate) must hold, and the residual is
    /// recomputed fresh. The flavor check is what makes cross-calibration
    /// serving impossible: a pre-PR-8 (v1) file is always pure and is a
    /// typed error for an approximate request.
    pub fn load_exact(
        &self,
        path: &Path,
        workload: &Workload,
        flavor: NoiseFlavor,
    ) -> Result<(WorkloadDecomposition, StoredHeader), StoreError> {
        let file = File::open(path)?;
        let mut input = BufReader::new(file);
        let header = read_header(&mut input)?;
        if header.flavor != flavor {
            return Err(StoreError::Invalid(format!(
                "stored strategy is {}-calibrated but the request is {}: \
                 calibrations never transfer across flavors",
                header.flavor, flavor
            )));
        }
        let b = Matrix::read_binary(&mut input)
            .map_err(|e| StoreError::Invalid(format!("bad B block: {e}")))?;
        let l = Matrix::read_binary(&mut input)
            .map_err(|e| StoreError::Invalid(format!("bad L block: {e}")))?;
        let (m, n) = (workload.num_queries(), workload.domain_size());
        if b.rows() != m || l.cols() != n || b.cols() != l.rows() || l.rows() != header.rank {
            return Err(StoreError::Invalid(format!(
                "stored factors B {}x{}, L {}x{} do not fit a {m}x{n} workload",
                b.rows(),
                b.cols(),
                l.rows(),
                l.cols()
            )));
        }
        let norm = flavor.norm();
        let delta = match norm {
            SensitivityNorm::L1 => l.max_col_abs_sum(),
            SensitivityNorm::L2 => sensitivity::l2_sensitivity(&l),
        };
        if delta > 1.0 + 1e-6 {
            return Err(StoreError::Invalid(format!(
                "stored L violates the {} sensitivity constraint: Δ = {delta}",
                norm.token()
            )));
        }
        let residual = crate::decomposition::residual_of(workload.op().as_ref(), &b, &l);
        Ok((
            WorkloadDecomposition::from_parts_with_norm(b, l, residual, norm),
            header,
        ))
    }

    /// Loads the factors behind `path` as a warm-start *seed*: only basic
    /// well-formedness is checked here, because a seed is never served —
    /// the solver re-projects, refits, and re-converges under the full
    /// contract regardless of what the seed contains.
    pub fn load_seed(&self, path: &Path) -> Result<(Matrix, Matrix), StoreError> {
        let file = File::open(path)?;
        let mut input = BufReader::new(file);
        let _header = read_header(&mut input)?;
        let b = Matrix::read_binary(&mut input)
            .map_err(|e| StoreError::Invalid(format!("bad B block: {e}")))?;
        let l = Matrix::read_binary(&mut input)
            .map_err(|e| StoreError::Invalid(format!("bad L block: {e}")))?;
        if b.cols() != l.rows() {
            return Err(StoreError::Invalid(
                "stored factors do not share an inner dimension".into(),
            ));
        }
        if b.as_slice().iter().any(|x| !x.is_finite())
            || l.as_slice().iter().any(|x| !x.is_finite())
        {
            return Err(StoreError::Invalid("stored factors are not finite".into()));
        }
        Ok((b, l))
    }

    /// Best-effort save. Returns the number of old entries evicted to stay
    /// under capacity; a full disk or read-only directory must not fail
    /// the compile that produced the factors.
    pub fn save(&self, header: &StoredHeader, decomposition: &WorkloadDecomposition) -> u64 {
        let path = self.path_for(header.fingerprint, header.kind, header.digest);
        let _ = std::fs::create_dir_all(&self.dir);
        let write = (|| -> std::io::Result<()> {
            let file = File::create(&path)?;
            let mut out = BufWriter::new(file);
            write_header(&mut out, header)?;
            decomposition.b().write_binary(&mut out)?;
            decomposition.l().write_binary(&mut out)?;
            out.flush()
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&path);
            return 0;
        }
        self.evict_beyond_capacity(&path)
    }

    /// Removes oldest-mtime entries until at most `capacity` remain,
    /// never evicting `just_written`. Returns how many were removed.
    fn evict_beyond_capacity(&self, just_written: &Path) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("lrms") || path == just_written
                {
                    return None;
                }
                let mtime = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((mtime, path))
            })
            .collect();
        // +1 for the file just written, which always survives.
        if files.len() < self.capacity {
            return 0;
        }
        files.sort();
        let excess = files.len() + 1 - self.capacity;
        let mut evicted = 0;
        for (_, path) in files.into_iter().take(excess) {
            if std::fs::remove_file(path).is_ok() {
                evicted += 1;
            }
        }
        evicted
    }
}

fn write_header(out: &mut impl Write, h: &StoredHeader) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&h.fingerprint.to_le_bytes())?;
    out.write_all(&h.digest.to_le_bytes())?;
    out.write_all(&[h.kind.store_tag()])?;
    out.write_all(&[h.flavor.store_tag()])?;
    let class = h.class.as_bytes();
    out.write_all(&[u8::try_from(class.len()).unwrap_or(u8::MAX)])?;
    out.write_all(&class[..class.len().min(u8::MAX as usize)])?;
    for dim in [h.m, h.n, h.rank, h.cold_iterations] {
        out.write_all(&(dim as u64).to_le_bytes())?;
    }
    out.write_all(&(h.profile.len() as u16).to_le_bytes())?;
    for &p in &h.profile {
        out.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

fn read_header(input: &mut impl Read) -> Result<StoredHeader, StoreError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut word4 = [0u8; 4];
    input.read_exact(&mut word4)?;
    let version = u32::from_le_bytes(word4);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(StoreError::VersionMismatch { found: version });
    }
    let mut word8 = [0u8; 8];
    input.read_exact(&mut word8)?;
    let fingerprint = u64::from_le_bytes(word8);
    input.read_exact(&mut word8)?;
    let digest = u64::from_le_bytes(word8);
    let mut byte = [0u8; 1];
    input.read_exact(&mut byte)?;
    let kind = MechanismKind::from_store_tag(byte[0])
        .ok_or_else(|| StoreError::Invalid(format!("unknown mechanism tag {}", byte[0])))?;
    let flavor = if version >= 2 {
        input.read_exact(&mut byte)?;
        NoiseFlavor::from_store_tag(byte[0])
            .ok_or_else(|| StoreError::Invalid(format!("unknown flavor tag {}", byte[0])))?
    } else {
        // Every v1 compile was Laplace-calibrated.
        NoiseFlavor::PureDp
    };
    input.read_exact(&mut byte)?;
    let mut class_bytes = vec![0u8; byte[0] as usize];
    input.read_exact(&mut class_bytes)?;
    let class = String::from_utf8(class_bytes)
        .map_err(|_| StoreError::Invalid("class tag is not UTF-8".into()))?;
    let mut dims = [0usize; 4];
    for dim in &mut dims {
        input.read_exact(&mut word8)?;
        *dim = u64::from_le_bytes(word8) as usize;
    }
    let [m, n, rank, cold_iterations] = dims;
    let mut word2 = [0u8; 2];
    input.read_exact(&mut word2)?;
    let profile_len = u16::from_le_bytes(word2) as usize;
    if profile_len > 4096 {
        return Err(StoreError::Invalid(format!(
            "implausible profile length {profile_len}"
        )));
    }
    let mut profile = Vec::with_capacity(profile_len);
    for _ in 0..profile_len {
        input.read_exact(&mut word8)?;
        profile.push(f64::from_le_bytes(word8));
    }
    if profile.iter().any(|p| !p.is_finite()) {
        return Err(StoreError::Invalid("profile is not finite".into()));
    }
    Ok(StoredHeader {
        fingerprint,
        digest,
        kind,
        flavor,
        class,
        m,
        n,
        rank,
        cold_iterations,
        profile,
    })
}

fn read_header_only(path: &Path) -> Result<StoredHeader, StoreError> {
    let file = File::open(path)?;
    let mut input = BufReader::new(file);
    read_header(&mut input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::{DecompositionConfig, WorkloadDecomposition};
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lrm_store_{name}_{}", std::process::id()))
    }

    fn sample() -> (Workload, WorkloadDecomposition, StoredHeader) {
        let w = WRange
            .generate(6, 12, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let d = WorkloadDecomposition::compute(&w, &DecompositionConfig::default()).unwrap();
        let header = StoredHeader {
            fingerprint: w.fingerprint().as_u64(),
            digest: 0xABCD,
            kind: MechanismKind::Lrm,
            flavor: NoiseFlavor::PureDp,
            class: "dense".into(),
            m: 6,
            n: 12,
            rank: d.rank(),
            cold_iterations: d.stats().outer_iterations,
            profile: vec![0.25, 0.25, 0.25, 0.25],
        };
        (w, d, header)
    }

    /// Byte-for-byte writer for the v1 (pre-flavor) header layout, kept
    /// only so the migration test can fabricate a PR-7-era store file.
    fn write_v1_file(path: &Path, h: &StoredHeader, d: &WorkloadDecomposition) {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&h.fingerprint.to_le_bytes());
        out.extend_from_slice(&h.digest.to_le_bytes());
        out.push(h.kind.store_tag());
        let class = h.class.as_bytes();
        out.push(u8::try_from(class.len()).unwrap());
        out.extend_from_slice(class);
        for dim in [h.m, h.n, h.rank, h.cold_iterations] {
            out.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        out.extend_from_slice(&(h.profile.len() as u16).to_le_bytes());
        for &p in &h.profile {
            out.extend_from_slice(&p.to_le_bytes());
        }
        d.b().write_binary(&mut out).unwrap();
        d.l().write_binary(&mut out).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn header_round_trips_through_scan() {
        let dir = tmp("scan");
        let store = StrategyStore::open(dir.clone(), 16);
        let (_, d, header) = sample();
        assert_eq!(store.save(&header, &d), 0);

        let scanned = store.scan();
        assert_eq!(scanned.len(), 1);
        let (h, path) = &scanned[0];
        assert_eq!(h.fingerprint, header.fingerprint);
        assert_eq!(h.digest, header.digest);
        assert_eq!(h.kind, MechanismKind::Lrm);
        assert_eq!(h.class, "dense");
        assert_eq!((h.m, h.n, h.rank), (header.m, header.n, header.rank));
        assert_eq!(h.cold_iterations, header.cold_iterations);
        assert_eq!(h.profile, header.profile);
        assert_eq!(
            path,
            &store.path_for(header.fingerprint, header.kind, header.digest)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn exact_load_revalidates_and_version_mismatch_is_typed() {
        let dir = tmp("reload");
        let store = StrategyStore::open(dir.clone(), 16);
        let (w, d, header) = sample();
        store.save(&header, &d);
        let path = store.path_for(header.fingerprint, header.kind, header.digest);

        let (loaded, h) = store.load_exact(&path, &w, NoiseFlavor::PureDp).unwrap();
        assert_eq!(loaded.rank(), d.rank());
        assert_eq!(h.cold_iterations, header.cold_iterations);
        assert!((loaded.stats().residual - d.stats().residual).abs() < 1e-9);

        // Bump the on-disk version: the rejection is typed, and the scan
        // skips the file instead of erroring.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        match store.load_exact(&path, &w, NoiseFlavor::PureDp) {
            Err(StoreError::VersionMismatch { found: 99 }) => {}
            other => panic!("expected a version mismatch, got {other:?}"),
        }
        assert!(store.scan().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v1_store_files_migrate_as_pure_and_never_serve_approx() {
        let dir = tmp("migrate_v1");
        let store = StrategyStore::open(dir.clone(), 16);
        let (w, d, header) = sample();
        let path = store.path_for(header.fingerprint, header.kind, header.digest);
        write_v1_file(&path, &header, &d);

        // The header-only scan sees the v1 entry as a pure strategy.
        let scanned = store.scan();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].0.flavor, NoiseFlavor::PureDp);
        assert_eq!(scanned[0].0.fingerprint, header.fingerprint);

        // It keeps serving pure requests…
        let (loaded, h) = store.load_exact(&path, &w, NoiseFlavor::PureDp).unwrap();
        assert_eq!(h.flavor, NoiseFlavor::PureDp);
        assert_eq!(loaded.norm(), SensitivityNorm::L1);

        // …and is a typed rejection for an approximate request.
        match store.load_exact(&path, &w, NoiseFlavor::ApproxDp) {
            Err(StoreError::Invalid(why)) => {
                assert!(why.contains("calibrations never transfer"), "{why}")
            }
            other => panic!("expected a flavor rejection, got {other:?}"),
        }
        // Seeds are flavor-agnostic: the factors are still usable as a
        // warm start for an L2 compile.
        assert!(store.load_seed(&path).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn approx_entries_round_trip_with_their_flavor() {
        let dir = tmp("approx_rt");
        let store = StrategyStore::open(dir.clone(), 16);
        let w = WRange
            .generate(6, 12, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let d = WorkloadDecomposition::compute_flavored(
            &w,
            &DecompositionConfig::default(),
            SensitivityNorm::L2,
        )
        .unwrap();
        let header = StoredHeader {
            fingerprint: w.fingerprint().as_u64(),
            digest: 0xBEEF,
            kind: MechanismKind::Lrm,
            flavor: NoiseFlavor::ApproxDp,
            class: "dense".into(),
            m: 6,
            n: 12,
            rank: d.rank(),
            cold_iterations: d.stats().outer_iterations,
            profile: vec![0.25; 4],
        };
        store.save(&header, &d);
        let path = store.path_for(header.fingerprint, header.kind, header.digest);

        let scanned = store.scan();
        assert_eq!(scanned[0].0.flavor, NoiseFlavor::ApproxDp);

        let (loaded, h) = store.load_exact(&path, &w, NoiseFlavor::ApproxDp).unwrap();
        assert_eq!(h.flavor, NoiseFlavor::ApproxDp);
        assert_eq!(loaded.norm(), SensitivityNorm::L2);
        assert!(loaded.sensitivity() <= 1.0 + 1e-6);

        // And the mirror-image rejection: an L2 strategy never serves pure.
        assert!(store.load_exact(&path, &w, NoiseFlavor::PureDp).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn eviction_keeps_the_newest_entries() {
        let dir = tmp("evict");
        let store = StrategyStore::open(dir.clone(), 2);
        let (_, d, header) = sample();
        let mut evicted_total = 0;
        for i in 0..4u64 {
            let h = StoredHeader {
                fingerprint: i,
                ..header.clone()
            };
            // Distinct mtimes so the LRU order is unambiguous.
            std::thread::sleep(std::time::Duration::from_millis(20));
            evicted_total += store.save(&h, &d);
        }
        assert_eq!(evicted_total, 2);
        let left: Vec<u64> = store.scan().iter().map(|(h, _)| h.fingerprint).collect();
        assert_eq!(left.len(), 2);
        assert!(left.contains(&3), "newest entry must survive, got {left:?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn seed_load_checks_only_well_formedness() {
        let dir = tmp("seed");
        let store = StrategyStore::open(dir.clone(), 16);
        let (_, d, header) = sample();
        store.save(&header, &d);
        let path = store.path_for(header.fingerprint, header.kind, header.digest);
        let (b, l) = store.load_seed(&path).unwrap();
        assert_eq!(b.cols(), l.rows());
        assert_eq!(l.cols(), 12);
        let _ = std::fs::remove_dir_all(dir);
    }
}
