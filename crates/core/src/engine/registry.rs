//! The mechanism registry: one enum naming every strategy the engine can
//! compile, with a single dispatch point replacing the per-type `compile`
//! constructors at the API surface.

use crate::baselines::{
    GaussianNoiseOnData, HierarchicalMechanism, MatrixMechanism, MatrixMechanismConfig,
    NoiseOnData, NoiseOnResults, WaveletMechanism,
};
use crate::decomposition::{DecompositionConfig, WorkloadDecomposition};
use crate::error::CoreError;
use crate::extensions::CompensatedLowRankMechanism;
use crate::lrm::LowRankMechanism;
use crate::mechanism::Mechanism;
use lrm_dp::SensitivityNorm;
use lrm_workload::Workload;
use std::fmt;
use std::sync::Arc;

/// The noise model a strategy is calibrated for.
///
/// The flavor decides the sensitivity norm the decomposition constrains
/// (`Δ₁` vs `Δ₂`), the noise distribution of every release (Laplace vs
/// Gaussian), and the privacy guarantee a session debits (pure ε vs
/// (ε, δ)). It is part of the strategy-cache key and the on-disk store
/// header: an L1-optimized strategy is **never** served for an L2 request
/// or vice versa — the calibrations do not transfer, only the warm-start
/// seeds do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoiseFlavor {
    /// Pure ε-DP: Laplace noise against L1 sensitivity.
    #[default]
    PureDp,
    /// Approximate (ε, δ)-DP: Gaussian noise against L2 sensitivity,
    /// calibrated by the analytic Gaussian mechanism.
    ApproxDp,
}

impl NoiseFlavor {
    /// The sensitivity norm this flavor's decomposition constrains.
    pub fn norm(self) -> SensitivityNorm {
        match self {
            NoiseFlavor::PureDp => SensitivityNorm::L1,
            NoiseFlavor::ApproxDp => SensitivityNorm::L2,
        }
    }

    /// Short lowercase token for digests, filenames, and metrics labels.
    pub fn token(self) -> &'static str {
        match self {
            NoiseFlavor::PureDp => "pure",
            NoiseFlavor::ApproxDp => "approx",
        }
    }

    /// Stable one-byte tag for the strategy-store file format (v2+).
    pub(crate) fn store_tag(self) -> u8 {
        match self {
            NoiseFlavor::PureDp => 0,
            NoiseFlavor::ApproxDp => 1,
        }
    }

    /// Inverse of [`NoiseFlavor::store_tag`].
    pub(crate) fn from_store_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(NoiseFlavor::PureDp),
            1 => Some(NoiseFlavor::ApproxDp),
            _ => None,
        }
    }
}

impl fmt::Display for NoiseFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Every mechanism the [`Engine`](super::Engine) can compile.
///
/// The registry is the runtime counterpart of the paper's evaluation
/// legend: one name per strategy, compiled through one dispatch
/// ([`Engine::compile`](super::Engine::compile)) instead of per-type
/// constructors.
///
/// Two variants share an implementation: in this codebase the paper's "LM"
/// baseline is noise-on-data (Eq. 4), so [`MechanismKind::Laplace`] (the
/// figure-legend name) and [`MechanismKind::Nod`] (the equation name)
/// compile the same mechanism under different labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// The Low-Rank Mechanism (Eq. 6) with the configured decomposition.
    Lrm,
    /// LRM under the relaxed program (Formula 8) with the larger
    /// [`CompileOptions::relaxed_gamma`] tolerance — faster to compile,
    /// with a data-dependent structural residual.
    LrmRelaxed,
    /// The classic Laplace baseline the figures plot as "LM".
    Laplace,
    /// Noise on data (Eq. 4) — identical to [`MechanismKind::Laplace`],
    /// labelled by its equation name.
    Nod,
    /// Noise on results (Eq. 5).
    Nor,
    /// The Matrix Mechanism (Appendix B). `O(n³)` per solver iteration —
    /// keep the domain small.
    MatrixMechanism,
    /// The Wavelet Mechanism (Privelet, ref \[28\]).
    Wavelet,
    /// The Hierarchical Mechanism (Hay et al., ref \[15\]).
    Hierarchical,
    /// Residual-compensated LRM (the paper's §7 future-work direction):
    /// spends part of ε answering the decomposition residual, removing the
    /// relaxed program's structural bias.
    DataAware,
}

impl MechanismKind {
    /// Every registered kind, in legend order.
    pub const ALL: [MechanismKind; 9] = [
        MechanismKind::Lrm,
        MechanismKind::LrmRelaxed,
        MechanismKind::Laplace,
        MechanismKind::Nod,
        MechanismKind::Nor,
        MechanismKind::MatrixMechanism,
        MechanismKind::Wavelet,
        MechanismKind::Hierarchical,
        MechanismKind::DataAware,
    ];

    /// The candidate panel [`Engine::compile_best`](super::Engine::compile_best)
    /// defaults to: every mechanism that is cheap enough to compile at any
    /// domain size (the Matrix Mechanism's `O(n³)` solver is excluded, as
    /// in the paper's Figs. 7–9).
    pub const STANDARD_PANEL: [MechanismKind; 5] = [
        MechanismKind::Laplace,
        MechanismKind::Nor,
        MechanismKind::Wavelet,
        MechanismKind::Hierarchical,
        MechanismKind::Lrm,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismKind::Lrm => "LRM",
            MechanismKind::LrmRelaxed => "LRM-γ",
            MechanismKind::Laplace => "LM",
            MechanismKind::Nod => "NOD",
            MechanismKind::Nor => "NOR",
            MechanismKind::MatrixMechanism => "MM",
            MechanismKind::Wavelet => "WM",
            MechanismKind::Hierarchical => "HM",
            MechanismKind::DataAware => "LRM+",
        }
    }

    /// Whether compiling this kind runs the (expensive, cacheable-to-disk)
    /// workload decomposition of Algorithm 1.
    pub fn is_decomposition_backed(&self) -> bool {
        matches!(
            self,
            MechanismKind::Lrm | MechanismKind::LrmRelaxed | MechanismKind::DataAware
        )
    }

    /// Whether this kind has an approximate-DP (Gaussian) calibration.
    ///
    /// The decomposition-backed LRM kinds re-run Algorithm 1 under the L2
    /// constraint; the noise-on-data kinds swap Laplace count noise for
    /// calibrated Gaussian count noise. The remaining baselines publish
    /// `T·η` for strategy matrices whose published error analysis is
    /// Laplace-specific, so they stay pure-only.
    pub fn supports_approx(&self) -> bool {
        matches!(
            self,
            MechanismKind::Lrm
                | MechanismKind::LrmRelaxed
                | MechanismKind::Laplace
                | MechanismKind::Nod
        )
    }

    /// Display label for a kind compiled under `flavor`. Pure labels match
    /// the paper's figure legends; approximate labels append a Gaussian
    /// marker so dashboards can tell the calibrations apart.
    pub fn label_for(&self, flavor: NoiseFlavor) -> &'static str {
        match (self, flavor) {
            (MechanismKind::Lrm, NoiseFlavor::ApproxDp) => "LRM-G",
            (MechanismKind::LrmRelaxed, NoiseFlavor::ApproxDp) => "LRM-γG",
            (MechanismKind::Laplace, NoiseFlavor::ApproxDp) => "GM",
            (MechanismKind::Nod, NoiseFlavor::ApproxDp) => "GNOD",
            _ => self.label(),
        }
    }

    /// Stable one-byte tag for the strategy-store file format. Values are
    /// part of the on-disk contract: never reuse a tag for a different
    /// kind.
    pub(crate) fn store_tag(self) -> u8 {
        match self {
            MechanismKind::Lrm => 1,
            MechanismKind::LrmRelaxed => 2,
            MechanismKind::Laplace => 3,
            MechanismKind::Nod => 4,
            MechanismKind::Nor => 5,
            MechanismKind::MatrixMechanism => 6,
            MechanismKind::Wavelet => 7,
            MechanismKind::Hierarchical => 8,
            MechanismKind::DataAware => 9,
        }
    }

    /// Inverse of [`MechanismKind::store_tag`].
    pub(crate) fn from_store_tag(tag: u8) -> Option<Self> {
        MechanismKind::ALL
            .into_iter()
            .find(|k| k.store_tag() == tag)
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-compile knobs consulted by [`Engine::compile`](super::Engine::compile).
///
/// Only the fields a kind actually reads take part in its cache key, so
/// e.g. a Wavelet strategy is reused regardless of the LRM solver budgets.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Algorithm 1 parameters for the decomposition-backed kinds.
    pub decomposition: DecompositionConfig,
    /// The γ tolerance [`MechanismKind::LrmRelaxed`] overrides
    /// `decomposition.gamma` with (the paper's Fig. 2 shows accuracy flat
    /// up to γ ≈ 10 while compile time drops).
    pub relaxed_gamma: f64,
    /// Appendix-B solver parameters for [`MechanismKind::MatrixMechanism`].
    pub matrix_mechanism: MatrixMechanismConfig,
    /// The noise model to calibrate for. Part of the cache key: pure and
    /// approximate strategies for the same workload never alias.
    pub flavor: NoiseFlavor,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            decomposition: DecompositionConfig::default(),
            relaxed_gamma: 1.0,
            matrix_mechanism: MatrixMechanismConfig::default(),
            flavor: NoiseFlavor::PureDp,
        }
    }
}

impl CompileOptions {
    /// Shorthand: default options with the given decomposition config.
    pub fn with_decomposition(decomposition: DecompositionConfig) -> Self {
        Self {
            decomposition,
            ..Self::default()
        }
    }

    /// Shorthand: default options under the given noise flavor.
    pub fn with_flavor(flavor: NoiseFlavor) -> Self {
        Self {
            flavor,
            ..Self::default()
        }
    }

    /// FNV-1a digest of the fields `kind` reads, for the strategy-cache
    /// key. Hashes the `Debug` rendering — exhaustive over fields by
    /// construction, and the cache only ever compares digests for
    /// equality.
    ///
    /// The flavor contributes a `"|approx"` suffix **only** when it is
    /// [`NoiseFlavor::ApproxDp`]: pure digests stay bit-identical to what
    /// earlier releases wrote, so every pre-flavor `.lrms` store file keeps
    /// its name and keeps hitting.
    pub(crate) fn digest(&self, kind: MechanismKind) -> u64 {
        let mut relevant = match kind {
            MechanismKind::Lrm => format!("lrm|{:?}", self.decomposition),
            MechanismKind::LrmRelaxed => {
                format!("lrmr|{:?}|γ={}", self.decomposition, self.relaxed_gamma)
            }
            MechanismKind::DataAware => format!("da|{:?}", self.decomposition),
            MechanismKind::MatrixMechanism => format!("mm|{:?}", self.matrix_mechanism),
            // Parameter-free compiles: any options produce the same strategy.
            MechanismKind::Laplace
            | MechanismKind::Nod
            | MechanismKind::Nor
            | MechanismKind::Wavelet
            | MechanismKind::Hierarchical => String::new(),
        };
        if self.flavor == NoiseFlavor::ApproxDp {
            relevant.push_str("|approx");
        }
        lrm_workload::workload::fnv1a_bytes(lrm_workload::workload::FNV_OFFSET, relevant.as_bytes())
    }

    /// The decomposition config a kind actually compiles with.
    pub(crate) fn decomposition_for(&self, kind: MechanismKind) -> DecompositionConfig {
        match kind {
            MechanismKind::LrmRelaxed => DecompositionConfig {
                gamma: self.relaxed_gamma,
                ..self.decomposition.clone()
            },
            _ => self.decomposition.clone(),
        }
    }
}

/// A freshly built strategy plus, for decomposition-backed kinds, the
/// factors worth spilling to disk.
pub(crate) struct Built {
    pub mechanism: Arc<dyn Mechanism + Send + Sync>,
    pub decomposition: Option<WorkloadDecomposition>,
}

/// Typed rejection for kinds with no Gaussian calibration.
pub(crate) fn check_flavor_supported(
    kind: MechanismKind,
    flavor: NoiseFlavor,
) -> Result<(), CoreError> {
    if flavor == NoiseFlavor::ApproxDp && !kind.supports_approx() {
        return Err(CoreError::InvalidArgument(format!(
            "{kind} has no approximate-DP (Gaussian) calibration; \
             supported kinds: LRM, LRM-γ, LM, NOD"
        )));
    }
    Ok(())
}

/// Compiles `kind` from scratch (no cache involvement).
pub(crate) fn build(
    kind: MechanismKind,
    workload: &Workload,
    options: &CompileOptions,
) -> Result<Built, CoreError> {
    check_flavor_supported(kind, options.flavor)?;
    let built = match kind {
        MechanismKind::Lrm | MechanismKind::LrmRelaxed => {
            let cfg = options.decomposition_for(kind);
            let mech = LowRankMechanism::compile_flavored(workload, &cfg, options.flavor.norm())?;
            let dec = mech.decomposition().clone();
            Built {
                mechanism: Arc::new(mech),
                decomposition: Some(dec),
            }
        }
        MechanismKind::DataAware => {
            let mech = CompensatedLowRankMechanism::compile(workload, &options.decomposition)?;
            let dec = mech.decomposition().clone();
            Built {
                mechanism: Arc::new(mech),
                decomposition: Some(dec),
            }
        }
        MechanismKind::Laplace | MechanismKind::Nod => Built {
            mechanism: match options.flavor {
                NoiseFlavor::PureDp => Arc::new(NoiseOnData::compile(workload)),
                NoiseFlavor::ApproxDp => Arc::new(GaussianNoiseOnData::compile(workload)),
            },
            decomposition: None,
        },
        MechanismKind::Nor => Built {
            mechanism: Arc::new(NoiseOnResults::compile(workload)),
            decomposition: None,
        },
        MechanismKind::MatrixMechanism => Built {
            mechanism: Arc::new(MatrixMechanism::compile(
                workload,
                &options.matrix_mechanism,
            )?),
            decomposition: None,
        },
        MechanismKind::Wavelet => Built {
            mechanism: Arc::new(WaveletMechanism::compile(workload)),
            decomposition: None,
        },
        MechanismKind::Hierarchical => Built {
            mechanism: Arc::new(HierarchicalMechanism::compile(workload)),
            decomposition: None,
        },
    };
    Ok(built)
}

/// Compiles a decomposition-backed `kind` seeded by a warm start from a
/// similar cached strategy, instead of the Lemma 3 cold initializer. The
/// convergence contract is identical to [`build`] — only the starting
/// point differs — so the result is a full-fledged strategy, never a
/// shortcut.
pub(crate) fn build_with_seed(
    kind: MechanismKind,
    workload: &Workload,
    options: &CompileOptions,
    seed: &lrm_opt::WarmStart,
) -> Result<Built, CoreError> {
    debug_assert!(kind.is_decomposition_backed());
    check_flavor_supported(kind, options.flavor)?;
    let cfg = options.decomposition_for(kind);
    let dec = WorkloadDecomposition::compute_with_init_flavored(
        workload,
        &cfg,
        options.flavor.norm(),
        Some(seed),
    )?;
    let mechanism = rebuild_from_decomposition(kind, dec.clone(), workload);
    Ok(Built {
        mechanism,
        decomposition: Some(dec),
    })
}

/// Rebuilds a decomposition-backed mechanism from factors loaded off disk.
pub(crate) fn rebuild_from_decomposition(
    kind: MechanismKind,
    decomposition: WorkloadDecomposition,
    workload: &Workload,
) -> Arc<dyn Mechanism + Send + Sync> {
    let (m, n) = (workload.num_queries(), workload.domain_size());
    match kind {
        MechanismKind::DataAware => Arc::new(CompensatedLowRankMechanism::from_decomposition(
            decomposition,
            m,
            n,
        )),
        _ => Arc::new(LowRankMechanism::from_decomposition(decomposition, m, n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_workload::generators::{WRange, WorkloadGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_are_unique_except_the_documented_lm_alias() {
        let labels: Vec<&str> = MechanismKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels must be distinct");
        assert_eq!(MechanismKind::Laplace.label(), "LM");
        assert_eq!(MechanismKind::Nod.label(), "NOD");
    }

    #[test]
    fn digest_separates_kinds_by_what_they_read() {
        let base = CompileOptions::default();
        let mut tweaked = CompileOptions::default();
        tweaked.decomposition.gamma = 0.5;
        // LRM cares about the decomposition config…
        assert_ne!(
            base.digest(MechanismKind::Lrm),
            tweaked.digest(MechanismKind::Lrm)
        );
        // …Wavelet does not.
        assert_eq!(
            base.digest(MechanismKind::Wavelet),
            tweaked.digest(MechanismKind::Wavelet)
        );
        // Relaxed γ only affects the relaxed kind.
        let relaxed = CompileOptions {
            relaxed_gamma: 5.0,
            ..CompileOptions::default()
        };
        assert_ne!(
            base.digest(MechanismKind::LrmRelaxed),
            relaxed.digest(MechanismKind::LrmRelaxed)
        );
        assert_eq!(
            base.digest(MechanismKind::Lrm),
            relaxed.digest(MechanismKind::Lrm)
        );
    }

    #[test]
    fn flavor_separates_digests_only_for_approx() {
        let pure = CompileOptions::default();
        let approx = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        for kind in MechanismKind::ALL {
            if kind.supports_approx() {
                assert_ne!(pure.digest(kind), approx.digest(kind), "{kind}");
            }
        }
        // Pure digests are what PR-7 stores were keyed by — unchanged.
        assert_eq!(
            pure.digest(MechanismKind::Lrm),
            CompileOptions::default().digest(MechanismKind::Lrm)
        );
    }

    #[test]
    fn approx_labels_and_support_matrix() {
        assert_eq!(MechanismKind::Lrm.label_for(NoiseFlavor::ApproxDp), "LRM-G");
        assert_eq!(
            MechanismKind::LrmRelaxed.label_for(NoiseFlavor::ApproxDp),
            "LRM-γG"
        );
        assert_eq!(
            MechanismKind::Laplace.label_for(NoiseFlavor::ApproxDp),
            "GM"
        );
        assert_eq!(MechanismKind::Nod.label_for(NoiseFlavor::ApproxDp), "GNOD");
        for kind in MechanismKind::ALL {
            assert_eq!(kind.label_for(NoiseFlavor::PureDp), kind.label(), "{kind}");
        }
        assert!(!MechanismKind::Wavelet.supports_approx());
        assert!(!MechanismKind::DataAware.supports_approx());
    }

    #[test]
    fn approx_kinds_build_gaussian_mechanisms() {
        let w = WRange
            .generate(6, 8, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let opts = CompileOptions::with_flavor(NoiseFlavor::ApproxDp);
        let budget = lrm_dp::Budget::approx(lrm_dp::Epsilon::new(1.0).unwrap(), 1e-6).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for kind in [
            MechanismKind::Lrm,
            MechanismKind::LrmRelaxed,
            MechanismKind::Laplace,
            MechanismKind::Nod,
        ] {
            let built = build(kind, &w, &opts).unwrap();
            let mut rng = lrm_dp::rng::derive_rng(8, 9);
            // Pure release rejected, budgeted release works.
            assert!(built
                .mechanism
                .answer(&x, lrm_dp::Epsilon::new(1.0).unwrap(), &mut rng)
                .is_err());
            let y = built.mechanism.answer_budget(&x, budget, &mut rng).unwrap();
            assert_eq!(y.len(), 6, "{kind}");
            let err = built.mechanism.expected_error_budget(budget, Some(&x));
            assert!(err.is_finite() && err > 0.0, "{kind}: {err}");
        }
        // Unsupported kinds are a typed error, not a silent pure fallback.
        assert!(build(MechanismKind::Wavelet, &w, &opts).is_err());
        assert!(build(MechanismKind::DataAware, &w, &opts).is_err());
    }

    #[test]
    fn every_kind_builds_and_answers() {
        let w = WRange
            .generate(6, 8, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let opts = CompileOptions::default();
        let eps = lrm_dp::Epsilon::new(1.0).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for kind in MechanismKind::ALL {
            let built = build(kind, &w, &opts).unwrap();
            assert_eq!(
                built.decomposition.is_some(),
                kind.is_decomposition_backed(),
                "{kind}"
            );
            let mut rng = lrm_dp::rng::derive_rng(3, 4);
            let y = built.mechanism.answer(&x, eps, &mut rng).unwrap();
            assert_eq!(y.len(), 6, "{kind}");
            assert!(
                built.mechanism.expected_error(eps, Some(&x)) > 0.0,
                "{kind}"
            );
        }
    }
}
