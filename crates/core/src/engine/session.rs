//! Budget-tracked answering sessions.

use crate::engine::CompiledMechanism;
use crate::error::CoreError;
use crate::mechanism::Mechanism;
use lrm_dp::{Budget, BudgetError, BudgetLedger, Epsilon};
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A serving session: one compiled strategy plus a [`BudgetLedger`]
/// enforcing sequential composition across releases.
///
/// Every [`answer`](Session::answer) debits its ε from the ledger *after*
/// the release succeeds; once the total is spent further answers fail with
/// [`EngineError::Budget`]\([`BudgetError::Exhausted`]\) instead of
/// silently over-spending. Approximate-DP sessions
/// ([`Session::open_budget`]) compose δ the same way: both components are
/// checked and debited per release. The strategy itself is shared
/// (cheaply, via `Arc`) with the engine cache — opening a session costs
/// nothing.
pub struct Session {
    mechanism: Arc<dyn Mechanism + Send + Sync>,
    label: &'static str,
    ledger: BudgetLedger,
}

impl Session {
    /// Opens a session over a compiled strategy with a total ε budget.
    pub fn open(compiled: &CompiledMechanism, total: Epsilon) -> Self {
        Self {
            mechanism: compiled.shared_mechanism(),
            label: compiled.meta().label,
            ledger: BudgetLedger::new(total),
        }
    }

    /// Opens a session with a total (ε, δ) budget — required for
    /// approximate-DP strategies, whose releases consume δ.
    pub fn open_budget(compiled: &CompiledMechanism, total: Budget) -> Self {
        Self {
            mechanism: compiled.shared_mechanism(),
            label: compiled.meta().label,
            ledger: BudgetLedger::with_budget(total),
        }
    }

    /// One noisy release of the whole batch at `eps`, debited from the
    /// session budget.
    ///
    /// The debit happens only if the release succeeds; a refused debit
    /// leaves the ledger (and the data) untouched.
    pub fn answer(
        &mut self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<BatchAnswer, EngineError> {
        self.ledger.check(eps)?;
        let answers = self.mechanism.answer(x, eps, rng)?;
        let eps_remaining = self
            .ledger
            .debit(eps)
            .expect("debit cannot fail after check");
        Ok(BatchAnswer {
            answers,
            eps_spent: eps,
            eps_remaining,
            delta_spent: 0.0,
            delta_remaining: self.ledger.delta_remaining(),
            expected_avg_error: self.mechanism.expected_average_error(eps, Some(x)),
            mechanism: self.label,
        })
    }

    /// One noisy release of the whole batch at an (ε, δ) `budget`, with
    /// both components checked against and debited from the session
    /// ledger. This is the only release path a Gaussian strategy accepts.
    pub fn answer_budget(
        &mut self,
        x: &[f64],
        budget: Budget,
        rng: &mut dyn RngCore,
    ) -> Result<BatchAnswer, EngineError> {
        self.ledger.check_budget(budget)?;
        let answers = self.mechanism.answer_budget(x, budget, rng)?;
        let eps_remaining = self
            .ledger
            .debit_budget(budget)
            .expect("debit cannot fail after check");
        Ok(BatchAnswer {
            answers,
            eps_spent: budget.eps(),
            eps_remaining,
            delta_spent: budget.delta(),
            delta_remaining: self.ledger.delta_remaining(),
            expected_avg_error: self
                .mechanism
                .expected_average_error_budget(budget, Some(x)),
            mechanism: self.label,
        })
    }

    /// The ledger's remaining budget.
    pub fn remaining(&self) -> f64 {
        self.ledger.remaining()
    }

    /// Whether the budget is spent.
    pub fn is_exhausted(&self) -> bool {
        self.ledger.is_exhausted()
    }

    /// The underlying ledger (total, spent, debit count).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Label of the strategy answering this session.
    pub fn mechanism_label(&self) -> &'static str {
        self.label
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("mechanism", &self.label)
            .field("ledger", &self.ledger)
            .finish()
    }
}

/// One release from a [`Session`]: the noisy answers plus the accounting
/// that justified them.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnswer {
    /// Noisy batch answers `ŷ`.
    pub answers: Vec<f64>,
    /// The ε this release consumed.
    pub eps_spent: Epsilon,
    /// Budget left in the session after the debit.
    pub eps_remaining: f64,
    /// The δ this release consumed (`0` for pure releases).
    pub delta_spent: f64,
    /// δ left in the session after the debit (`0` for pure sessions).
    pub delta_remaining: f64,
    /// Closed-form expected average squared error of this release.
    pub expected_avg_error: f64,
    /// Label of the strategy that answered.
    pub mechanism: &'static str,
}

/// Failure of an engine-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The session's privacy budget cannot cover the request.
    Budget(BudgetError),
    /// Compilation or answering failed.
    Core(CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Budget(e) => write!(f, "{e}"),
            EngineError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Budget(e) => Some(e),
            EngineError::Core(e) => Some(e),
        }
    }
}

impl From<BudgetError> for EngineError {
    fn from(e: BudgetError) -> Self {
        EngineError::Budget(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}
