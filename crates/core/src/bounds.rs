//! Optimality analysis — Section 4.1 / 4.2 of the paper.
//!
//! * [`lemma3_upper_bound`] — the error of the feasible construction
//!   `B = √r·UΣ`, `L = V/√r`: the LRM optimum can only be better. We keep
//!   the Laplace variance factor 2 from Lemma 1 so the bound is directly
//!   comparable with the crate's exact expected errors.
//! * [`lemma4_lower_bound`] — the Hardt–Talwar geometric lower bound
//!   specialized to rank-`r` workloads. This is an `Ω(·)` statement; the
//!   value returned uses constant 1 inside the `Ω`, so it is a *shape*
//!   reference, not a certified floor (for small `r` it can exceed the
//!   upper bound — the hidden constant is < 1).
//! * [`theorem2_ratio`] — the `(C/4)²·r` approximation factor with
//!   `C = λ₁/λᵣ`; Theorem 2 proves `upper/lower ≤ (C/4)²·r` for `r > 5`
//!   with the paper's constants, which the tests verify numerically.
//! * [`theorem3_bound`] — the relaxed-decomposition error bound
//!   `2·tr(BᵀB)/ε² + γ·Σx²`.

/// Lemma 3: expected squared error of the SVD-based feasible
/// decomposition, `2·r·Σ_k λ_k²/ε²` (factor 2 per Lemma 1; the paper's
/// statement omits it). `singular_values` are the non-zero λ of `W`.
pub fn lemma3_upper_bound(singular_values: &[f64], eps: f64) -> f64 {
    let r = singular_values.len() as f64;
    let sum_sq: f64 = singular_values.iter().map(|l| l * l).sum();
    2.0 * r * sum_sq / (eps * eps)
}

/// Lemma 4 (after Hardt & Talwar): any ε-DP mechanism for a rank-`r`
/// workload with non-zero singular values `{λ₁…λᵣ}` has expected squared
/// error at least
///
/// ```text
/// Ω( (2^r/r! · Π λ_k)^{2/r} · r³ / ε² )
/// ```
///
/// computed in log-space to avoid overflow. Constant 1 is used inside the
/// `Ω(·)` (see module docs).
pub fn lemma4_lower_bound(singular_values: &[f64], eps: f64) -> f64 {
    let r = singular_values.len();
    if r == 0 {
        return 0.0;
    }
    if singular_values.iter().any(|&l| l <= 0.0) {
        return 0.0; // degenerate spectrum: no positive lower bound
    }
    let rf = r as f64;
    let log_ball = rf * std::f64::consts::LN_2 - ln_factorial(r); // ln(2^r/r!)
    let log_prod: f64 = singular_values.iter().map(|l| l.ln()).sum();
    let exponent = (2.0 / rf) * (log_ball + log_prod) + 3.0 * rf.ln() - 2.0 * eps.ln();
    exponent.exp()
}

/// Theorem 2: the approximation factor `(C/4)²·r` with `C = λ₁/λᵣ`
/// (meaningful for `r > 5`; returned for any non-degenerate spectrum).
pub fn theorem2_ratio(singular_values: &[f64]) -> Option<f64> {
    let r = singular_values.len();
    let first = *singular_values.first()?;
    let last = *singular_values.last()?;
    if last <= 0.0 {
        return None;
    }
    let c = first / last;
    Some((c / 4.0) * (c / 4.0) * r as f64)
}

/// Theorem 3: error bound for a relaxed decomposition (Formula 8):
/// `2·tr(BᵀB)/ε² + γ·Σᵢ xᵢ²`.
pub fn theorem3_bound(trace_btb: f64, gamma: f64, x: &[f64], eps: f64) -> f64 {
    let x_sq: f64 = x.iter().map(|v| v * v).sum();
    2.0 * trace_btb / (eps * eps) + gamma * x_sq
}

/// `ln(r!)` by direct summation (exact enough for the ranks involved).
fn ln_factorial(r: usize) -> f64 {
    (2..=r).map(|k| (k as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0_f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - (2432902008176640000.0_f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_formula() {
        // λ = (3, 4), r = 2, ε = 1 → 2·2·25 = 100.
        assert!((lemma3_upper_bound(&[3.0, 4.0], 1.0) - 100.0).abs() < 1e-9);
        // ε-scaling is quadratic.
        assert!((lemma3_upper_bound(&[3.0, 4.0], 0.1) - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_formula_small_case() {
        // r = 1, λ = 2, ε = 1: ((2/1)·2)² · 1 = 16.
        let lb = lemma4_lower_bound(&[2.0], 1.0);
        assert!((lb - 16.0).abs() < 1e-9, "lb {lb}");
    }

    #[test]
    fn lower_bound_no_overflow_large_rank() {
        let svals = vec![10.0; 512];
        let lb = lemma4_lower_bound(&svals, 0.01);
        assert!(lb.is_finite() && lb > 0.0);
    }

    #[test]
    fn lower_bound_scalings() {
        // Quadratic in 1/ε and quadratic in a uniform λ scaling
        // ((Πλ)^{2/r} doubles the λ² factor).
        let svals = vec![3.0, 2.0, 1.5, 1.0, 0.8, 0.7];
        let base = lemma4_lower_bound(&svals, 1.0);
        assert!((lemma4_lower_bound(&svals, 0.5) / base - 4.0).abs() < 1e-9);
        let doubled: Vec<f64> = svals.iter().map(|l| 2.0 * l).collect();
        assert!((lemma4_lower_bound(&doubled, 1.0) / base - 4.0).abs() < 1e-9);
    }

    #[test]
    fn theorem2_ratio_values() {
        // Uniform spectrum: C = 1 → ratio r/16.
        let r = theorem2_ratio(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        assert!((r - 4.0 / 16.0).abs() < 1e-12);
        // Spread spectrum.
        let r2 = theorem2_ratio(&[8.0, 2.0]).unwrap();
        assert!((r2 - 2.0).abs() < 1e-12); // (4/4)²·2
        assert!(theorem2_ratio(&[]).is_none());
        assert!(theorem2_ratio(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn theorem3_combines_noise_and_structure() {
        let x = [1.0, 2.0];
        let b = theorem3_bound(10.0, 0.5, &x, 2.0);
        assert!((b - (2.0 * 10.0 / 4.0 + 0.5 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn theorem2_inequality_holds_for_r_above_5() {
        // Theorem 2 (with the paper's constants, i.e. factor-2-free upper
        // bound): upper/lower ≤ (C/4)²·r when r > 5. The r = 6 uniform
        // case is the tight one (0.3734 vs 0.375).
        for &r in &[6usize, 12, 48, 200] {
            for &(hi_l, lo_l) in &[(5.0_f64, 5.0_f64), (4.0, 2.0), (10.0, 1.0)] {
                // Geometric interpolation between λ₁ = hi_l and λᵣ = lo_l.
                let svals: Vec<f64> = (0..r)
                    .map(|k| hi_l * (lo_l / hi_l).powf(k as f64 / (r - 1) as f64))
                    .collect();
                let upper_paper = lemma3_upper_bound(&svals, 1.0) / 2.0;
                let lower = lemma4_lower_bound(&svals, 1.0);
                let ratio = theorem2_ratio(&svals).unwrap();
                assert!(
                    upper_paper / lower <= ratio * (1.0 + 1e-9),
                    "r={r}, λ∈[{lo_l},{hi_l}]: {} > {ratio}",
                    upper_paper / lower
                );
            }
        }
    }
}
