#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numerical kernels

//! The Low-Rank Mechanism (LRM) and every baseline the paper evaluates.
//!
//! This crate is the reproduction of the paper's primary contribution:
//!
//! * [`decomposition`] — the workload matrix decomposition `W ≈ B·L` of
//!   Section 4, solved by the inexact Augmented Lagrangian method of
//!   Section 5 (**Algorithm 1**, with **Algorithm 2** as the inner
//!   `L`-solver);
//! * [`lrm`] — the Low-Rank Mechanism `M_P(Q, D) = B(Lx + Lap(Δ/ε)^r)`
//!   (Eq. 6);
//! * [`baselines`] — Noise-on-Data (Eq. 4), Noise-on-Results (Eq. 5), the
//!   Matrix Mechanism as implemented in **Appendix B**, the Wavelet
//!   Mechanism (Privelet, ref \[28\]) and the Hierarchical Mechanism
//!   (Hay et al., ref \[15\]);
//! * [`bounds`] — Lemma 3's upper bound, Lemma 4's Hardt–Talwar lower
//!   bound, Theorem 2's `O(C²r)` approximation ratio and Theorem 3's
//!   relaxed-decomposition error bound;
//! * [`mechanism`] — the common [`mechanism::Mechanism`] interface with
//!   closed-form expected errors (all mechanisms here publish
//!   `linear map · Laplace vector`, so exact error formulas exist);
//! * [`engine`] — the serving layer: the [`engine::MechanismKind`]
//!   registry, the compile-once/answer-many [`engine::Engine`] with its
//!   fingerprint-keyed strategy cache, and budget-tracked
//!   [`engine::Session`]s.

pub mod baselines;
pub mod bounds;
pub mod decomposition;
pub mod engine;
pub mod error;
pub mod extensions;
pub mod lrm;
pub mod mechanism;
pub mod persistence;

pub use decomposition::{DecompositionConfig, TargetRank, WorkloadDecomposition};
pub use engine::{
    BatchAnswer, CompileMeta, CompileOptions, CompiledMechanism, Engine, EngineBuilder,
    EngineError, MechanismKind, NoiseFlavor, Session,
};
pub use error::CoreError;
pub use lrm::LowRankMechanism;
pub use mechanism::Mechanism;
