//! Workload generators — Section 6 of the paper, verbatim:
//!
//! * **WDiscrete**: each weight is `1` with probability `p = 0.02` and `−1`
//!   otherwise;
//! * **WRange**: random range-count queries with endpoints drawn uniformly
//!   from the domain;
//! * **WRelated**: `W = C·A` where `A` (`s×n`) holds `s` independent base
//!   queries and `C` (`m×s`) mixes them, both with i.i.d. standard-normal
//!   entries — by construction `rank(W) ≤ s`.
//!
//! A few extra structured workloads (identity, total, prefix-sums,
//! two-way marginals) are provided for tests and ablations; they are not
//! part of the paper's evaluation grid.
//!
//! Generators construct the *structured* representation directly where one
//! exists: WRange, WPrefix and WIdentity produce implicit interval
//! operators (`O(m)` storage — a range row is a `(lo, hi)` pair, not `n`
//! floats), WMarginal2D and WPermutedRange produce CSR, and only the
//! genuinely dense families (WDiscrete, WRelated) densify. Downstream, the
//! whole pipeline — fingerprint, SVD/rank, the Algorithm-1 solver, the
//! baselines — consumes the operator form, so these workloads never
//! materialize an `m×n` matrix at all.

use crate::workload::Workload;
use lrm_linalg::operator::CsrOp;
use lrm_linalg::{ops, Matrix};
use rand::Rng;
use rand::RngCore;

/// A reproducible workload generator.
pub trait WorkloadGenerator {
    /// Short name used in reports (e.g. `"WDiscrete"`).
    fn name(&self) -> &'static str;

    /// Generates an `m`-query workload over a domain of size `n`.
    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String>;
}

/// Samples one standard-normal value via the Marsaglia polar method.
///
/// (`rand` 0.8 ships uniform distributions only; `rand_distr` is outside
/// the allowed dependency set, so we roll the classic transform.)
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// WDiscrete (Section 6): `W_ij = 1` w.p. `p`, else `−1`.
#[derive(Debug, Clone, Copy)]
pub struct WDiscrete {
    /// Probability of a `+1` entry; the paper fixes 0.02.
    pub positive_probability: f64,
}

impl Default for WDiscrete {
    fn default() -> Self {
        Self {
            positive_probability: 0.02,
        }
    }
}

impl WorkloadGenerator for WDiscrete {
    fn name(&self) -> &'static str {
        "WDiscrete"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        if !(0.0..=1.0).contains(&self.positive_probability) {
            return Err(format!(
                "positive probability must lie in [0,1], got {}",
                self.positive_probability
            ));
        }
        check_dims(m, n)?;
        let mut w = Matrix::zeros(m, n);
        for i in 0..m {
            let row = w.row_mut(i);
            for v in row.iter_mut() {
                *v = if rng.gen_range(0.0..1.0) < self.positive_probability {
                    1.0
                } else {
                    -1.0
                };
            }
        }
        Workload::new(w).map_err(|e| e.to_string())
    }
}

/// WRange (Section 6): uniform random range-count queries, held as an
/// implicit interval operator — each query is a `(lo, hi)` pair, never a
/// dense row.
#[derive(Debug, Clone, Copy, Default)]
pub struct WRange;

impl WorkloadGenerator for WRange {
    fn name(&self) -> &'static str {
        "WRange"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        let intervals: Vec<(usize, usize)> = (0..m)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        Workload::from_intervals(n, intervals).map_err(|e| e.to_string())
    }
}

/// Range-count queries whose endpoints snap to `cuts` evenly spaced
/// boundaries — the "reporting on fixed bucket edges" workload. Every row
/// is a difference of at most `cuts` distinct prefix indicators, so
/// `rank(W) ≤ cuts` no matter how many queries are asked: the `m ≫ rank`
/// regime the Low-Rank Mechanism targets, in implicit interval form.
#[derive(Debug, Clone, Copy)]
pub struct WRangeCoarse {
    /// Number of distinct boundary positions (≥ 2).
    pub cuts: usize,
}

impl WorkloadGenerator for WRangeCoarse {
    fn name(&self) -> &'static str {
        "WRangeCoarse"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        if self.cuts < 2 {
            return Err(format!("need at least 2 boundary cuts, got {}", self.cuts));
        }
        let cuts = self.cuts.min(n);
        // Boundary b_k = k·n/cuts for k = 0..cuts (b_cuts = n).
        let boundary = |k: usize| k * n / cuts;
        let intervals: Vec<(usize, usize)> = (0..m)
            .map(|_| {
                let a = rng.gen_range(0..cuts);
                let b = rng.gen_range(0..cuts);
                let (lo_cut, hi_cut) = if a <= b { (a, b) } else { (b, a) };
                // Query spans [boundary(lo), boundary(hi+1) − 1].
                (boundary(lo_cut), boundary(hi_cut + 1) - 1)
            })
            .collect();
        Workload::from_intervals(n, intervals).map_err(|e| e.to_string())
    }
}

/// WRelated (Section 6): `W = C·A` with Gaussian factors; `rank(W) ≤ s`.
#[derive(Debug, Clone, Copy)]
pub struct WRelated {
    /// Number of base queries `s`.
    pub base_queries: usize,
}

impl WRelated {
    /// The paper's parameterization `s = ratio · min(m, n)` (Fig. 9).
    pub fn with_ratio(ratio: f64, m: usize, n: usize) -> Result<Self, String> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(format!("s-ratio must lie in (0, 1], got {ratio}"));
        }
        let s = ((ratio * m.min(n) as f64).round() as usize).max(1);
        Ok(Self { base_queries: s })
    }
}

impl WorkloadGenerator for WRelated {
    fn name(&self) -> &'static str {
        "WRelated"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        let s = self.base_queries;
        if s == 0 || s > m.min(n) {
            return Err(format!(
                "base query count s={s} must lie in [1, min(m={m}, n={n})]"
            ));
        }
        let c = Matrix::from_fn(m, s, |_, _| standard_normal(rng));
        let a = Matrix::from_fn(s, n, |_, _| standard_normal(rng));
        let mut w = ops::matmul(&c, &a).map_err(|e| e.to_string())?;
        // Entries of C·A have variance s; normalize to unit variance so
        // workload magnitude is comparable across s. Without this, ‖W‖²_F
        // (and hence every mechanism's error) grows linearly in s, whereas
        // the paper's Fig. 9 shows the rank-insensitive baselines flat in
        // s — their workloads are magnitude-normalized.
        w = w.scale(1.0 / (s as f64).sqrt());
        Workload::new(w).map_err(|e| e.to_string())
    }
}

/// The identity workload (every unit count queried once) — the implicit
/// strategy of the NOD baseline; used in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct WIdentity;

impl WorkloadGenerator for WIdentity {
    fn name(&self) -> &'static str {
        "WIdentity"
    }

    fn generate(&self, m: usize, n: usize, _rng: &mut dyn RngCore) -> Result<Workload, String> {
        if m != n {
            return Err(format!("identity workload needs m == n, got {m} != {n}"));
        }
        check_dims(m, n)?;
        // Point queries are width-1 intervals.
        Workload::from_intervals(n, (0..n).map(|i| (i, i)).collect()).map_err(|e| e.to_string())
    }
}

/// All prefix-sum queries `x₁+…+x_k` for `k = 1..=m` — the classic
/// hierarchical/wavelet-friendly workload; used in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct WPrefix;

impl WorkloadGenerator for WPrefix {
    fn name(&self) -> &'static str {
        "WPrefix"
    }

    fn generate(&self, m: usize, n: usize, _rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        if m > n {
            return Err(format!(
                "at most n={n} distinct prefixes exist, asked for {m}"
            ));
        }
        // Spread the m prefixes evenly over the domain; each is the
        // interval [0, end-1].
        let intervals: Vec<(usize, usize)> =
            (0..m).map(|i| (0, ((i + 1) * n).div_ceil(m) - 1)).collect();
        Ok(Workload::from_intervals(n, intervals).expect("valid by construction"))
    }
}

/// Range queries over a randomly permuted domain: the same rank structure
/// as [`WRange`], but the contiguity that Privelet and the hierarchical
/// tree exploit is destroyed. An ablation workload isolating "low rank"
/// from "range structure" as the source of LRM's advantage.
#[derive(Debug, Clone, Copy, Default)]
pub struct WPermutedRange;

impl WorkloadGenerator for WPermutedRange {
    fn name(&self) -> &'static str {
        "WPermutedRange"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        // Fisher–Yates permutation of the column order: permuted column j
        // holds original column perm[j], i.e. original column p lands at
        // inv[p].
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut inv = vec![0usize; n];
        for (j, &p) in perm.iter().enumerate() {
            inv[p] = j;
        }
        // Scatter each range's columns through the permutation; the result
        // is sparse but no longer contiguous → CSR.
        let rows: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let mut cols: Vec<usize> = (lo..=hi).map(|p| inv[p]).collect();
                cols.sort_unstable();
                cols.into_iter().map(|c| (c, 1.0)).collect()
            })
            .collect();
        Workload::from_csr(CsrOp::from_row_entries(m, n, &rows)).map_err(|e| e.to_string())
    }
}

/// Two-dimensional marginal queries: the domain is viewed as a
/// `rows × cols` grid (`n = rows·cols`) and each query sums one full grid
/// row or column — the classic data-cube workload of the DP literature.
/// Row and column marginals overlap in exactly one cell each, giving a
/// strongly correlated, low-sensitivity batch.
#[derive(Debug, Clone, Copy)]
pub struct WMarginal2D {
    /// Grid rows; `n` must be divisible by this.
    pub grid_rows: usize,
}

impl WorkloadGenerator for WMarginal2D {
    fn name(&self) -> &'static str {
        "WMarginal2D"
    }

    fn generate(&self, m: usize, n: usize, rng: &mut dyn RngCore) -> Result<Workload, String> {
        check_dims(m, n)?;
        let rows = self.grid_rows;
        if rows == 0 || !n.is_multiple_of(rows) {
            return Err(format!("n={n} is not divisible by grid_rows={rows}"));
        }
        let cols = n / rows;
        let total_marginals = rows + cols;
        if m > total_marginals {
            return Err(format!(
                "at most {total_marginals} marginals exist for a {rows}x{cols} grid, asked for {m}"
            ));
        }
        // Sample m distinct marginals (rows first, then columns), shuffled.
        let mut ids: Vec<usize> = (0..total_marginals).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        // A row marginal touches `cols` consecutive cells; a column
        // marginal touches `rows` strided cells — both naturally sparse.
        let entries: Vec<Vec<(usize, f64)>> = ids
            .iter()
            .take(m)
            .map(|&id| {
                if id < rows {
                    (0..cols).map(|c| (id * cols + c, 1.0)).collect()
                } else {
                    let c = id - rows;
                    (0..rows).map(|r| (r * cols + c, 1.0)).collect()
                }
            })
            .collect();
        Workload::from_csr(CsrOp::from_row_entries(m, n, &entries)).map_err(|e| e.to_string())
    }
}

fn check_dims(m: usize, n: usize) -> Result<(), String> {
    if m == 0 || n == 0 {
        return Err(format!(
            "workload dimensions must be positive, got m={m}, n={n}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wdiscrete_entries_and_frequency() {
        let gen = WDiscrete::default();
        let w = gen
            .generate(50, 200, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut positives = 0usize;
        for row in w.matrix().rows_iter() {
            for &v in row {
                assert!(v == 1.0 || v == -1.0, "entry {v} not ±1");
                if v == 1.0 {
                    positives += 1;
                }
            }
        }
        let frac = positives as f64 / (50.0 * 200.0);
        assert!(
            (frac - 0.02).abs() < 0.01,
            "positive fraction {frac} far from 0.02"
        );
    }

    #[test]
    fn wrange_rows_are_contiguous_ranges() {
        let w = WRange
            .generate(40, 64, &mut StdRng::seed_from_u64(2))
            .unwrap();
        for row in w.matrix().rows_iter() {
            let ones: Vec<usize> = row
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == 1.0)
                .map(|(j, _)| j)
                .collect();
            assert!(!ones.is_empty());
            // Contiguity: indices form an arithmetic run.
            assert_eq!(ones.last().unwrap() - ones[0] + 1, ones.len());
            // Zeros elsewhere.
            assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn wrange_coarse_is_low_rank_intervals() {
        let gen = WRangeCoarse { cuts: 8 };
        let w = gen
            .generate(100, 64, &mut StdRng::seed_from_u64(12))
            .unwrap();
        assert_eq!(w.structure(), crate::workload::WorkloadStructure::Intervals);
        // 100 queries, but rank bounded by the 8 boundary cuts.
        assert!(w.rank() <= 8, "rank {} exceeds cuts", w.rank());
        assert!(w.rank() >= 2);
        // Rows are 0/1 contiguous ranges aligned to boundaries of width 8.
        for row in w.matrix().rows_iter() {
            let ones = row.iter().filter(|&&v| v == 1.0).count();
            assert!(ones > 0 && ones % 8 == 0, "unaligned range of {ones}");
        }
        assert!(WRangeCoarse { cuts: 1 }
            .generate(5, 16, &mut StdRng::seed_from_u64(1))
            .is_err());
    }

    #[test]
    fn wrelated_rank_bounded_by_s() {
        let gen = WRelated { base_queries: 5 };
        let w = gen.generate(30, 40, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(w.rank(), 5);
    }

    #[test]
    fn wrelated_ratio_parameterization() {
        let gen = WRelated::with_ratio(0.2, 64, 256).unwrap();
        assert_eq!(gen.base_queries, 13); // 0.2 · 64 rounded
        assert!(WRelated::with_ratio(0.0, 64, 256).is_err());
        assert!(WRelated::with_ratio(1.5, 64, 256).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for gen in [&WDiscrete::default() as &dyn WorkloadGenerator, &WRange] {
            let a = gen.generate(10, 20, &mut StdRng::seed_from_u64(9)).unwrap();
            let b = gen.generate(10, 20, &mut StdRng::seed_from_u64(9)).unwrap();
            assert_eq!(a, b, "{} not deterministic", gen.name());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn prefix_workload_structure() {
        let w = WPrefix
            .generate(4, 8, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(w.matrix().row(0), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(w.matrix().row(3), &[1.0; 8]);
        // Prefix workloads have full rank m.
        assert_eq!(w.rank(), 4);
    }

    #[test]
    fn identity_workload() {
        assert!(WIdentity
            .generate(3, 4, &mut StdRng::seed_from_u64(6))
            .is_err());
        let w = WIdentity
            .generate(4, 4, &mut StdRng::seed_from_u64(6))
            .unwrap();
        assert_eq!(w.sensitivity(), 1.0);
        assert_eq!(w.rank(), 4);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(WRange
            .generate(0, 5, &mut StdRng::seed_from_u64(7))
            .is_err());
        assert!(WRange
            .generate(5, 0, &mut StdRng::seed_from_u64(7))
            .is_err());
        let bad = WRelated { base_queries: 10 };
        assert!(bad.generate(5, 5, &mut StdRng::seed_from_u64(7)).is_err());
    }

    #[test]
    fn permuted_range_same_row_sums_not_contiguous() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = WPermutedRange.generate(30, 64, &mut rng).unwrap();
        let mut any_non_contiguous = false;
        for row in w.matrix().rows_iter() {
            // 0/1 rows with at least one 1 (a permutation of a range row).
            assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(row.contains(&1.0));
            let ones: Vec<usize> = row
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == 1.0)
                .map(|(j, _)| j)
                .collect();
            if ones.last().unwrap() - ones[0] + 1 != ones.len() {
                any_non_contiguous = true;
            }
        }
        assert!(any_non_contiguous, "permutation left all ranges contiguous");
    }

    #[test]
    fn marginal_2d_structure() {
        let gen = WMarginal2D { grid_rows: 4 };
        let w = gen.generate(10, 32, &mut StdRng::seed_from_u64(9)).unwrap(); // 4x8 grid

        // Every marginal touches exactly one full row (8 cells) or one
        // full column (4 cells) of the grid.
        for row in w.matrix().rows_iter() {
            let count = row.iter().filter(|&&v| v == 1.0).count();
            assert!(count == 8 || count == 4, "marginal covers {count} cells");
        }
        // Sensitivity: a cell appears in one row and one column marginal,
        // so at most 2 selected marginals cover it.
        assert!(w.sensitivity() <= 2.0);
        // Invalid grids rejected.
        assert!(gen.generate(20, 30, &mut StdRng::seed_from_u64(9)).is_err());
        assert!(WMarginal2D { grid_rows: 4 }
            .generate(13, 32, &mut StdRng::seed_from_u64(9))
            .is_err());
    }
}
