//! Attribute schemas: building histogram workloads from value predicates.
//!
//! The paper works directly on a unit-count vector; real deployments start
//! one step earlier, with an attribute ("age in 0..120", "state of
//! residence") whose domain is bucketized into the histogram the
//! mechanisms operate on. This module provides that bridge, so range
//! predicates over attribute *values* become [`LinearQuery`] rows over
//! *buckets* — the medical-database example of the paper's introduction
//! expressed as code.

use crate::query::LinearQuery;
use crate::workload::Workload;

/// A numeric attribute with a bucketized domain.
///
/// Values in `[lo, hi)` map uniformly onto `buckets` histogram cells; the
/// unit-count vector the mechanisms see has one entry per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    lo: f64,
    hi: f64,
    buckets: usize,
}

impl Attribute {
    /// Defines an attribute; `lo < hi`, at least one bucket.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, buckets: usize) -> Result<Self, String> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("invalid attribute range [{lo}, {hi})"));
        }
        if buckets == 0 {
            return Err("attribute needs at least one bucket".into());
        }
        Ok(Self {
            name: name.into(),
            lo,
            hi,
            buckets,
        })
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of histogram buckets (the mechanisms' domain size `n`).
    pub fn domain_size(&self) -> usize {
        self.buckets
    }

    /// The bucket containing `value`; values at/above `hi` clamp to the
    /// last bucket, below `lo` to the first (standard histogram edges).
    pub fn bucket_of(&self, value: f64) -> usize {
        if value <= self.lo {
            return 0;
        }
        let frac = (value - self.lo) / (self.hi - self.lo);
        ((frac * self.buckets as f64) as usize).min(self.buckets - 1)
    }

    /// Count query for values in `[from, to)` — a range over buckets.
    ///
    /// The bucket range is inclusive of every bucket the value interval
    /// touches; callers quantizing at bucket edges get exact counts.
    pub fn count_between(&self, from: f64, to: f64) -> Result<LinearQuery, String> {
        if from.partial_cmp(&to) != Some(std::cmp::Ordering::Less) {
            return Err(format!("empty value interval [{from}, {to})"));
        }
        let lo_bucket = self.bucket_of(from);
        // `to` is exclusive: subtract half a bucket's width to land inside.
        let width = (self.hi - self.lo) / self.buckets as f64;
        let hi_bucket = self.bucket_of(to - width * 0.5);
        LinearQuery::range(self.buckets, lo_bucket, hi_bucket.max(lo_bucket))
    }

    /// Count query for all values at/above `threshold`.
    pub fn count_at_least(&self, threshold: f64) -> Result<LinearQuery, String> {
        LinearQuery::range(self.buckets, self.bucket_of(threshold), self.buckets - 1)
    }

    /// The total-population query.
    pub fn count_all(&self) -> LinearQuery {
        LinearQuery::total(self.buckets)
    }

    /// Builds the histogram (unit-count vector) of raw values.
    pub fn histogram(&self, values: &[f64]) -> Vec<f64> {
        let mut counts = vec![0.0; self.buckets];
        for &v in values {
            counts[self.bucket_of(v)] += 1.0;
        }
        counts
    }

    /// Assembles a workload from a set of queries over this attribute.
    pub fn workload(&self, queries: &[LinearQuery]) -> Result<Workload, String> {
        if queries.iter().any(|q| q.len() != self.buckets) {
            return Err("query domain does not match this attribute".into());
        }
        Workload::from_queries(queries).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> Attribute {
        Attribute::new("age", 0.0, 120.0, 24).unwrap() // 5-year buckets
    }

    #[test]
    fn bucket_mapping() {
        let a = age();
        assert_eq!(a.bucket_of(0.0), 0);
        assert_eq!(a.bucket_of(4.9), 0);
        assert_eq!(a.bucket_of(5.0), 1);
        assert_eq!(a.bucket_of(119.9), 23);
        assert_eq!(a.bucket_of(500.0), 23); // clamped
        assert_eq!(a.bucket_of(-3.0), 0); // clamped
    }

    #[test]
    fn histogram_counts() {
        let a = age();
        let h = a.histogram(&[1.0, 2.0, 7.0, 64.0, 64.5]);
        assert_eq!(h[0], 2.0);
        assert_eq!(h[1], 1.0);
        assert_eq!(h[12], 2.0);
        assert_eq!(h.iter().sum::<f64>(), 5.0);
    }

    #[test]
    fn range_queries_match_histogram() {
        let a = age();
        let values = [3.0, 17.0, 21.0, 33.0, 64.0, 89.0];
        let h = a.histogram(&values);
        // Count 18-to-65-year-olds by predicate (quantized to buckets:
        // [15, 65) since 18 falls in the 15–20 bucket).
        let q = a.count_between(18.0, 65.0).unwrap();
        let got = q.answer(&h).unwrap();
        assert_eq!(got, 4.0); // 17 (bucket 3 = 15–20 contains 18's bucket), 21, 33, 64

        let seniors = a.count_at_least(65.0).unwrap();
        assert_eq!(seniors.answer(&h).unwrap(), 1.0); // 89
        assert_eq!(a.count_all().answer(&h).unwrap(), 6.0);
    }

    #[test]
    fn workload_assembly_and_correlation() {
        // The intro example's structure: total = young + old.
        let a = age();
        let total = a.count_all();
        let young = a.count_between(0.0, 60.0).unwrap();
        let old = a.count_at_least(60.0).unwrap();
        let w = a.workload(&[total, young, old]).unwrap();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.rank(), 2); // q1 = q2 + q3
        assert_eq!(w.sensitivity(), 2.0);
    }

    #[test]
    fn validation() {
        assert!(Attribute::new("x", 1.0, 1.0, 4).is_err());
        assert!(Attribute::new("x", 0.0, 1.0, 0).is_err());
        assert!(Attribute::new("x", f64::NAN, 1.0, 4).is_err());
        let a = age();
        assert!(a.count_between(50.0, 50.0).is_err());
        let other = LinearQuery::total(7);
        assert!(a.workload(&[other]).is_err());
    }
}
