//! Attribute schemas: building histogram workloads from value predicates.
//!
//! The paper works directly on a unit-count vector; real deployments start
//! one step earlier, with an attribute ("age in 0..120", "state of
//! residence") whose domain is bucketized into the histogram the
//! mechanisms operate on. This module provides that bridge, so range
//! predicates over attribute *values* become [`LinearQuery`] rows over
//! *buckets* — the medical-database example of the paper's introduction
//! expressed as code.

use crate::query::LinearQuery;
use crate::workload::Workload;

/// A numeric attribute with a bucketized domain.
///
/// Values in `[lo, hi)` map uniformly onto `buckets` histogram cells; the
/// unit-count vector the mechanisms see has one entry per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    lo: f64,
    hi: f64,
    buckets: usize,
}

impl Attribute {
    /// Defines an attribute; `lo < hi`, at least one bucket.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, buckets: usize) -> Result<Self, String> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("invalid attribute range [{lo}, {hi})"));
        }
        if buckets == 0 {
            return Err("attribute needs at least one bucket".into());
        }
        Ok(Self {
            name: name.into(),
            lo,
            hi,
            buckets,
        })
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of histogram buckets (the mechanisms' domain size `n`).
    pub fn domain_size(&self) -> usize {
        self.buckets
    }

    /// The bucket containing `value`; values at/above `hi` clamp to the
    /// last bucket, below `lo` to the first (standard histogram edges).
    pub fn bucket_of(&self, value: f64) -> usize {
        if value <= self.lo {
            return 0;
        }
        let frac = (value - self.lo) / (self.hi - self.lo);
        ((frac * self.buckets as f64) as usize).min(self.buckets - 1)
    }

    /// The inclusive bucket interval `[lo, hi]` touched by the value
    /// interval `[from, to)` — the structured (never-densified) form of
    /// [`Attribute::count_between`], and what the `lrm-server` spec
    /// translation feeds to [`Workload::from_intervals`].
    ///
    /// The bucket range is inclusive of every bucket the value interval
    /// touches; callers quantizing at bucket edges get exact counts.
    pub fn bucket_range(&self, from: f64, to: f64) -> Result<(usize, usize), String> {
        if from.partial_cmp(&to) != Some(std::cmp::Ordering::Less) {
            return Err(format!("empty value interval [{from}, {to})"));
        }
        let lo_bucket = self.bucket_of(from);
        // `to` is exclusive, so the last touched bucket is the one the
        // interval enters strictly: ⌈frac·buckets⌉ − 1. (An exact bucket
        // edge contributes nothing — `[0, edge)` stops at the bucket
        // below — while crossing an edge by any amount includes the
        // bucket above it.)
        let frac = ((to - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let hi_bucket = ((frac * self.buckets as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.buckets - 1);
        Ok((lo_bucket, hi_bucket.max(lo_bucket)))
    }

    /// The inclusive bucket interval of the prefix "all values below
    /// `up_to`" — bucket 0 through the bucket containing the threshold.
    pub fn bucket_prefix(&self, up_to: f64) -> Result<(usize, usize), String> {
        self.bucket_range(self.lo, up_to)
    }

    /// The value at the lower edge of `bucket` (so trace generators can
    /// snap predicates exactly onto bucket boundaries).
    pub fn bucket_edge(&self, bucket: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets as f64;
        self.lo + width * bucket as f64
    }

    /// Count query for values in `[from, to)` — a range over buckets.
    ///
    /// The bucket range is inclusive of every bucket the value interval
    /// touches; callers quantizing at bucket edges get exact counts.
    pub fn count_between(&self, from: f64, to: f64) -> Result<LinearQuery, String> {
        let (lo_bucket, hi_bucket) = self.bucket_range(from, to)?;
        LinearQuery::range(self.buckets, lo_bucket, hi_bucket)
    }

    /// Count query for all values at/above `threshold`.
    pub fn count_at_least(&self, threshold: f64) -> Result<LinearQuery, String> {
        LinearQuery::range(self.buckets, self.bucket_of(threshold), self.buckets - 1)
    }

    /// The total-population query.
    pub fn count_all(&self) -> LinearQuery {
        LinearQuery::total(self.buckets)
    }

    /// Builds the histogram (unit-count vector) of raw values.
    pub fn histogram(&self, values: &[f64]) -> Vec<f64> {
        let mut counts = vec![0.0; self.buckets];
        for &v in values {
            counts[self.bucket_of(v)] += 1.0;
        }
        counts
    }

    /// Assembles a workload from a set of queries over this attribute.
    pub fn workload(&self, queries: &[LinearQuery]) -> Result<Workload, String> {
        if queries.iter().any(|q| q.len() != self.buckets) {
            return Err("query domain does not match this attribute".into());
        }
        Workload::from_queries(queries).map_err(|e| e.to_string())
    }
}

/// A fixed attribute layout the serving runtime answers queries against:
/// one or two bucketized [`Attribute`]s whose cross product, flattened
/// row-major (attribute 0 outermost), is the unit-count domain the
/// mechanisms see.
///
/// The flattening is what makes structured serving work: a value range
/// over attribute 0 covers a *contiguous* block of cells (an implicit
/// interval row, never densified), while a range or marginal over
/// attribute 1 covers a strided cell set (a CSR row). `lrm-server`
/// translates every incoming `QuerySpec` through this type.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// A one-attribute schema: the histogram domain is the attribute's
    /// buckets.
    pub fn single(attribute: Attribute) -> Self {
        Self {
            attributes: vec![attribute],
        }
    }

    /// A product schema over one or two attributes (row-major flattening,
    /// attribute 0 outermost). Higher arities are rejected until a
    /// Kronecker operator lands (see ROADMAP).
    pub fn product(attributes: Vec<Attribute>) -> Result<Self, String> {
        if attributes.is_empty() {
            return Err("a schema needs at least one attribute".into());
        }
        if attributes.len() > 2 {
            return Err(format!(
                "schemas support at most two attributes for now (got {})",
                attributes.len()
            ));
        }
        Ok(Self { attributes })
    }

    /// The attributes, in flattening order (attribute 0 outermost).
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute `idx`, if present.
    pub fn attribute(&self, idx: usize) -> Option<&Attribute> {
        self.attributes.get(idx)
    }

    /// Number of attributes (1 or 2).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Total flattened domain size `n` (product of bucket counts).
    pub fn domain_size(&self) -> usize {
        self.attributes.iter().map(|a| a.domain_size()).product()
    }

    /// Number of cells one step of attribute 0 spans: the bucket count of
    /// attribute 1, or 1 for single-attribute schemas.
    pub fn inner_stride(&self) -> usize {
        self.attributes.get(1).map_or(1, |a| a.domain_size())
    }

    /// Flattened cell index of a (row-major) bucket tuple.
    pub fn cell(&self, buckets: &[usize]) -> Result<usize, String> {
        if buckets.len() != self.arity() {
            return Err(format!(
                "bucket tuple of arity {} does not match schema arity {}",
                buckets.len(),
                self.arity()
            ));
        }
        let mut idx = 0;
        for (attr, &b) in self.attributes.iter().zip(buckets) {
            if b >= attr.domain_size() {
                return Err(format!(
                    "bucket {b} out of range for attribute {:?}",
                    attr.name()
                ));
            }
            idx = idx * attr.domain_size() + b;
        }
        Ok(idx)
    }

    /// Builds the flattened histogram (unit-count vector) of raw records,
    /// one value per attribute per record.
    pub fn histogram(&self, records: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        let mut counts = vec![0.0; self.domain_size()];
        for record in records {
            if record.len() != self.arity() {
                return Err(format!(
                    "record of arity {} does not match schema arity {}",
                    record.len(),
                    self.arity()
                ));
            }
            let buckets: Vec<usize> = self
                .attributes
                .iter()
                .zip(record)
                .map(|(a, &v)| a.bucket_of(v))
                .collect();
            counts[self.cell(&buckets)?] += 1.0;
        }
        Ok(counts)
    }

    /// Content hash of the schema layout (names, value ranges, bucket
    /// counts, order) — what the serving runtime uses to refuse specs
    /// compiled against a different schema.
    pub fn fingerprint(&self) -> u64 {
        use crate::workload::{fnv1a_bytes, FNV_OFFSET};
        let mut h = fnv1a_bytes(FNV_OFFSET, &(self.arity() as u64).to_le_bytes());
        for attr in &self.attributes {
            h = fnv1a_bytes(h, attr.name().as_bytes());
            h = fnv1a_bytes(h, &attr.lo.to_bits().to_le_bytes());
            h = fnv1a_bytes(h, &attr.hi.to_bits().to_le_bytes());
            h = fnv1a_bytes(h, &(attr.buckets as u64).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> Attribute {
        Attribute::new("age", 0.0, 120.0, 24).unwrap() // 5-year buckets
    }

    #[test]
    fn bucket_mapping() {
        let a = age();
        assert_eq!(a.bucket_of(0.0), 0);
        assert_eq!(a.bucket_of(4.9), 0);
        assert_eq!(a.bucket_of(5.0), 1);
        assert_eq!(a.bucket_of(119.9), 23);
        assert_eq!(a.bucket_of(500.0), 23); // clamped
        assert_eq!(a.bucket_of(-3.0), 0); // clamped
    }

    #[test]
    fn histogram_counts() {
        let a = age();
        let h = a.histogram(&[1.0, 2.0, 7.0, 64.0, 64.5]);
        assert_eq!(h[0], 2.0);
        assert_eq!(h[1], 1.0);
        assert_eq!(h[12], 2.0);
        assert_eq!(h.iter().sum::<f64>(), 5.0);
    }

    #[test]
    fn range_queries_match_histogram() {
        let a = age();
        let values = [3.0, 17.0, 21.0, 33.0, 64.0, 89.0];
        let h = a.histogram(&values);
        // Count 18-to-65-year-olds by predicate (quantized to buckets:
        // [15, 65) since 18 falls in the 15–20 bucket).
        let q = a.count_between(18.0, 65.0).unwrap();
        let got = q.answer(&h).unwrap();
        assert_eq!(got, 4.0); // 17 (bucket 3 = 15–20 contains 18's bucket), 21, 33, 64

        let seniors = a.count_at_least(65.0).unwrap();
        assert_eq!(seniors.answer(&h).unwrap(), 1.0); // 89
        assert_eq!(a.count_all().answer(&h).unwrap(), 6.0);
    }

    #[test]
    fn workload_assembly_and_correlation() {
        // The intro example's structure: total = young + old.
        let a = age();
        let total = a.count_all();
        let young = a.count_between(0.0, 60.0).unwrap();
        let old = a.count_at_least(60.0).unwrap();
        let w = a.workload(&[total, young, old]).unwrap();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.rank(), 2); // q1 = q2 + q3
        assert_eq!(w.sensitivity(), 2.0);
    }

    #[test]
    fn bucket_range_and_prefix() {
        let a = age();
        assert_eq!(a.bucket_range(0.0, 120.0).unwrap(), (0, 23));
        assert_eq!(a.bucket_range(15.0, 65.0).unwrap(), (3, 12));
        assert_eq!(a.bucket_prefix(60.0).unwrap(), (0, 11));
        assert!(a.bucket_range(50.0, 50.0).is_err());
        // Entering a bucket by less than half its width still counts it:
        // [0, 61) touches the [60, 65) bucket.
        assert_eq!(a.bucket_range(0.0, 61.0).unwrap(), (0, 12));
        // An interval inside one bucket maps to that bucket.
        assert_eq!(a.bucket_range(61.0, 62.0).unwrap(), (12, 12));
        // Values past the attribute range clamp to the last bucket.
        assert_eq!(a.bucket_range(0.0, 500.0).unwrap(), (0, 23));
        // Snapped edges round-trip: the interval [edge(i), edge(j)) covers
        // exactly buckets i..=j-1.
        assert_eq!(a.bucket_edge(3), 15.0);
        assert_eq!(
            a.bucket_range(a.bucket_edge(3), a.bucket_edge(7)).unwrap(),
            (3, 6)
        );
        // And matches the dense query the same predicate produces.
        let q = a.count_between(15.0, 65.0).unwrap();
        let (lo, hi) = a.bucket_range(15.0, 65.0).unwrap();
        let dense = LinearQuery::range(a.domain_size(), lo, hi).unwrap();
        assert_eq!(q, dense);
    }

    #[test]
    fn schema_flattening_row_major() {
        let a = Attribute::new("age", 0.0, 120.0, 4).unwrap();
        let b = Attribute::new("income", 0.0, 100.0, 3).unwrap();
        let s = Schema::product(vec![a, b]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.domain_size(), 12);
        assert_eq!(s.inner_stride(), 3);
        assert_eq!(s.cell(&[0, 0]).unwrap(), 0);
        assert_eq!(s.cell(&[1, 0]).unwrap(), 3);
        assert_eq!(s.cell(&[2, 2]).unwrap(), 8);
        assert!(s.cell(&[4, 0]).is_err());
        assert!(s.cell(&[0]).is_err());

        let h = s
            .histogram(&[vec![10.0, 10.0], vec![10.0, 40.0], vec![100.0, 90.0]])
            .unwrap();
        assert_eq!(h.iter().sum::<f64>(), 3.0);
        assert_eq!(h[0], 1.0); // (bucket 0, bucket 0)
        assert_eq!(h[1], 1.0); // (bucket 0, bucket 1)
        assert_eq!(h[s.cell(&[3, 2]).unwrap()], 1.0);
        assert!(s.histogram(&[vec![1.0]]).is_err());
    }

    #[test]
    fn schema_validation_and_fingerprint() {
        assert!(Schema::product(vec![]).is_err());
        let a = || Attribute::new("a", 0.0, 1.0, 4).unwrap();
        assert!(Schema::product(vec![a(), a(), a()]).is_err());

        let one = Schema::single(a());
        assert_eq!(one.arity(), 1);
        assert_eq!(one.inner_stride(), 1);
        assert_eq!(one.domain_size(), 4);
        assert_eq!(one.fingerprint(), Schema::single(a()).fingerprint());

        // Any layout change moves the fingerprint.
        let renamed = Schema::single(Attribute::new("b", 0.0, 1.0, 4).unwrap());
        let rebucketed = Schema::single(Attribute::new("a", 0.0, 1.0, 8).unwrap());
        let widened = Schema::single(Attribute::new("a", 0.0, 2.0, 4).unwrap());
        assert_ne!(one.fingerprint(), renamed.fingerprint());
        assert_ne!(one.fingerprint(), rebucketed.fingerprint());
        assert_ne!(one.fingerprint(), widened.fingerprint());
        let two = Schema::product(vec![a(), a()]).unwrap();
        assert_ne!(one.fingerprint(), two.fingerprint());
    }

    #[test]
    fn validation() {
        assert!(Attribute::new("x", 1.0, 1.0, 4).is_err());
        assert!(Attribute::new("x", 0.0, 1.0, 0).is_err());
        assert!(Attribute::new("x", f64::NAN, 1.0, 4).is_err());
        let a = age();
        assert!(a.count_between(50.0, 50.0).is_err());
        let other = LinearQuery::total(7);
        assert!(a.workload(&[other]).is_err());
    }
}
