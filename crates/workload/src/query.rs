//! Single linear counting queries.

use lrm_linalg::ops;

/// A linear counting query: a weight vector over the `n` unit counts
/// (Section 3.2 of the paper). The answer on a database `x` is the dot
/// product `Σ_j w_j·x_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearQuery {
    weights: Vec<f64>,
}

impl LinearQuery {
    /// Builds a query from an explicit weight vector.
    pub fn new(weights: Vec<f64>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("a linear query needs at least one weight".into());
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err("query weights must be finite".into());
        }
        Ok(Self { weights })
    }

    /// A range-count query summing unit counts `lo..=hi` over a domain of
    /// size `n` — the building block of the WRange workload.
    pub fn range(n: usize, lo: usize, hi: usize) -> Result<Self, String> {
        if lo > hi || hi >= n {
            return Err(format!(
                "invalid range [{lo}, {hi}] for a domain of size {n}"
            ));
        }
        let mut weights = vec![0.0; n];
        weights[lo..=hi].iter_mut().for_each(|w| *w = 1.0);
        Ok(Self { weights })
    }

    /// The total query: sums every unit count.
    pub fn total(n: usize) -> Self {
        Self {
            weights: vec![1.0; n],
        }
    }

    /// A point query on unit count `j`.
    pub fn point(n: usize, j: usize) -> Result<Self, String> {
        if j >= n {
            return Err(format!("point index {j} out of domain of size {n}"));
        }
        let mut weights = vec![0.0; n];
        weights[j] = 1.0;
        Ok(Self { weights })
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff the weight vector is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Borrow the weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Exact answer on a database vector.
    pub fn answer(&self, x: &[f64]) -> Result<f64, String> {
        if x.len() != self.weights.len() {
            return Err(format!(
                "database of size {} does not match query over {} counts",
                x.len(),
                self.weights.len()
            ));
        }
        Ok(ops::dot(&self.weights, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_weights() {
        let q = LinearQuery::range(5, 1, 3).unwrap();
        assert_eq!(q.weights(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
        assert!(LinearQuery::range(5, 3, 1).is_err());
        assert!(LinearQuery::range(5, 0, 5).is_err());
    }

    #[test]
    fn answers() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(LinearQuery::total(4).answer(&x).unwrap(), 10.0);
        assert_eq!(LinearQuery::point(4, 2).unwrap().answer(&x).unwrap(), 3.0);
        assert_eq!(
            LinearQuery::range(4, 1, 2).unwrap().answer(&x).unwrap(),
            5.0
        );
        let weighted = LinearQuery::new(vec![0.5, 0.0, 0.0, -1.0]).unwrap();
        assert_eq!(weighted.answer(&x).unwrap(), 0.5 - 4.0);
    }

    #[test]
    fn validation() {
        assert!(LinearQuery::new(vec![]).is_err());
        assert!(LinearQuery::new(vec![f64::NAN]).is_err());
        assert!(LinearQuery::point(3, 3).is_err());
        let q = LinearQuery::total(3);
        assert!(q.answer(&[1.0, 2.0]).is_err());
    }
}
