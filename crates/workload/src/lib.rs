#![warn(missing_docs)]
//! Batch linear-query workloads and datasets for the LRM reproduction.
//!
//! * [`workload`] — the [`workload::Workload`] type: an `m×n` batch of
//!   query coefficients behind a structure-aware
//!   [`MatrixOp`](lrm_linalg::MatrixOp) (dense, CSR-sparse, or implicit
//!   intervals) with cached rank/SVD metadata.
//! * [`query`] — single linear queries and range-query helpers.
//! * [`schema`] — bucketized [`schema::Attribute`]s and the
//!   [`schema::Schema`] product layout the serving runtime translates
//!   query specs against.
//! * [`generators`] — the three workload families of the paper's
//!   Section 6 (WDiscrete, WRange, WRelated) plus extra structured
//!   workloads used in tests and ablations; range/prefix/marginal
//!   families construct their sparse or implicit form directly.
//! * [`datasets`] — synthetic stand-ins for the paper's Search Logs /
//!   Net Trace / Social Network datasets, with the paper's
//!   "merge consecutive counts" domain-size reduction.
//! * [`error`] — the typed [`WorkloadError`].

pub mod datasets;
pub mod error;
pub mod generators;
pub mod query;
pub mod schema;
pub mod workload;

pub use datasets::Dataset;
pub use error::WorkloadError;
pub use generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
pub use schema::{Attribute, Schema};
pub use workload::{Fingerprint, Workload, WorkloadStructure};
