#![warn(missing_docs)]
//! Batch linear-query workloads and datasets for the LRM reproduction.
//!
//! * [`workload`] — the [`workload::Workload`] type: an `m×n` matrix of
//!   query coefficients with cached rank/SVD metadata.
//! * [`query`] — single linear queries and range-query helpers.
//! * [`generators`] — the three workload families of the paper's
//!   Section 6 (WDiscrete, WRange, WRelated) plus extra structured
//!   workloads used in tests and ablations.
//! * [`datasets`] — synthetic stand-ins for the paper's Search Logs /
//!   Net Trace / Social Network datasets, with the paper's
//!   "merge consecutive counts" domain-size reduction.

pub mod datasets;
pub mod generators;
pub mod query;
pub mod schema;
pub mod workload;

pub use datasets::Dataset;
pub use generators::{WDiscrete, WRange, WRelated, WorkloadGenerator};
pub use workload::{Fingerprint, Workload};
