//! Typed errors for workload construction and answering.
//!
//! PR 2 migrated `lrm_dp` and `lrm_core` off `Result<_, String>`; this
//! module finishes the job for `lrm_workload`. `lrm_core` provides
//! `From<WorkloadError> for CoreError`, so mechanism code can use `?`
//! directly on workload operations.

use std::fmt;

/// Errors surfaced by [`Workload`](crate::workload::Workload) construction
/// and answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A workload needs at least one query and a non-empty domain.
    Empty,
    /// The workload matrix contains NaN or infinite entries.
    NonFinite,
    /// A database or query vector does not match the workload's domain.
    DomainMismatch {
        /// Domain size `n` the workload covers.
        expected: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// Queries passed to `from_queries` disagree on the domain size.
    InconsistentQueries {
        /// Domain size of the first query.
        expected: usize,
        /// Domain size of the offending query.
        got: usize,
    },
    /// An interval row is inverted or runs past the domain.
    InvalidInterval {
        /// Inclusive lower bound.
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
        /// Domain size `n` the interval must fit in.
        domain: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Empty => write!(f, "workload needs at least one query"),
            WorkloadError::NonFinite => {
                write!(f, "workload matrix contains NaN or infinite entries")
            }
            WorkloadError::DomainMismatch { expected, got } => write!(
                f,
                "vector of length {got} does not match the workload domain of size {expected}"
            ),
            WorkloadError::InconsistentQueries { expected, got } => write!(
                f,
                "all queries must share the same domain size (saw {expected} and {got})"
            ),
            WorkloadError::InvalidInterval { lo, hi, domain } => write!(
                f,
                "invalid interval [{lo}, {hi}] for a domain of size {domain}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        assert!(WorkloadError::Empty.to_string().contains("at least one"));
        assert!(WorkloadError::NonFinite.to_string().contains("NaN"));
        let dm = WorkloadError::DomainMismatch {
            expected: 4,
            got: 3,
        };
        assert!(dm.to_string().contains('4') && dm.to_string().contains('3'));
        let iq = WorkloadError::InconsistentQueries {
            expected: 5,
            got: 6,
        };
        assert!(iq.to_string().contains('5') && iq.to_string().contains('6'));
        let iv = WorkloadError::InvalidInterval {
            lo: 3,
            hi: 1,
            domain: 4,
        };
        assert!(iv.to_string().contains("[3, 1]"));
    }
}
