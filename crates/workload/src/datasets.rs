//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on three real datasets (Section 6): **Search Logs**
//! (2¹⁶ = 65,536 keyword-frequency counts from Google Trends / AOL),
//! **Net Trace** (2¹⁵ = 32,768 per-IP TCP packet counts) and **Social
//! Network** (11,342 degree-histogram counts). Those files are not
//! redistributable, so this module synthesizes datasets of the *same size
//! and statistical character*:
//!
//! * Search Logs → trend + weekly/annual seasonality + bursts + noise;
//! * Net Trace  → heavy-tailed (Pareto) per-host packet counts;
//! * Social Network → power-law degree histogram.
//!
//! Why this substitution is faithful: every mechanism in the paper adds
//! *data-independent* noise — expected error depends only on `W` and ε
//! (Section 3.1: "the amount of error only depends on the sensitivity of
//! the queries, regardless of the records in database D"). The only
//! data-dependent term anywhere is the `γ·Σx²` structural residual of
//! Theorem 3, which these heavy-tailed synthetics exercise at realistic
//! magnitudes. See DESIGN.md §3.
//!
//! Generation is deterministic: the same dataset is produced on every
//! call, mimicking a fixed file on disk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 65,536 keyword-frequency counts (synthetic Google Trends / AOL).
    SearchLogs,
    /// 32,768 per-IP TCP packet counts (synthetic university trace).
    NetTrace,
    /// 11,342 degree-histogram counts (synthetic social graph).
    SocialNetwork,
}

impl Dataset {
    /// All three datasets, in the paper's order.
    pub const ALL: [Dataset; 3] = [
        Dataset::SearchLogs,
        Dataset::NetTrace,
        Dataset::SocialNetwork,
    ];

    /// Dataset name as printed in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::SearchLogs => "Search Logs",
            Dataset::NetTrace => "NetTrace",
            Dataset::SocialNetwork => "Social Network",
        }
    }

    /// Entry count, matching the paper exactly.
    pub fn len(&self) -> usize {
        match self {
            Dataset::SearchLogs => 65_536,
            Dataset::NetTrace => 32_768,
            Dataset::SocialNetwork => 11_342,
        }
    }

    /// Always false; datasets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Materializes the full count vector.
    pub fn load(&self) -> Vec<f64> {
        match self {
            Dataset::SearchLogs => search_logs(),
            Dataset::NetTrace => net_trace(),
            Dataset::SocialNetwork => social_network(),
        }
    }

    /// Loads and reduces to a domain of size `n` by merging consecutive
    /// counts, exactly as the paper preprocesses ("we transform the
    /// original counts into a vector of fixed size n, by merging
    /// consecutive counts in order").
    pub fn load_merged(&self, n: usize) -> Result<Vec<f64>, String> {
        merge_to_domain(&self.load(), n)
    }
}

/// Merges consecutive counts so the result has exactly `n` entries.
///
/// Bucket `k` receives `x[⌈k·len/n⌉ .. ⌈(k+1)·len/n⌉)`, so bucket sizes
/// differ by at most one and every source count lands in exactly one
/// bucket (sum is preserved).
pub fn merge_to_domain(x: &[f64], n: usize) -> Result<Vec<f64>, String> {
    if n == 0 {
        return Err("target domain size must be positive".into());
    }
    if n > x.len() {
        return Err(format!(
            "cannot merge {} counts into a larger domain of {n}",
            x.len()
        ));
    }
    let len = x.len();
    let mut out = vec![0.0; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let start = k * len / n;
        let end = (k + 1) * len / n;
        *slot = x[start..end].iter().sum();
    }
    Ok(out)
}

/// Synthetic Search Logs: a keyword-frequency time series with trend,
/// weekly and annual seasonality, random bursts, and noise; all counts are
/// non-negative.
fn search_logs() -> Vec<f64> {
    let n = Dataset::SearchLogs.len();
    let mut rng = StdRng::seed_from_u64(0x005E_A2C4_10C5);
    let mut out = Vec::with_capacity(n);
    // Burst state: occasional hot topics that decay geometrically.
    let mut burst = 0.0_f64;
    for t in 0..n {
        let tf = t as f64;
        let trend = 120.0 + 60.0 * (tf / n as f64);
        let weekly = 35.0 * (tf * std::f64::consts::TAU / 7.0).sin();
        let annual = 55.0 * (tf * std::f64::consts::TAU / 365.25).sin();
        if rng.gen_range(0.0..1.0) < 0.002 {
            burst += rng.gen_range(200.0..2_000.0);
        }
        burst *= 0.97;
        let noise: f64 = rng.gen_range(-20.0..20.0);
        out.push((trend + weekly + annual + burst + noise).max(0.0).round());
    }
    out
}

/// Synthetic Net Trace: heavy-tailed per-IP packet counts (Pareto-like
/// via inverse-CDF sampling, α = 1.2), with many hosts near zero.
fn net_trace() -> Vec<f64> {
    let n = Dataset::NetTrace.len();
    let mut rng = StdRng::seed_from_u64(0x4E7_7EACE);
    let alpha = 1.2_f64;
    (0..n)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < 0.35 {
                // Dormant host.
                rng.gen_range(0.0_f64..3.0).floor()
            } else {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (u.powf(-1.0 / alpha)).min(5e5).round()
            }
        })
        .collect()
}

/// Synthetic Social Network: degree histogram of a power-law graph —
/// entry `d` is the (expected) number of users with degree `d+1`,
/// exponent 2.3, with multiplicative jitter.
fn social_network() -> Vec<f64> {
    let n = Dataset::SocialNetwork.len();
    let mut rng = StdRng::seed_from_u64(0x50C1A1);
    let users = 2.0e6_f64;
    let gamma = 2.3_f64;
    let norm: f64 = (1..=n).map(|d| (d as f64).powf(-gamma)).sum();
    (0..n)
        .map(|d| {
            let expected = users * ((d + 1) as f64).powf(-gamma) / norm;
            let jitter = rng.gen_range(0.75..1.25);
            (expected * jitter).round()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(Dataset::SearchLogs.load().len(), 65_536);
        assert_eq!(Dataset::NetTrace.load().len(), 32_768);
        assert_eq!(Dataset::SocialNetwork.load().len(), 11_342);
    }

    #[test]
    fn deterministic() {
        for ds in Dataset::ALL {
            assert_eq!(ds.load(), ds.load(), "{} not deterministic", ds.name());
        }
    }

    #[test]
    fn all_counts_non_negative_and_finite() {
        for ds in Dataset::ALL {
            let x = ds.load();
            assert!(
                x.iter().all(|&v| v >= 0.0 && v.is_finite()),
                "{} has invalid counts",
                ds.name()
            );
        }
    }

    #[test]
    fn merge_preserves_total() {
        for ds in Dataset::ALL {
            let x = ds.load();
            let total: f64 = x.iter().sum();
            for &n in &[128usize, 1_024, 4_096] {
                let merged = ds.load_merged(n).unwrap();
                assert_eq!(merged.len(), n);
                let merged_total: f64 = merged.iter().sum();
                assert!(
                    (total - merged_total).abs() < 1e-6 * total.max(1.0),
                    "{}: total {total} vs merged {merged_total} at n={n}",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn merge_bucket_boundaries() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // 10 → 5: pairs (0+1, 2+3, …).
        let merged = merge_to_domain(&x, 5).unwrap();
        assert_eq!(merged, vec![1.0, 5.0, 9.0, 13.0, 17.0]);
        // 10 → 3: uneven buckets still cover everything once.
        let merged3 = merge_to_domain(&x, 3).unwrap();
        assert_eq!(merged3.iter().sum::<f64>(), 45.0);
        assert_eq!(merged3.len(), 3);
        // Identity merge.
        assert_eq!(merge_to_domain(&x, 10).unwrap(), x);
    }

    #[test]
    fn merge_rejects_bad_sizes() {
        let x = vec![1.0; 4];
        assert!(merge_to_domain(&x, 0).is_err());
        assert!(merge_to_domain(&x, 5).is_err());
    }

    #[test]
    fn net_trace_is_heavy_tailed() {
        let x = Dataset::NetTrace.load();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let max = x.iter().cloned().fold(0.0_f64, f64::max);
        // A heavy tail: max dwarfs the mean.
        assert!(max > 50.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn social_network_is_decreasing_on_average() {
        let x = Dataset::SocialNetwork.load();
        let head: f64 = x[..100].iter().sum();
        let tail: f64 = x[x.len() - 100..].iter().sum();
        assert!(head > 100.0 * tail.max(1.0), "head {head}, tail {tail}");
    }
}
