//! The batch-query workload type.

use crate::query::LinearQuery;
use lrm_linalg::decomp::svd::Svd;
use lrm_linalg::{ops, Matrix};
use parking_lot::Mutex;
use std::sync::Arc;

/// A batch of `m` linear counting queries over `n` unit counts, represented
/// by its `m×n` workload matrix `W` (Section 3.2 of the paper).
///
/// The SVD (and hence rank and singular values) is computed lazily and
/// cached: the LRM decomposition, the Fig. 3 `r = ratio·rank(W)` sweep and
/// the optimality bounds all consult it repeatedly.
#[derive(Debug, Clone)]
pub struct Workload {
    matrix: Matrix,
    svd_cache: Arc<Mutex<Option<Arc<Svd>>>>,
}

impl Workload {
    /// Wraps a workload matrix. Rejects empty and non-finite matrices.
    pub fn new(matrix: Matrix) -> Result<Self, String> {
        if matrix.has_non_finite() {
            return Err("workload matrix contains NaN or infinite entries".into());
        }
        Ok(Self {
            matrix,
            svd_cache: Arc::new(Mutex::new(None)),
        })
    }

    /// Builds a workload from row slices (one row per query).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, String> {
        if rows.is_empty() {
            return Err("workload needs at least one query".into());
        }
        Self::new(Matrix::from_rows(rows))
    }

    /// Builds a workload from a list of [`LinearQuery`]s with equal domain.
    pub fn from_queries(queries: &[LinearQuery]) -> Result<Self, String> {
        if queries.is_empty() {
            return Err("workload needs at least one query".into());
        }
        let n = queries[0].len();
        if queries.iter().any(|q| q.len() != n) {
            return Err("all queries must share the same domain size".into());
        }
        let rows: Vec<&[f64]> = queries.iter().map(|q| q.weights()).collect();
        Self::from_rows(&rows)
    }

    /// Number of queries `m`.
    pub fn num_queries(&self) -> usize {
        self.matrix.rows()
    }

    /// Domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.matrix.cols()
    }

    /// The workload matrix `W`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Exact batch answers `W·x`.
    pub fn answer(&self, x: &[f64]) -> Result<Vec<f64>, String> {
        ops::mul_vec(&self.matrix, x).map_err(|e| e.to_string())
    }

    /// L1 sensitivity `Δ' = max_j Σ_i |W_ij|` (Section 3.2).
    pub fn sensitivity(&self) -> f64 {
        self.matrix.max_col_abs_sum()
    }

    /// Squared sum `Σ_ij W_ij²`, which drives the NOD error (Eq. 4).
    pub fn squared_sum(&self) -> f64 {
        self.matrix.squared_sum()
    }

    /// Cached singular value decomposition of `W`.
    pub fn svd(&self) -> Arc<Svd> {
        let mut guard = self.svd_cache.lock();
        if let Some(svd) = guard.as_ref() {
            return Arc::clone(svd);
        }
        let svd = Arc::new(Svd::compute(&self.matrix).expect("workload entries are finite"));
        *guard = Some(Arc::clone(&svd));
        Arc::clone(guard.as_ref().expect("just inserted"))
    }

    /// Numerical rank of `W` (cached).
    pub fn rank(&self) -> usize {
        self.svd().rank()
    }

    /// Non-zero singular values of `W`, descending — the paper's
    /// "eigenvalues" `{λ₁, …, λᵣ}` (Section 3.3).
    pub fn singular_values(&self) -> Vec<f64> {
        self.svd().nonzero_singular_values()
    }
}

impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intro_workload() -> Workload {
        Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn dimensions_and_answers() {
        let w = intro_workload();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.domain_size(), 4);
        let x = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
        let ans = w.answer(&x).unwrap();
        assert_eq!(ans, vec![174_600.0, 101_700.0, 72_900.0]);
        assert!(w.answer(&[1.0]).is_err());
    }

    #[test]
    fn sensitivity_matches_paper_example() {
        // q1 affects every state once; q2/q3 split them → Δ' = 2.
        assert_eq!(intro_workload().sensitivity(), 2.0);
    }

    #[test]
    fn rank_of_dependent_queries() {
        // q1 = q2 + q3, so the rank is 2 despite 3 queries.
        assert_eq!(intro_workload().rank(), 2);
    }

    #[test]
    fn svd_cache_is_shared() {
        let w = intro_workload();
        let a = w.svd();
        let b = w.svd();
        assert!(Arc::ptr_eq(&a, &b));
        // Clones share the cache too.
        let c = w.clone().svd();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn from_queries_round_trip() {
        let queries = vec![
            LinearQuery::total(3),
            LinearQuery::point(3, 1).unwrap(),
            LinearQuery::range(3, 0, 1).unwrap(),
        ];
        let w = Workload::from_queries(&queries).unwrap();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.matrix().row(2), &[1.0, 1.0, 0.0]);

        let mismatched = vec![LinearQuery::total(3), LinearQuery::total(4)];
        assert!(Workload::from_queries(&mismatched).is_err());
        assert!(Workload::from_queries(&[]).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        assert!(Workload::new(m).is_err());
    }

    #[test]
    fn singular_values_descending() {
        let w = intro_workload();
        let sv = w.singular_values();
        assert_eq!(sv.len(), 2);
        assert!(sv[0] >= sv[1]);
        assert!(sv[1] > 0.0);
    }
}
