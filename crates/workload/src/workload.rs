//! The batch-query workload type.

use crate::query::LinearQuery;
use lrm_linalg::decomp::svd::Svd;
use lrm_linalg::{ops, Matrix};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A 64-bit content hash identifying a workload matrix: FNV-1a over the
/// dimensions and the IEEE-754 bit pattern of every entry.
///
/// Bit-identical matrices always hash equal; distinct matrices collide
/// only with 64-bit-hash probability, and FNV-1a is *not* cryptographic,
/// so collisions are constructible on purpose. A fingerprint can
/// therefore key a compiled-strategy cache — the strategy search depends
/// only on `W`, and `W` is public, so reuse across equal fingerprints is
/// privacy-neutral — but correctness-critical hits must confirm the
/// actual matrix (as the engine's memory cache does) rather than trust
/// the hash alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw 64-bit hash.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a offset basis — the initial state for [`fnv1a_bytes`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state. This is the hash the workload
/// [`Fingerprint`] is built from; cache keys layered on top of the
/// fingerprint (e.g. the engine's compile-options digest) should use it
/// too so the two can never silently diverge.
pub fn fnv1a_bytes(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &byte in bytes {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(hash: u64, word: u64) -> u64 {
    fnv1a_bytes(hash, &word.to_le_bytes())
}

/// A batch of `m` linear counting queries over `n` unit counts, represented
/// by its `m×n` workload matrix `W` (Section 3.2 of the paper).
///
/// The SVD (and hence rank and singular values) is computed lazily and
/// cached: the LRM decomposition, the Fig. 3 `r = ratio·rank(W)` sweep and
/// the optimality bounds all consult it repeatedly.
#[derive(Debug, Clone)]
pub struct Workload {
    matrix: Matrix,
    svd_cache: Arc<Mutex<Option<Arc<Svd>>>>,
    fingerprint_cache: Arc<Mutex<Option<Fingerprint>>>,
}

impl Workload {
    /// Wraps a workload matrix. Rejects empty and non-finite matrices.
    pub fn new(matrix: Matrix) -> Result<Self, String> {
        if matrix.has_non_finite() {
            return Err("workload matrix contains NaN or infinite entries".into());
        }
        Ok(Self {
            matrix,
            svd_cache: Arc::new(Mutex::new(None)),
            fingerprint_cache: Arc::new(Mutex::new(None)),
        })
    }

    /// Builds a workload from row slices (one row per query).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, String> {
        if rows.is_empty() {
            return Err("workload needs at least one query".into());
        }
        Self::new(Matrix::from_rows(rows))
    }

    /// Builds a workload from a list of [`LinearQuery`]s with equal domain.
    pub fn from_queries(queries: &[LinearQuery]) -> Result<Self, String> {
        if queries.is_empty() {
            return Err("workload needs at least one query".into());
        }
        let n = queries[0].len();
        if queries.iter().any(|q| q.len() != n) {
            return Err("all queries must share the same domain size".into());
        }
        let rows: Vec<&[f64]> = queries.iter().map(|q| q.weights()).collect();
        Self::from_rows(&rows)
    }

    /// Number of queries `m`.
    pub fn num_queries(&self) -> usize {
        self.matrix.rows()
    }

    /// Domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.matrix.cols()
    }

    /// The workload matrix `W`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Exact batch answers `W·x`.
    pub fn answer(&self, x: &[f64]) -> Result<Vec<f64>, String> {
        ops::mul_vec(&self.matrix, x).map_err(|e| e.to_string())
    }

    /// L1 sensitivity `Δ' = max_j Σ_i |W_ij|` (Section 3.2).
    pub fn sensitivity(&self) -> f64 {
        self.matrix.max_col_abs_sum()
    }

    /// Squared sum `Σ_ij W_ij²`, which drives the NOD error (Eq. 4).
    pub fn squared_sum(&self) -> f64 {
        self.matrix.squared_sum()
    }

    /// Cached singular value decomposition of `W`.
    pub fn svd(&self) -> Arc<Svd> {
        let mut guard = self.svd_cache.lock();
        if let Some(svd) = guard.as_ref() {
            return Arc::clone(svd);
        }
        let svd = Arc::new(Svd::compute(&self.matrix).expect("workload entries are finite"));
        *guard = Some(Arc::clone(&svd));
        Arc::clone(guard.as_ref().expect("just inserted"))
    }

    /// Numerical rank of `W` (cached).
    pub fn rank(&self) -> usize {
        self.svd().rank()
    }

    /// Non-zero singular values of `W`, descending — the paper's
    /// "eigenvalues" `{λ₁, …, λᵣ}` (Section 3.3).
    pub fn singular_values(&self) -> Vec<f64> {
        self.svd().nonzero_singular_values()
    }

    /// Content hash of the workload matrix (cached; clones share it).
    ///
    /// The hash covers the dimensions and every entry's bit pattern, so
    /// bit-equal matrices — and only those — collide. It is the key of the
    /// engine's compiled-strategy cache.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut guard = self.fingerprint_cache.lock();
        if let Some(fp) = *guard {
            return fp;
        }
        let mut h = FNV_OFFSET;
        h = fnv1a_u64(h, self.matrix.rows() as u64);
        h = fnv1a_u64(h, self.matrix.cols() as u64);
        for r in 0..self.matrix.rows() {
            for &v in self.matrix.row(r) {
                h = fnv1a_u64(h, v.to_bits());
            }
        }
        let fp = Fingerprint(h);
        *guard = Some(fp);
        fp
    }
}

impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intro_workload() -> Workload {
        Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn dimensions_and_answers() {
        let w = intro_workload();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.domain_size(), 4);
        let x = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
        let ans = w.answer(&x).unwrap();
        assert_eq!(ans, vec![174_600.0, 101_700.0, 72_900.0]);
        assert!(w.answer(&[1.0]).is_err());
    }

    #[test]
    fn sensitivity_matches_paper_example() {
        // q1 affects every state once; q2/q3 split them → Δ' = 2.
        assert_eq!(intro_workload().sensitivity(), 2.0);
    }

    #[test]
    fn rank_of_dependent_queries() {
        // q1 = q2 + q3, so the rank is 2 despite 3 queries.
        assert_eq!(intro_workload().rank(), 2);
    }

    #[test]
    fn svd_cache_is_shared() {
        let w = intro_workload();
        let a = w.svd();
        let b = w.svd();
        assert!(Arc::ptr_eq(&a, &b));
        // Clones share the cache too.
        let c = w.clone().svd();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn from_queries_round_trip() {
        let queries = vec![
            LinearQuery::total(3),
            LinearQuery::point(3, 1).unwrap(),
            LinearQuery::range(3, 0, 1).unwrap(),
        ];
        let w = Workload::from_queries(&queries).unwrap();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.matrix().row(2), &[1.0, 1.0, 0.0]);

        let mismatched = vec![LinearQuery::total(3), LinearQuery::total(4)];
        assert!(Workload::from_queries(&mismatched).is_err());
        assert!(Workload::from_queries(&[]).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        assert!(Workload::new(m).is_err());
    }

    #[test]
    fn fingerprint_identifies_content() {
        let a = intro_workload();
        let b = intro_workload();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Cached and shared across clones.
        assert_eq!(a.clone().fingerprint(), a.fingerprint());

        // Any entry change moves the fingerprint.
        let mut m = a.matrix().clone();
        m.set(0, 0, 2.0);
        let c = Workload::new(m).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());

        // Same entries, different shape: 1x4 vs 4x1.
        let flat = Workload::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).unwrap();
        let tall = Workload::from_rows(&[&[1.0][..], &[1.0][..], &[1.0][..], &[1.0][..]]).unwrap();
        assert_ne!(flat.fingerprint(), tall.fingerprint());
    }

    #[test]
    fn fingerprint_display_is_hex() {
        let fp = intro_workload().fingerprint();
        let s = fp.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(u64::from_str_radix(&s, 16).unwrap(), fp.as_u64());
    }

    #[test]
    fn singular_values_descending() {
        let w = intro_workload();
        let sv = w.singular_values();
        assert_eq!(sv.len(), 2);
        assert!(sv[0] >= sv[1]);
        assert!(sv[1] > 0.0);
    }
}
