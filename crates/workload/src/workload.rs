//! The batch-query workload type.

use crate::error::WorkloadError;
use crate::query::LinearQuery;
use lrm_linalg::decomp::svd::Svd;
use lrm_linalg::operator::{op_logical_eq, CsrOp, DenseOp, IntervalsOp, MatrixOp};
use lrm_linalg::Matrix;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A 64-bit content hash identifying a workload matrix: FNV-1a over the
/// dimensions and the IEEE-754 bit pattern of every entry.
///
/// Bit-identical matrices always hash equal — *regardless of the storage
/// representation*: a dense, CSR, and interval construction of the same
/// `W` produce the same fingerprint, because the hash walks the logical
/// entries (via `MatrixOp::fill_row`), never the storage. Distinct
/// matrices collide only with 64-bit-hash probability, and FNV-1a is
/// *not* cryptographic, so collisions are constructible on purpose. A
/// fingerprint can therefore key a compiled-strategy cache — the strategy
/// search depends only on `W`, and `W` is public, so reuse across equal
/// fingerprints is privacy-neutral — but correctness-critical hits must
/// confirm the actual matrix (as the engine's memory cache does, row by
/// row through the operator) rather than trust the hash alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw 64-bit hash.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a offset basis — the initial state for [`fnv1a_bytes`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state. This is the hash the workload
/// [`Fingerprint`] is built from; cache keys layered on top of the
/// fingerprint (e.g. the engine's compile-options digest) should use it
/// too so the two can never silently diverge.
pub fn fnv1a_bytes(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &byte in bytes {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(hash: u64, word: u64) -> u64 {
    fnv1a_bytes(hash, &word.to_le_bytes())
}

/// Which representation a [`Workload`] stores its matrix in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadStructure {
    /// Explicit dense `m×n` storage.
    Dense,
    /// Compressed sparse rows ([`CsrOp`]).
    Sparse,
    /// Implicit interval-indicator rows ([`IntervalsOp`]) — range and
    /// prefix workloads; `O(m)` storage, `O(m + n)` products.
    Intervals,
}

impl WorkloadStructure {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadStructure::Dense => "dense",
            WorkloadStructure::Sparse => "sparse",
            WorkloadStructure::Intervals => "intervals",
        }
    }
}

/// A batch of `m` linear counting queries over `n` unit counts,
/// represented by its `m×n` workload matrix `W` (Section 3.2 of the
/// paper) behind a structure-aware [`MatrixOp`].
///
/// Range and prefix workloads are held as implicit interval operators,
/// marginal-style workloads as CSR — both answer every product the
/// mechanisms and the Algorithm-1 solver need without ever materializing
/// the dense `m×n` matrix. [`Workload::matrix`] remains as the explicit
/// densification escape hatch (and is how dense-constructed workloads
/// store `W` in the first place).
///
/// The SVD (and hence rank and singular values) is computed lazily and
/// cached: the LRM decomposition, the Fig. 3 `r = ratio·rank(W)` sweep and
/// the optimality bounds all consult it repeatedly. For structured
/// workloads it is computed from the small-side Gram matrix through the
/// operator — also without densifying.
#[derive(Clone)]
pub struct Workload {
    op: Arc<dyn MatrixOp>,
    structure: WorkloadStructure,
    dense_cache: Arc<Mutex<Option<Arc<Matrix>>>>,
    svd_cache: Arc<Mutex<Option<Arc<Svd>>>>,
    fingerprint_cache: Arc<Mutex<Option<Fingerprint>>>,
}

impl Workload {
    /// Wraps a dense workload matrix. Rejects non-finite matrices.
    pub fn new(matrix: Matrix) -> Result<Self, WorkloadError> {
        if matrix.has_non_finite() {
            return Err(WorkloadError::NonFinite);
        }
        let shared = Arc::new(matrix);
        Ok(Self {
            op: Arc::new(DenseOp::shared(Arc::clone(&shared))),
            structure: WorkloadStructure::Dense,
            dense_cache: Arc::new(Mutex::new(Some(shared))),
            svd_cache: Arc::new(Mutex::new(None)),
            fingerprint_cache: Arc::new(Mutex::new(None)),
        })
    }

    /// Builds a dense workload from row slices (one row per query).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, WorkloadError> {
        if rows.is_empty() {
            return Err(WorkloadError::Empty);
        }
        Self::new(Matrix::from_rows(rows))
    }

    /// Builds a dense workload from a list of [`LinearQuery`]s with equal
    /// domain.
    pub fn from_queries(queries: &[LinearQuery]) -> Result<Self, WorkloadError> {
        if queries.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let n = queries[0].len();
        if let Some(bad) = queries.iter().find(|q| q.len() != n) {
            return Err(WorkloadError::InconsistentQueries {
                expected: n,
                got: bad.len(),
            });
        }
        let rows: Vec<&[f64]> = queries.iter().map(|q| q.weights()).collect();
        Self::from_rows(&rows)
    }

    /// Builds an implicit interval workload: row `i` is the indicator of
    /// the inclusive column range `intervals[i]`. Range-count and
    /// prefix-sum workloads take this form — `O(m)` storage, and every
    /// product through the operator runs in `O(m + n)` per column.
    pub fn from_intervals(n: usize, intervals: Vec<(usize, usize)>) -> Result<Self, WorkloadError> {
        if n == 0 || intervals.is_empty() {
            return Err(WorkloadError::Empty);
        }
        if let Some(&(lo, hi)) = intervals.iter().find(|&&(lo, hi)| lo > hi || hi >= n) {
            return Err(WorkloadError::InvalidInterval { lo, hi, domain: n });
        }
        Self::from_operator(
            Arc::new(IntervalsOp::new(n, intervals)),
            WorkloadStructure::Intervals,
        )
    }

    /// Builds a sparse workload from CSR storage.
    pub fn from_csr(csr: CsrOp) -> Result<Self, WorkloadError> {
        Self::from_operator(Arc::new(csr), WorkloadStructure::Sparse)
    }

    /// Wraps an arbitrary operator with an explicit structure tag. Rejects
    /// operators with non-finite entries or empty shapes.
    pub fn from_operator(
        op: Arc<dyn MatrixOp>,
        structure: WorkloadStructure,
    ) -> Result<Self, WorkloadError> {
        if op.rows() == 0 || op.cols() == 0 {
            return Err(WorkloadError::Empty);
        }
        // Per-entry finiteness, streamed through the operator — the same
        // check (and the same verdict) the dense constructor applies, so
        // validation cannot depend on the storage representation. (A sum
        // of squares would falsely reject finite entries large enough to
        // overflow it.)
        let mut buf = vec![0.0; op.cols()];
        for i in 0..op.rows() {
            op.fill_row(i, &mut buf);
            if buf.iter().any(|v| !v.is_finite()) {
                return Err(WorkloadError::NonFinite);
            }
        }
        Ok(Self {
            op,
            structure,
            dense_cache: Arc::new(Mutex::new(None)),
            svd_cache: Arc::new(Mutex::new(None)),
            fingerprint_cache: Arc::new(Mutex::new(None)),
        })
    }

    /// A dense copy of this workload: same matrix, same fingerprint,
    /// [`WorkloadStructure::Dense`] representation. This is the "force
    /// dense" switch — e.g. the scaling sweep uses it to time the dense
    /// path against the structured one on identical inputs.
    pub fn to_dense_workload(&self) -> Self {
        Self::new((*self.matrix()).clone()).expect("finite by construction")
    }

    /// Number of queries `m`.
    pub fn num_queries(&self) -> usize {
        self.op.rows()
    }

    /// Domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.op.cols()
    }

    /// The structure-aware operator for `W` — what every product should go
    /// through.
    pub fn op(&self) -> &Arc<dyn MatrixOp> {
        &self.op
    }

    /// Which representation this workload stores `W` in.
    pub fn structure(&self) -> WorkloadStructure {
        self.structure
    }

    /// The workload matrix `W`, densified on first use and cached.
    ///
    /// For structured workloads this is the `O(m·n)` escape hatch (it
    /// counts into `lrm_linalg::operator::densification_count`); the
    /// mechanism and solver paths never need it.
    pub fn matrix(&self) -> Arc<Matrix> {
        let mut guard = self.dense_cache.lock();
        if let Some(m) = guard.as_ref() {
            return Arc::clone(m);
        }
        let dense = Arc::new(self.op.to_dense());
        *guard = Some(Arc::clone(&dense));
        dense
    }

    /// Exact batch answers `W·x`.
    pub fn answer(&self, x: &[f64]) -> Result<Vec<f64>, WorkloadError> {
        if x.len() != self.domain_size() {
            return Err(WorkloadError::DomainMismatch {
                expected: self.domain_size(),
                got: x.len(),
            });
        }
        Ok(self.op.matvec(x))
    }

    /// L1 sensitivity `Δ' = max_j Σ_i |W_ij|` (Section 3.2).
    pub fn sensitivity(&self) -> f64 {
        self.op.col_abs_sums().into_iter().fold(0.0_f64, f64::max)
    }

    /// Squared sum `Σ_ij W_ij²`, which drives the NOD error (Eq. 4).
    pub fn squared_sum(&self) -> f64 {
        self.op.frobenius_sq()
    }

    /// Cached singular value decomposition of `W`.
    ///
    /// Dense workloads use the dense SVD (Jacobi below the size threshold,
    /// Gram above); structured workloads always take the operator-aware
    /// Gram path, which never densifies `W`, **and return only the top-ρ
    /// factors** (ρ = numerical rank): the Lemma 3 initializer never reads
    /// the null space, and structured workloads are routinely massively
    /// rank-deficient (`m` coarse range queries of rank ≤ cuts+1), so the
    /// trailing zero columns would be pure dead weight in the cache.
    pub fn svd(&self) -> Arc<Svd> {
        let mut guard = self.svd_cache.lock();
        if let Some(svd) = guard.as_ref() {
            return Arc::clone(svd);
        }
        let svd = Arc::new(match self.structure {
            WorkloadStructure::Dense => {
                Svd::compute(&self.matrix()).expect("workload entries are finite")
            }
            _ => Svd::compute_op(self.op.as_ref())
                .expect("workload entries are finite")
                .truncated_to_rank(),
        });
        *guard = Some(Arc::clone(&svd));
        Arc::clone(guard.as_ref().expect("just inserted"))
    }

    /// Numerical rank of `W` (cached).
    pub fn rank(&self) -> usize {
        self.svd().rank()
    }

    /// Non-zero singular values of `W`, descending — the paper's
    /// "eigenvalues" `{λ₁, …, λᵣ}` (Section 3.3).
    pub fn singular_values(&self) -> Vec<f64> {
        self.svd().nonzero_singular_values()
    }

    /// Content hash of the workload matrix (cached; clones share it).
    ///
    /// The hash covers the dimensions and every logical entry's bit
    /// pattern — walked through the operator, so dense, sparse, and
    /// interval constructions of the same `W` hash identically without
    /// the structured forms ever densifying. It is the key of the
    /// engine's compiled-strategy cache.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut guard = self.fingerprint_cache.lock();
        if let Some(fp) = *guard {
            return fp;
        }
        let (m, n) = (self.op.rows(), self.op.cols());
        let mut h = FNV_OFFSET;
        h = fnv1a_u64(h, m as u64);
        h = fnv1a_u64(h, n as u64);
        let mut buf = vec![0.0; n];
        for i in 0..m {
            self.op.fill_row(i, &mut buf);
            for &v in &buf {
                h = fnv1a_u64(h, v.to_bits());
            }
        }
        let fp = Fingerprint(h);
        *guard = Some(fp);
        fp
    }
}

impl PartialEq for Workload {
    /// Logical (entry-wise) equality, independent of representation.
    fn eq(&self, other: &Self) -> bool {
        op_logical_eq(self.op.as_ref(), other.op.as_ref())
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("shape", &(self.num_queries(), self.domain_size()))
            .field("structure", &self.structure)
            .field("op", &self.op)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intro_workload() -> Workload {
        Workload::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ])
        .unwrap()
    }

    fn intro_intervals() -> Workload {
        Workload::from_intervals(4, vec![(0, 3), (0, 1), (2, 3)]).unwrap()
    }

    #[test]
    fn dimensions_and_answers() {
        let w = intro_workload();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.domain_size(), 4);
        assert_eq!(w.structure(), WorkloadStructure::Dense);
        let x = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
        let ans = w.answer(&x).unwrap();
        assert_eq!(ans, vec![174_600.0, 101_700.0, 72_900.0]);
        assert_eq!(
            w.answer(&[1.0]),
            Err(WorkloadError::DomainMismatch {
                expected: 4,
                got: 1
            })
        );
    }

    #[test]
    fn interval_form_answers_identically() {
        let dense = intro_workload();
        let implicit = intro_intervals();
        assert_eq!(implicit.structure(), WorkloadStructure::Intervals);
        assert_eq!(dense, implicit);
        let x = [82_700.0, 19_000.0, 67_000.0, 5_900.0];
        assert_eq!(dense.answer(&x).unwrap(), implicit.answer(&x).unwrap());
        assert_eq!(dense.sensitivity(), implicit.sensitivity());
        assert_eq!(dense.squared_sum(), implicit.squared_sum());
    }

    #[test]
    fn sensitivity_matches_paper_example() {
        // q1 affects every state once; q2/q3 split them → Δ' = 2.
        assert_eq!(intro_workload().sensitivity(), 2.0);
        assert_eq!(intro_intervals().sensitivity(), 2.0);
    }

    #[test]
    fn rank_of_dependent_queries() {
        // q1 = q2 + q3, so the rank is 2 despite 3 queries — on both the
        // dense SVD path and the operator Gram path.
        assert_eq!(intro_workload().rank(), 2);
        assert_eq!(intro_intervals().rank(), 2);
    }

    #[test]
    fn svd_cache_is_shared() {
        let w = intro_workload();
        let a = w.svd();
        let b = w.svd();
        assert!(Arc::ptr_eq(&a, &b));
        // Clones share the cache too.
        let c = w.clone().svd();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn from_queries_round_trip() {
        let queries = vec![
            LinearQuery::total(3),
            LinearQuery::point(3, 1).unwrap(),
            LinearQuery::range(3, 0, 1).unwrap(),
        ];
        let w = Workload::from_queries(&queries).unwrap();
        assert_eq!(w.num_queries(), 3);
        assert_eq!(w.matrix().row(2), &[1.0, 1.0, 0.0]);

        let mismatched = vec![LinearQuery::total(3), LinearQuery::total(4)];
        assert_eq!(
            Workload::from_queries(&mismatched),
            Err(WorkloadError::InconsistentQueries {
                expected: 3,
                got: 4
            })
        );
        assert_eq!(Workload::from_queries(&[]), Err(WorkloadError::Empty));
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        assert_eq!(Workload::new(m), Err(WorkloadError::NonFinite));
    }

    #[test]
    fn interval_validation() {
        assert_eq!(
            Workload::from_intervals(4, vec![]),
            Err(WorkloadError::Empty)
        );
        assert!(Workload::from_intervals(4, vec![(2, 5)]).is_err());
        assert!(Workload::from_intervals(4, vec![(3, 1)]).is_err());
    }

    #[test]
    fn fingerprint_identifies_content() {
        let a = intro_workload();
        let b = intro_workload();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Cached and shared across clones.
        assert_eq!(a.clone().fingerprint(), a.fingerprint());

        // Any entry change moves the fingerprint.
        let mut m = (*a.matrix()).clone();
        m.set(0, 0, 2.0);
        let c = Workload::new(m).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());

        // Same entries, different shape: 1x4 vs 4x1.
        let flat = Workload::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).unwrap();
        let tall = Workload::from_rows(&[&[1.0][..], &[1.0][..], &[1.0][..], &[1.0][..]]).unwrap();
        assert_ne!(flat.fingerprint(), tall.fingerprint());
    }

    #[test]
    fn fingerprint_is_representation_independent() {
        let dense = intro_workload();
        let implicit = intro_intervals();
        let sparse = Workload::from_csr(CsrOp::from_dense(&dense.matrix())).unwrap();
        assert_eq!(dense.fingerprint(), implicit.fingerprint());
        assert_eq!(dense.fingerprint(), sparse.fingerprint());
        // And the forced-dense copy of a structured workload too.
        assert_eq!(
            implicit.to_dense_workload().fingerprint(),
            implicit.fingerprint()
        );
    }

    #[test]
    fn fingerprint_display_is_hex() {
        let fp = intro_workload().fingerprint();
        let s = fp.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(u64::from_str_radix(&s, 16).unwrap(), fp.as_u64());
    }

    #[test]
    fn singular_values_descending() {
        let w = intro_workload();
        let sv = w.singular_values();
        assert_eq!(sv.len(), 2);
        assert!(sv[0] >= sv[1]);
        assert!(sv[1] > 0.0);

        // Operator path agrees with the dense path.
        let sv2 = intro_intervals().singular_values();
        assert_eq!(sv2.len(), 2);
        for (a, b) in sv.iter().zip(sv2.iter()) {
            assert!((a - b).abs() < 1e-9, "σ mismatch {a} vs {b}");
        }
    }

    #[test]
    fn structured_svd_returns_only_top_factors() {
        // 4 interval queries of rank 3 over n = 16: the structured SVD
        // keeps exactly ρ = 3 triples (m×ρ and ρ×n factors), while the
        // dense path keeps the full min(m, n) width.
        let implicit =
            Workload::from_intervals(16, vec![(0, 15), (0, 7), (8, 15), (3, 5)]).unwrap();
        let svd = implicit.svd();
        assert_eq!(implicit.rank(), 3);
        assert_eq!(svd.singular_values.len(), 3);
        assert_eq!(svd.u.shape(), (4, 3));
        assert_eq!(svd.vt.shape(), (3, 16));
        // Rank, non-zero singular values, and the reconstruction agree
        // with the dense-path SVD of the same W.
        let dense = implicit.to_dense_workload();
        assert_eq!(dense.rank(), 3);
        let dsv = dense.singular_values();
        for (a, b) in implicit.singular_values().iter().zip(dsv.iter()) {
            assert!((a - b).abs() < 1e-9, "σ mismatch {a} vs {b}");
        }
        assert!(svd.reconstruct().approx_eq(&dense.matrix(), 1e-8));
    }

    #[test]
    fn structure_labels() {
        assert_eq!(WorkloadStructure::Dense.label(), "dense");
        assert_eq!(WorkloadStructure::Sparse.label(), "sparse");
        assert_eq!(WorkloadStructure::Intervals.label(), "intervals");
    }
}
