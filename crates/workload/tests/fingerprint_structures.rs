//! The fingerprint contract across representations: a workload's content
//! hash (and its answers, sensitivity, and norms) must be identical
//! whether `W` is stored dense, as CSR, or as implicit intervals — the
//! engine's strategy cache keys on this.

use lrm_linalg::operator::CsrOp;
use lrm_linalg::Matrix;
use lrm_workload::{Workload, WorkloadStructure};
use proptest::prelude::*;

/// Strategy: a domain size plus inclusive intervals over it.
fn intervals(
    rows: std::ops::Range<usize>,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    n.prop_flat_map(move |cols| {
        proptest::collection::vec((0..cols, 0..cols), rows.clone()).prop_map(move |pairs| {
            (
                cols,
                pairs
                    .into_iter()
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .collect(),
            )
        })
    })
}

fn dense_matrix_of(n: usize, ivs: &[(usize, usize)]) -> Matrix {
    let mut m = Matrix::zeros(ivs.len(), n);
    for (i, &(lo, hi)) in ivs.iter().enumerate() {
        m.row_mut(i)[lo..=hi].iter_mut().for_each(|v| *v = 1.0);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fingerprint_identical_across_representations(
        (n, ivs) in intervals(1..12, 1..32),
    ) {
        let implicit = Workload::from_intervals(n, ivs.clone()).unwrap();
        let dense_m = dense_matrix_of(n, &ivs);
        let dense = Workload::new(dense_m.clone()).unwrap();
        let sparse = Workload::from_csr(CsrOp::from_dense(&dense_m)).unwrap();

        prop_assert_eq!(implicit.structure(), WorkloadStructure::Intervals);
        prop_assert_eq!(dense.structure(), WorkloadStructure::Dense);
        prop_assert_eq!(sparse.structure(), WorkloadStructure::Sparse);

        // One fingerprint, three storages.
        prop_assert_eq!(implicit.fingerprint(), dense.fingerprint());
        prop_assert_eq!(implicit.fingerprint(), sparse.fingerprint());
        // …and the forced-dense copy of the implicit workload.
        prop_assert_eq!(
            implicit.to_dense_workload().fingerprint(),
            implicit.fingerprint()
        );

        // Logical equality agrees with the hash.
        prop_assert_eq!(&implicit, &dense);
        prop_assert_eq!(&implicit, &sparse);

        // Derived public quantities are representation-independent too.
        prop_assert_eq!(implicit.sensitivity(), dense.sensitivity());
        prop_assert_eq!(implicit.squared_sum(), dense.squared_sum());
        let x: Vec<f64> = (0..n).map(|j| (j as f64) * 0.31 - 1.0).collect();
        let a = implicit.answer(&x).unwrap();
        let b = dense.answer(&x).unwrap();
        let c = sparse.answer(&x).unwrap();
        for ((ai, bi), ci) in a.iter().zip(b.iter()).zip(c.iter()) {
            prop_assert!((ai - bi).abs() < 1e-10);
            prop_assert!((ai - ci).abs() < 1e-10);
        }
    }

    #[test]
    fn fingerprint_separates_different_workloads(
        (n, ivs) in intervals(2..10, 2..24),
    ) {
        let w = Workload::from_intervals(n, ivs.clone()).unwrap();
        // Perturb one interval (grow or shrink by one column).
        let mut other = ivs.clone();
        let (lo, hi) = other[0];
        other[0] = if hi + 1 < n {
            (lo, hi + 1)
        } else if lo < hi {
            (lo + 1, hi)
        } else if lo > 0 {
            (lo - 1, hi)
        } else {
            // Single full-domain interval over n = 1: nothing to perturb.
            return Ok(());
        };
        let v = Workload::from_intervals(n, other).unwrap();
        prop_assert_ne!(w.fingerprint(), v.fingerprint());
        prop_assert_ne!(&w, &v);
    }
}
