//! End-to-end Gaussian-mode serving (ISSUE 8 tentpole).
//!
//! * A **cross-ε batch** slices bit-identically to a reconstruction run
//!   outside the server: the combined workload compiled under the same
//!   options, answered with the batch's base lane (`substream(index, 0)`)
//!   at the weakest member budget plus each member's top-up lane
//!   (`substream(index, k + 1)`).
//! * Each member's noise is calibrated to its **own** budget — verified
//!   distributionally over hundreds of coalesced batches.
//! * Flavor mismatches (pure ↔ approx) are refused synchronously with a
//!   typed error, δ-exhaustion refuses like ε-exhaustion, and the
//!   ε-fragmented mode (`coalesce_across_eps(false)`) restores the
//!   pure scheduler's ε-keyed batching for baseline comparisons.
//!
//! Determinism notes are the same as `coalescing.rs`: batches close on
//! the count cap or the shutdown flush, never a timer, and settlement
//! runs in submission order within a batch.

use lrm_core::engine::{CompileOptions, Engine, MechanismKind, NoiseFlavor};
use lrm_core::mechanism::Mechanism;
use lrm_dp::rng::{derive_rng, substream};
use lrm_dp::{Budget, Epsilon};
use lrm_linalg::operator::densification_count;
use lrm_server::{AdmissionError, QuerySpec, Server, ServerError};
use lrm_workload::{Attribute, Schema, Workload};
use std::time::Duration;

const SEED: u64 = 0x6a05_51a4;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn approx(e: f64, d: f64) -> Budget {
    Budget::approx(eps(e), d).unwrap()
}

fn schema() -> Schema {
    Schema::single(Attribute::new("v", 0.0, 32.0, 32).unwrap())
}

fn data() -> Vec<f64> {
    (0..32).map(|i| ((i * 13) % 97) as f64).collect()
}

/// A Gaussian server over the Laplace kind: under `ApproxDp` it compiles
/// to the Gaussian noise-on-data baseline ("GM"), whose strategy is the
/// workload itself — no iterative solver, so the outside-the-server
/// reconstruction is exactly reproducible.
fn gaussian_server(max_batch: usize) -> Server {
    Server::builder(schema(), data())
        .mechanism(MechanismKind::Laplace)
        .compile_options(CompileOptions::with_flavor(NoiseFlavor::ApproxDp))
        .max_batch(max_batch)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap()
}

#[test]
fn cross_eps_slices_are_bit_identical_to_base_plus_topup_reconstruction() {
    let densify_before = densification_count();
    let server = gaussian_server(100);
    server.register_tenant_budget("a", approx(4.0, 1e-5));
    server.register_tenant_budget("b", approx(4.0, 1e-5));

    let spec_a = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (8.0, 24.0)],
    };
    let spec_b = QuerySpec::Prefixes {
        attr: 0,
        thresholds: vec![4.0, 32.0],
    };
    // Different ε, same δ: a pure scheduler would fragment these; the
    // δ-class key coalesces them into one batch (index 0).
    let loose = approx(0.5, 1e-6);
    let strict = approx(0.25, 1e-6);

    let (tickets, report) = server.serve(|client| {
        let ta = client.submit_budget("a", &spec_a, loose).unwrap();
        let tb = client.submit_budget("b", &spec_b, strict).unwrap();
        vec![ta, tb]
    });
    let releases: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(report.metrics.batches, 1);
    assert_eq!(report.metrics.coalesced_batches, 1);
    assert_eq!(report.metrics.gaussian_batches, 1);
    assert_eq!(report.metrics.cross_eps_batches, 1);
    assert_eq!(report.metrics.laplace_batches, 0);
    assert!(releases.iter().all(|r| r.coalesced() && r.batch_size == 2));
    assert_eq!(releases[0].batch_index, 0);
    assert_eq!(releases[0].mechanism, "GM");

    // Reconstruct both slices outside the server: the concatenated
    // workload under the same options, the base lane at the *weakest*
    // member budget (largest ε ⇒ smallest base σ), member k's top-up
    // from lane k + 1.
    let combined = Workload::from_intervals(
        32,
        vec![(0, 15), (8, 23), (0, 3), (0, 31)], // spec_a rows, then spec_b rows
    )
    .unwrap();
    let engine = Engine::default();
    let compiled = engine
        .compile(
            &combined,
            MechanismKind::Laplace,
            &CompileOptions::with_flavor(NoiseFlavor::ApproxDp),
        )
        .unwrap();
    for (k, (release, member)) in releases.iter().zip([loose, strict]).enumerate() {
        let full = compiled
            .answer_with_topup(
                &data(),
                loose, // base = the batch's largest-ε member
                member,
                &mut derive_rng(SEED, substream(0, 0)),
                &mut derive_rng(SEED, substream(0, k as u64 + 1)),
            )
            .unwrap();
        let span = if k == 0 { 0..2 } else { 2..4 };
        assert_eq!(release.answers, full[span].to_vec());
    }

    // Per-member (ε, δ) accounting: each release paid its own budget.
    assert!((releases[0].eps_spent.value() - 0.5).abs() < 1e-15);
    assert!((releases[1].eps_spent.value() - 0.25).abs() < 1e-15);
    assert!((releases[0].eps_remaining - 3.5).abs() < 1e-12);
    assert!((releases[1].eps_remaining - 3.75).abs() < 1e-12);
    assert!((releases[0].delta_spent - 1e-6).abs() < 1e-18);
    assert!((releases[0].delta_remaining - (1e-5 - 1e-6)).abs() < 1e-15);
    assert!((releases[1].delta_remaining - (1e-5 - 1e-6)).abs() < 1e-15);
    // The stricter member carries the worse (larger) error bound.
    assert!(releases[1].expected_avg_error > releases[0].expected_avg_error);

    // The Gaussian pipeline stayed structured end to end.
    assert_eq!(densification_count() - densify_before, 0);
}

#[test]
fn each_member_of_a_cross_eps_batch_gets_its_own_calibration() {
    // Distributional check that the top-up construction really yields
    // each member's own N(0, σ²(ε_k, δ)) marginal: serve many coalesced
    // (ε = 0.5, ε = 0.25) pairs of `Total` queries and compare the
    // sample variance of each member's error against the closed-form
    // bound the release itself reports. Deterministic under the pinned
    // seed.
    const ROUNDS: usize = 300;
    let server = gaussian_server(2);
    server.register_tenant_budget("lo", approx(200.0, 1e-2));
    server.register_tenant_budget("hi", approx(200.0, 1e-2));
    let spec = QuerySpec::Total;
    let loose = approx(0.5, 1e-6);
    let strict = approx(0.25, 1e-6);
    let exact: f64 = data().iter().sum();

    let (pairs, report) = server.serve(|client| {
        let mut pairs = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            // Submit the pair, then wait both: max_batch = 2 closes each
            // pair as its own cross-ε batch before the next is submitted.
            let tl = client.submit_budget("lo", &spec, loose).unwrap();
            let ts = client.submit_budget("hi", &spec, strict).unwrap();
            pairs.push((tl.wait().unwrap(), ts.wait().unwrap()));
        }
        pairs
    });
    assert_eq!(report.metrics.batches as usize, ROUNDS);
    assert_eq!(report.metrics.cross_eps_batches as usize, ROUNDS);
    assert!(pairs
        .iter()
        .all(|(l, s)| l.batch_size == 2 && s.batch_size == 2));

    let check = |label: &str, errors: &[f64], expected_var: f64| {
        let n = errors.len() as f64;
        let mean = errors.iter().sum::<f64>() / n;
        let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (n - 1.0);
        assert!(
            (var / expected_var - 1.0).abs() < 0.25,
            "{label}: sample variance {var:.3} vs calibrated {expected_var:.3}"
        );
        // Unbiased: the mean error is small next to the noise scale.
        assert!(
            mean.abs() < 4.0 * (expected_var / n).sqrt(),
            "{label}: mean error {mean:.3} too far from zero"
        );
    };
    // `Total` is a single query, so the per-release average-error bound
    // *is* the variance of its one answer.
    let loose_errors: Vec<f64> = pairs.iter().map(|(l, _)| l.answers[0] - exact).collect();
    let strict_errors: Vec<f64> = pairs.iter().map(|(_, s)| s.answers[0] - exact).collect();
    check("loose member", &loose_errors, pairs[0].0.expected_avg_error);
    check(
        "strict member",
        &strict_errors,
        pairs[0].1.expected_avg_error,
    );
    // And the strict member really is noisier.
    assert!(pairs[0].1.expected_avg_error > pairs[0].0.expected_avg_error);
}

#[test]
fn noise_model_mismatches_are_refused_synchronously() {
    // Pure submission against a Gaussian server.
    let gauss = gaussian_server(2);
    gauss.register_tenant_budget("a", approx(1.0, 1e-5));
    let (err, report) = gauss.serve(|client| {
        client
            .submit("a", &QuerySpec::Total, eps(0.5))
            .err()
            .unwrap()
    });
    assert!(matches!(
        err,
        ServerError::NoiseModel {
            flavor: NoiseFlavor::ApproxDp,
            delta,
        } if delta == 0.0
    ));
    // Nothing was enqueued, answered, or debited.
    assert_eq!(report.metrics.submitted, 0);
    assert_eq!(report.tenants[0].spent, 0.0);

    // Approx submission against a pure server.
    let pure = Server::builder(schema(), data())
        .seed(SEED)
        .build()
        .unwrap();
    pure.register_tenant("a", eps(1.0));
    let (err, report) = pure.serve(|client| {
        client
            .submit_budget("a", &QuerySpec::Total, approx(0.5, 1e-6))
            .err()
            .unwrap()
    });
    assert!(matches!(
        err,
        ServerError::NoiseModel {
            flavor: NoiseFlavor::PureDp,
            delta,
        } if delta == 1e-6
    ));
    assert_eq!(report.metrics.submitted, 0);
}

#[test]
fn approx_flavor_requires_a_gaussian_calibrated_mechanism() {
    // Kinds without an L2 calibration are refused at build, not at the
    // first request.
    let err = Server::builder(schema(), data())
        .mechanism(MechanismKind::Wavelet)
        .compile_options(CompileOptions::with_flavor(NoiseFlavor::ApproxDp))
        .build()
        .err()
        .unwrap();
    assert!(matches!(err, ServerError::Core(_)));
}

#[test]
fn fragmented_mode_restores_eps_keyed_batching() {
    let trace = |server: &Server| {
        server.register_tenant_budget("a", approx(4.0, 1e-4));
        let spec = QuerySpec::Total;
        let (tickets, report) = server.serve(|client| {
            vec![
                client.submit_budget("a", &spec, approx(0.5, 1e-6)).unwrap(),
                client
                    .submit_budget("a", &spec, approx(0.25, 1e-6))
                    .unwrap(),
                client.submit_budget("a", &spec, approx(0.5, 1e-6)).unwrap(),
            ]
        });
        let releases: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        (releases, report)
    };

    // Default: one δ-class batch holds all three despite two distinct ε.
    // (Rank-close is off: three identical `Total` rows stop growing the
    // estimated rank immediately, and this test is about keying, not the
    // rank rule.)
    let coalescing = Server::builder(schema(), data())
        .mechanism(MechanismKind::Laplace)
        .compile_options(CompileOptions::with_flavor(NoiseFlavor::ApproxDp))
        .rank_close(false)
        .max_batch(4)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    let (releases, report) = trace(&coalescing);
    assert_eq!(report.metrics.batches, 1);
    assert_eq!(report.metrics.cross_eps_batches, 1);
    assert!(releases.iter().all(|r| r.batch_size == 3));

    // ε-fragmented baseline: the pure scheduler's keying, two batches.
    let fragmented = Server::builder(schema(), data())
        .mechanism(MechanismKind::Laplace)
        .compile_options(CompileOptions::with_flavor(NoiseFlavor::ApproxDp))
        .coalesce_across_eps(false)
        .rank_close(false)
        .max_batch(4)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    let (releases, report) = trace(&fragmented);
    assert_eq!(report.metrics.batches, 2);
    assert_eq!(report.metrics.cross_eps_batches, 0);
    assert_eq!(report.metrics.gaussian_batches, 2);
    assert_eq!(releases[0].batch_size, 2); // the two ε = 0.5
    assert_eq!(releases[1].batch_size, 1); // the lone ε = 0.25
}

#[test]
fn distinct_deltas_never_share_a_batch() {
    // Cross-ε coalescing is within a δ-class only: the base-plus-top-up
    // construction needs one shared δ.
    let server = gaussian_server(4);
    server.register_tenant_budget("a", approx(4.0, 1e-4));
    let spec = QuerySpec::Total;
    let (tickets, report) = server.serve(|client| {
        vec![
            client.submit_budget("a", &spec, approx(0.5, 1e-6)).unwrap(),
            client.submit_budget("a", &spec, approx(0.5, 1e-7)).unwrap(),
        ]
    });
    let releases: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(report.metrics.batches, 2);
    assert_eq!(report.metrics.cross_eps_batches, 0);
    assert!(releases.iter().all(|r| r.batch_size == 1));
}

#[test]
fn a_refused_member_of_a_cross_eps_batch_is_withheld() {
    // Both members pass the advisory admission check, the batch answers,
    // but only the first settlement debit fits the tenant's ε — the
    // second slice is withheld with the sequential ledger's typed error,
    // and no δ is charged for it.
    let server = gaussian_server(2);
    server.register_tenant_budget("tight", approx(0.5, 1e-4));
    let spec = QuerySpec::Total;

    let (tickets, report) = server.serve(|client| {
        vec![
            client
                .submit_budget("tight", &spec, approx(0.5, 1e-6))
                .unwrap(),
            client
                .submit_budget("tight", &spec, approx(0.25, 1e-6))
                .unwrap(),
        ]
    });
    let mut outcomes = tickets.into_iter().map(|t| t.wait());
    let first = outcomes.next().unwrap().unwrap();
    assert!((first.eps_remaining - 0.0).abs() < 1e-12);
    assert!((first.delta_spent - 1e-6).abs() < 1e-18);
    assert!(matches!(
        outcomes.next().unwrap(),
        Err(ServerError::Admission(AdmissionError::Budget(_)))
    ));
    assert_eq!(report.metrics.answered, 1);
    assert_eq!(report.metrics.rejected_settlement, 1);
    assert_eq!(report.metrics.cross_eps_batches, 1);
    assert_eq!(report.tenants[0].releases, 1);
    assert!((report.tenants[0].spent - 0.5).abs() < 1e-12);
    assert!((report.tenants[0].delta_spent - 1e-6).abs() < 1e-18);
}

#[test]
fn delta_exhaustion_refuses_even_with_ample_eps() {
    // δ is a first-class budget column: two releases fit the tenant's
    // 2e-6, the third is refused at admission although 99+ ε remains.
    let server = gaussian_server(1);
    server.register_tenant_budget("d", approx(100.0, 2e-6));
    let spec = QuerySpec::Total;
    let request = approx(0.5, 1e-6);

    let (outcomes, report) = server.serve(|client| {
        (0..3)
            .map(|_| client.submit_budget("d", &spec, request).unwrap().wait())
            .collect::<Vec<_>>()
    });
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_ok());
    assert!(matches!(
        &outcomes[2],
        Err(ServerError::Admission(AdmissionError::Budget(_)))
    ));
    assert_eq!(report.metrics.answered, 2);
    assert_eq!(report.metrics.rejected_admission, 1);
    assert!((report.tenants[0].delta_spent - 2e-6).abs() < 1e-18);
    assert!((report.tenants[0].spent - 1.0).abs() < 1e-12);
}

#[test]
fn gaussian_noise_streams_never_repeat_across_batches() {
    // Same workload, same budget, different batch index ⇒ different
    // substream lanes ⇒ different noise.
    let server = gaussian_server(1);
    server.register_tenant_budget("a", approx(4.0, 1e-4));
    let spec = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (16.0, 32.0)],
    };
    let request = approx(0.5, 1e-6);
    let (first, _) =
        server.serve(|client| client.submit_budget("a", &spec, request).unwrap().wait());
    let (second, _) =
        server.serve(|client| client.submit_budget("a", &spec, request).unwrap().wait());
    let (first, second) = (first.unwrap(), second.unwrap());
    assert_eq!(first.batch_index, 0);
    assert_eq!(second.batch_index, 1);
    assert_ne!(first.answers, second.answers);
}
