//! Scheduler rank-growth close + background compile farm (ISSUE 6).
//!
//! * A batch closes as soon as a member stops growing the estimated
//!   combined rank — without waiting out the window and far below the
//!   `max_batch` ceiling — and the member that saturated it still rides
//!   along (shares the noise draw).
//! * With the close disabled, the same trace coalesces into one big
//!   batch at shutdown, exactly like the pre-ISSUE-6 scheduler.
//! * The farm observes every admitted shape, drains the queue by
//!   popularity at shutdown, and its work lands in the shared engine
//!   cache.
//! * The engine's warm-start counters (warm hits / store loads /
//!   evictions) surface through `ServerReport::cache`.

use lrm_core::engine::MechanismKind;
use lrm_dp::Epsilon;
use lrm_server::{QuerySpec, Server};
use lrm_workload::{Attribute, Schema};
use std::time::Duration;

const SEED: u64 = 0xfa51_11e6;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn schema(n: usize) -> Schema {
    Schema::single(Attribute::new("v", 0.0, n as f64, n).unwrap())
}

fn data(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13) % 97) as f64).collect()
}

/// The near-duplicate dashboard panel of the engine's warm-start tests,
/// as a value-range spec: `cuts` equal ranges plus four quarter rollups
/// plus the total, over `n` unit-width buckets.
fn panel_spec(n: usize, cuts: usize) -> QuerySpec {
    let mut ranges: Vec<(f64, f64)> = (0..cuts)
        .map(|c| ((c * n / cuts) as f64, ((c + 1) * n / cuts) as f64))
        .collect();
    for q in 0..4 {
        ranges.push(((q * n / 4) as f64, ((q + 1) * n / 4) as f64));
    }
    ranges.push((0.0, n as f64));
    QuerySpec::Ranges { attr: 0, ranges }
}

#[test]
fn rank_saturation_closes_batches_before_the_window() {
    let server = Server::builder(schema(32), data(32))
        .max_batch(100)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));
    let spec = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (16.0, 32.0)],
    };

    // Four identical submissions: each pair saturates the rank estimate
    // on its second member, so the scheduler closes two batches of two
    // immediately — the 60 s window never elapses, the test returning
    // quickly is itself the proof.
    let (tickets, report) = server.serve(|client| {
        (0..4)
            .map(|_| client.submit("a", &spec, eps(0.5)).unwrap())
            .collect::<Vec<_>>()
    });
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(report.metrics.batches, 2);
    assert_eq!(report.metrics.coalesced_batches, 2);
    assert_eq!(report.metrics.rank_closed_batches, 2);
    assert_eq!(report.metrics.max_occupancy, 2);
}

#[test]
fn disabling_the_rank_close_restores_window_batching() {
    let server = Server::builder(schema(32), data(32))
        .max_batch(100)
        .rank_close(false)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));
    let spec = QuerySpec::Total;

    let (tickets, report) = server.serve(|client| {
        (0..4)
            .map(|_| client.submit("a", &spec, eps(0.5)).unwrap())
            .collect::<Vec<_>>()
    });
    for t in tickets {
        t.wait().unwrap();
    }
    // One open batch, flushed by shutdown with all four members.
    assert_eq!(report.metrics.batches, 1);
    assert_eq!(report.metrics.max_occupancy, 4);
    assert_eq!(report.metrics.rank_closed_batches, 0);
}

#[test]
fn members_that_grow_the_rank_keep_the_batch_open() {
    let server = Server::builder(schema(32), data(32))
        .max_batch(100)
        .coalesce_window(Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    // Each spec brings fresh boundary points: the rank estimate grows on
    // every member, so the batch stays open until the shutdown flush.
    let (tickets, report) = server.serve(|client| {
        vec![
            client
                .submit(
                    "a",
                    &QuerySpec::Ranges {
                        attr: 0,
                        ranges: vec![(0.0, 16.0)],
                    },
                    eps(0.5),
                )
                .unwrap(),
            client
                .submit(
                    "a",
                    &QuerySpec::Ranges {
                        attr: 0,
                        ranges: vec![(8.0, 24.0)],
                    },
                    eps(0.5),
                )
                .unwrap(),
            client
                .submit(
                    "a",
                    &QuerySpec::Ranges {
                        attr: 0,
                        ranges: vec![(4.0, 28.0)],
                    },
                    eps(0.5),
                )
                .unwrap(),
        ]
    });
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(report.metrics.batches, 1);
    assert_eq!(report.metrics.max_occupancy, 3);
    assert_eq!(report.metrics.rank_closed_batches, 0);
}

#[test]
fn farm_precompiles_every_observed_shape() {
    let server = Server::builder(schema(32), data(32))
        .max_batch(1)
        .workers(2)
        .precompile_workers(1)
        .compile_budget(Duration::from_secs(10))
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    let specs = [
        QuerySpec::Total,
        QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![8.0, 16.0, 24.0],
        },
        QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 16.0), (16.0, 32.0)],
        },
    ];
    let (tickets, report) = server.serve(|client| {
        let mut tickets = Vec::new();
        for spec in &specs {
            // The popular shape: submitted twice, the others once.
            tickets.push(client.submit("a", spec, eps(0.25)).unwrap());
        }
        tickets.push(client.submit("a", &specs[0], eps(0.25)).unwrap());
        tickets
    });
    for t in tickets {
        t.wait().unwrap();
    }
    // Three distinct shapes observed (the repeat bumps popularity only),
    // and the shutdown drain precompiled every one inside the budget.
    assert_eq!(report.metrics.farm_shapes, 3);
    assert_eq!(report.metrics.farm_precompiled, 3);
    assert!(report.metrics.farm_compile_time <= Duration::from_secs(10));
    assert_eq!(report.metrics.answered, 4);
}

#[test]
fn an_exhausted_budget_stops_the_farm() {
    let server = Server::builder(schema(32), data(32))
        .max_batch(1)
        .workers(2)
        .precompile_workers(1)
        .compile_budget(Duration::ZERO)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    let (ticket, report) =
        server.serve(|client| client.submit("a", &QuerySpec::Total, eps(0.25)).unwrap());
    ticket.wait().unwrap();
    // The shape was observed, but a zero budget precompiles nothing —
    // and the serving path answered regardless.
    assert_eq!(report.metrics.farm_shapes, 1);
    assert_eq!(report.metrics.farm_precompiled, 0);
    assert_eq!(report.metrics.answered, 1);
}

#[test]
fn warm_start_counters_surface_in_the_server_report() {
    let server = Server::builder(schema(64), data(64))
        .mechanism(MechanismKind::Lrm)
        .max_batch(1)
        .workers(1)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    // Two near-duplicate dashboard panels (33 vs 34 cuts in spirit; 15 vs
    // 16 here), answered one after the other: the second compile warm-
    // starts from the first through the engine's similarity index, and
    // the counters ride out through the report.
    let (result, report) = server.serve(|client| {
        let a = client
            .submit("a", &panel_spec(64, 15), eps(0.5))
            .unwrap()
            .wait();
        let b = client
            .submit("a", &panel_spec(64, 16), eps(0.5))
            .unwrap()
            .wait();
        (a, b)
    });
    let (a, b) = result;
    assert_eq!(a.unwrap().answers.len(), 20);
    assert_eq!(b.unwrap().answers.len(), 21);
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.cache.warm_hits, 1);
    assert_eq!(report.cache.store_loads, 0); // no spill dir configured
    assert_eq!(report.cache.evictions, 0);
    assert_eq!(report.metrics.answered, 2);
}
