//! Fault containment: worker supervision + quarantine, compile-deadline
//! degraded mode, bounded admission, bounded waits, and durable-ledger
//! restart resumes (ISSUE 7).
//!
//! Failpoint-driven tests share the process-global registry of
//! `lrm-testing`, so every test here serializes on one mutex and resets
//! the registry on entry.

use lrm_dp::Epsilon;
use lrm_server::{QuerySpec, Server, ServerError};
use lrm_testing::{arm, reset, FailAction, FireRule};
use lrm_workload::{Attribute, Schema};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

const SEED: u64 = 0xfa17_70e5;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn schema(n: usize) -> Schema {
    Schema::single(Attribute::new("v", 0.0, n as f64, n).unwrap())
}

fn data(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 7) % 53) as f64).collect()
}

/// Serializes failpoint tests (the registry is process-global) and
/// quiets the default panic printout for injected panics — they are the
/// expected behavior under test, not noise worth a backtrace.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                default(info);
            }
        }));
    });
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    guard
}

#[test]
fn worker_panic_quarantines_the_shape_and_the_pool_survives() {
    let _guard = serialized();
    arm(
        "server::worker::panic",
        FailAction::Panic,
        FireRule::Once { at: 1 },
    );

    let server = Server::builder(schema(32), data(32))
        .max_batch(1)
        .coalesce_window(Duration::ZERO)
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));
    let crashing = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (16.0, 32.0)],
    };

    let (outcomes, report) = server.serve(|client| {
        // First submission hits the armed panic: contained, quarantined.
        let first = client.submit("a", &crashing, eps(0.5)).unwrap().wait();
        // Same shape again: refused at admission, no worker touched.
        let again = client.submit("a", &crashing, eps(0.5)).unwrap().wait();
        // A different shape still answers — the pool never went empty.
        let other = client
            .submit("a", &QuerySpec::Total, eps(0.5))
            .unwrap()
            .wait();
        (first, again, other)
    });

    let (first, again, other) = outcomes;
    let shape = match first {
        Err(ServerError::Quarantined { shape }) => shape,
        other => panic!("expected a quarantine failure, got {other:?}"),
    };
    assert_eq!(again, Err(ServerError::Quarantined { shape }));
    assert!(
        other.is_ok(),
        "pool died after a contained panic: {other:?}"
    );
    assert_eq!(report.metrics.worker_respawns, 1);
    assert_eq!(report.metrics.quarantined_shapes, 1);
    assert_eq!(report.metrics.failed, 2);
    assert_eq!(report.metrics.answered, 1);
    // The panicked member's budget: its intent was never begun (the
    // panic fired before reservation), so only the answered release and
    // nothing else is spent.
    assert!((report.tenants[0].spent - 0.5).abs() < 1e-12);
}

#[test]
fn the_last_worker_never_retires_whatever_the_panic_budget_says() {
    let _guard = serialized();
    // Every batch panics: a one-worker pool with a panic budget of 1
    // would retire its only slot after the first job — unless the floor
    // holds. It must keep answering (failing) every subsequent batch.
    arm("server::worker::panic", FailAction::Panic, FireRule::Always);

    let server = Server::builder(schema(16), data(16))
        .max_batch(1)
        .coalesce_window(Duration::ZERO)
        .workers(1)
        .worker_panic_budget(1)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    let (outcomes, report) = server.serve(|client| {
        // Three shapes with distinct prepared rows, so none is caught by
        // the quarantine of an earlier one — each must reach a worker.
        let specs = [
            QuerySpec::Total,
            QuerySpec::Ranges {
                attr: 0,
                ranges: vec![(0.0, 8.0)],
            },
            QuerySpec::Ranges {
                attr: 0,
                ranges: vec![(4.0, 12.0)],
            },
        ];
        specs
            .iter()
            .map(|s| client.submit("a", s, eps(0.5)).unwrap().wait())
            .collect::<Vec<_>>()
    });

    // Every ticket resolved (none hung on a dead pool), every batch was
    // picked up by the surviving worker, and nothing was spent.
    assert_eq!(outcomes.len(), 3);
    for outcome in outcomes {
        assert!(matches!(outcome, Err(ServerError::Quarantined { .. })));
    }
    assert_eq!(report.metrics.worker_respawns, 3);
    assert_eq!(report.tenants[0].spent, 0.0);
}

#[test]
fn compile_deadline_overrun_degrades_to_laplace_at_the_same_eps() {
    let _guard = serialized();
    // Stall every ALM outer iteration long enough to blow the deadline.
    arm(
        "core::alm::stall",
        FailAction::SleepMs(100),
        FireRule::Always,
    );

    let server = Server::builder(schema(32), data(32))
        .max_batch(1)
        .coalesce_window(Duration::ZERO)
        .workers(1)
        .compile_deadline(Duration::from_millis(30))
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(2.0));

    let (outcome, report) = server.serve(|client| {
        client
            .submit(
                "a",
                &QuerySpec::Ranges {
                    attr: 0,
                    ranges: vec![(0.0, 16.0), (8.0, 24.0), (16.0, 32.0)],
                },
                eps(0.5),
            )
            .unwrap()
            .wait()
    });

    let release = outcome.unwrap();
    assert!(release.degraded, "expected the degraded-mode fallback");
    assert_eq!(release.mechanism, "LM");
    assert_eq!(release.answers.len(), 3);
    // Same ε as requested — degradation trades error, never privacy.
    assert_eq!(release.eps_spent, eps(0.5));
    assert!((release.eps_remaining - 1.5).abs() < 1e-12);
    assert_eq!(report.metrics.degraded_releases, 1);
    // The shape was handed to the farm for a background recompile.
    assert_eq!(report.metrics.farm_shapes, 1);
}

#[test]
fn bounded_admission_sheds_synchronously_at_the_cap() {
    let _guard = serialized();
    let server = Server::builder(schema(16), data(16))
        .max_batch(8)
        .coalesce_window(Duration::from_secs(30))
        .workers(1)
        .max_queue_depth(1)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(4.0));

    let (outcomes, report) = server.serve(|client| {
        // First fills the only queue slot (it sits in the 30 s window);
        // the second is shed synchronously.
        let first = client.submit("a", &QuerySpec::Total, eps(0.5)).unwrap();
        let shed = client.submit("a", &QuerySpec::Total, eps(0.5));
        (first, shed)
    });
    let (first, shed) = outcomes;
    match shed {
        Err(ServerError::Overloaded { retry_after }) => {
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The admitted request still answered at shutdown.
    assert!(first.wait().is_ok());
    assert_eq!(report.metrics.shed, 1);
    assert_eq!(report.metrics.submitted, 1);
    assert_eq!(report.metrics.answered, 1);
}

#[test]
fn wait_timeout_distinguishes_in_flight_from_resolved() {
    let _guard = serialized();
    let server = Server::builder(schema(16), data(16))
        .max_batch(8)
        .coalesce_window(Duration::from_secs(30))
        .workers(1)
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(1.0));

    let (ticket, _report) = server.serve(|client| {
        let ticket = client.submit("a", &QuerySpec::Total, eps(0.5)).unwrap();
        // Parked in the long coalescing window: a bounded wait returns
        // None (still in flight) instead of blocking 30 s.
        assert!(ticket.wait_timeout(Duration::from_millis(50)).is_none());
        ticket
        // Dropping the client flushes the window at shutdown.
    });
    match ticket.wait_timeout(Duration::from_secs(10)) {
        Some(Ok(release)) => assert_eq!(release.answers.len(), 1),
        other => panic!("expected the flushed release, got {other:?}"),
    }
}

#[test]
fn durable_ledgers_and_noise_epochs_survive_a_restart() {
    let _guard = serialized();
    let dir = std::env::temp_dir().join(format!("lrm_faults_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let build = || {
        Server::builder(schema(16), data(16))
            .max_batch(1)
            .coalesce_window(Duration::ZERO)
            .workers(1)
            .seed(SEED) // pinned: the epoch file is what keeps streams apart
            .state_dir(&dir)
            .build()
            .unwrap()
    };

    // First "process": spend 0.4 of 1.0.
    let first_index;
    {
        let server = build();
        let resume = server.try_register_tenant("acme", eps(1.0)).unwrap();
        assert!(!resume.resumed);
        let (outcome, _) = server.serve(|client| {
            client
                .submit("acme", &QuerySpec::Total, eps(0.4))
                .unwrap()
                .wait()
        });
        let release = outcome.unwrap();
        first_index = release.batch_index;
        assert_eq!(first_index >> 32, 1, "first durable run is epoch 1");
    }

    // Restart over the same directory: the spend is remembered, the
    // batch indices (noise-stream labels) come from a fresh epoch.
    let server = build();
    let resume = server.try_register_tenant("acme", eps(1.0)).unwrap();
    assert!(resume.resumed);
    assert!(!resume.corrupted);
    assert!((resume.spent - 0.4).abs() < 1e-12);
    let (outcomes, report) = server.serve(|client| {
        let ok = client
            .submit("acme", &QuerySpec::Total, eps(0.4))
            .unwrap()
            .wait();
        // 0.8 spent across two processes: a third 0.4 must be refused.
        let refused = client
            .submit("acme", &QuerySpec::Total, eps(0.4))
            .unwrap()
            .wait();
        (ok, refused)
    });
    let (ok, refused) = outcomes;
    let release = ok.unwrap();
    assert_eq!(release.batch_index >> 32, 2, "restart claimed epoch 2");
    assert_ne!(release.batch_index, first_index);
    assert!((release.eps_remaining - 0.2).abs() < 1e-12);
    assert!(matches!(refused, Err(ServerError::Admission(_))));
    assert_eq!(report.metrics.ledger_replays, 1);
    assert!((report.tenants[0].spent - 0.8).abs() < 1e-12);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_between_noise_and_settlement_replays_as_spent() {
    let _guard = serialized();
    let dir = std::env::temp_dir().join(format!("lrm_faults_settle_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The worker draws noise, then "crashes" before settling. The
    // durable intent must make the restart charge the tenant anyway —
    // the noise existed, so the conservative resolution is spent.
    arm(
        "server::settle::crash",
        FailAction::Panic,
        FireRule::Once { at: 1 },
    );
    {
        let server = Server::builder(schema(16), data(16))
            .max_batch(1)
            .coalesce_window(Duration::ZERO)
            .workers(1)
            .seed(SEED)
            .state_dir(&dir)
            .build()
            .unwrap();
        server.register_tenant("acme", eps(1.0));
        let (outcome, report) = server.serve(|client| {
            client
                .submit("acme", &QuerySpec::Total, eps(0.6))
                .unwrap()
                .wait()
        });
        // The member itself failed (supervisor quarantined it) …
        assert!(matches!(outcome, Err(ServerError::Quarantined { .. })));
        // … and its ε is reserved, not refunded: settled spend is still
        // zero in this process, but nothing of the 0.6 is grantable.
        assert_eq!(report.tenants[0].spent, 0.0);
        assert_eq!(report.metrics.worker_respawns, 1);
    }

    let server = Server::builder(schema(16), data(16))
        .workers(1)
        .seed(SEED)
        .state_dir(&dir)
        .build()
        .unwrap();
    let resume = server.try_register_tenant("acme", eps(1.0)).unwrap();
    assert!(resume.resumed);
    // The unsettled intent replayed as spent: over-charge, never under.
    assert!((resume.recovered_pending - 0.6).abs() < 1e-12);
    assert!((resume.spent - 0.6).abs() < 1e-12);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_settle_crash_on_a_gaussian_server_replays_both_budget_columns() {
    let _guard = serialized();
    let dir = std::env::temp_dir().join(format!("lrm_faults_delta_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Same crash window as the pure test — after the Gaussian draw,
    // before settlement — but the intent now reserves (ε, δ). The
    // restart must fold BOTH columns into the spend: an unsettled δ
    // reservation that silently evaporated would let the tenant exceed
    // its δ across process lifetimes.
    arm(
        "server::settle::crash",
        FailAction::Panic,
        FireRule::Once { at: 1 },
    );
    let build = || {
        Server::builder(schema(16), data(16))
            .mechanism(lrm_core::engine::MechanismKind::Laplace)
            .compile_options(lrm_core::engine::CompileOptions::with_flavor(
                lrm_core::engine::NoiseFlavor::ApproxDp,
            ))
            .max_batch(1)
            .coalesce_window(Duration::ZERO)
            .workers(1)
            .seed(SEED)
            .state_dir(&dir)
            .build()
            .unwrap()
    };
    let total = lrm_dp::Budget::approx(eps(1.0), 1e-5).unwrap();
    let request = lrm_dp::Budget::approx(eps(0.6), 4e-6).unwrap();
    {
        let server = build();
        server.register_tenant_budget("acme", total);
        let (outcome, report) = server.serve(|client| {
            client
                .submit_budget("acme", &QuerySpec::Total, request)
                .unwrap()
                .wait()
        });
        assert!(matches!(outcome, Err(ServerError::Quarantined { .. })));
        assert_eq!(report.tenants[0].spent, 0.0);
        assert_eq!(report.tenants[0].delta_spent, 0.0);
    }

    let server = build();
    let resume = server.try_register_tenant_budget("acme", total).unwrap();
    assert!(resume.resumed);
    assert!(!resume.corrupted);
    assert!((resume.recovered_pending - 0.6).abs() < 1e-12);
    assert!((resume.spent - 0.6).abs() < 1e-12);
    assert!((resume.recovered_pending_delta - 4e-6).abs() < 1e-18);
    assert!((resume.delta_spent - 4e-6).abs() < 1e-18);

    // The replayed δ binds admission on its own: 6e-6 of δ headroom
    // cannot cover a 7e-6 release even though its ε = 0.3 would fit …
    let too_much_delta = lrm_dp::Budget::approx(eps(0.3), 7e-6).unwrap();
    let (refused, _) = server.serve(|client| {
        client
            .submit_budget("acme", &QuerySpec::Total, too_much_delta)
            .unwrap()
            .wait()
    });
    assert!(matches!(refused, Err(ServerError::Admission(_))));
    // … while a release inside both remainders is still granted.
    let fits = lrm_dp::Budget::approx(eps(0.4), 5e-6).unwrap();
    let (granted, report) = server.serve(|client| {
        client
            .submit_budget("acme", &QuerySpec::Total, fits)
            .unwrap()
            .wait()
    });
    let release = granted.unwrap();
    assert!((release.eps_remaining - 0.0).abs() < 1e-12);
    assert!((release.delta_remaining - 1e-6).abs() < 1e-15);
    assert!((report.tenants[0].delta_spent - 9e-6).abs() < 1e-15);

    let _ = std::fs::remove_dir_all(&dir);
}
