//! End-to-end trace audit: a real serve runs under a [`Memory`]
//! subscriber, then every span and event the lifecycle emitted is
//! checked three ways —
//!
//! 1. **Payload audit**: every field key is on the documented
//!    allowlist, every string value is a short label (never a data
//!    blob), and the rendered JSON lines contain no arrays. Together
//!    with `lrm_obs::Value` having no bulk `From` impls, this is the
//!    "span/event payloads carry only data-independent values"
//!    invariant, checked over the wire format.
//! 2. **Phase decomposition**: each `request.complete` event's
//!    coalesce/queue/compile/noise/settle phases sum exactly to its
//!    `total_ns`, and the totals across all requests agree with the
//!    metrics histogram's `latency_sum` within 5%.
//! 3. **Attribution**: every batch has a `batch.close` event with a
//!    valid close reason and a `batch.compile` span with a valid cache
//!    outcome on the same trace, and the ALM solver reported at least
//!    one iteration for the cold compile.
//!
//! The subscriber registry is process-global, so this file holds a
//! single test.

use lrm_core::engine::MechanismKind;
use lrm_dp::Epsilon;
use lrm_obs::{Memory, Record, Value};
use lrm_server::{QuerySpec, Server};
use lrm_workload::{Attribute, Schema};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Every field key the serving stack is allowed to emit. A new traced
/// field must be reviewed for data-independence and added here.
const ALLOWED_KEYS: &[&str] = &[
    // request lifecycle
    "tenant",
    "shard",
    "rows",
    "eps",
    "delta",
    "reason",
    "batch",
    "coalesce_ns",
    "queue_ns",
    "compile_ns",
    "noise_ns",
    "settle_ns",
    "total_ns",
    "degraded",
    // batch lifecycle
    "requests",
    "gaussian",
    "distinct_eps",
    // compile attribution
    "cache",
    "mechanism",
    "compile_seconds",
    "strategy_rank",
    "alm_iterations",
    "warm_seed_fingerprint",
    "warm_profile_distance",
    "warm_iterations_saved",
    "warm_cross_flavor",
    // solver telemetry
    "outer",
    "tau",
    "beta",
];

const ALLOWED_NAMES: &[&str] = &[
    "request.submit",
    "request.reject",
    "request.complete",
    "batch.close",
    "batch.serve",
    "batch.compile",
    "batch.noise",
    "alm.iteration",
];

fn fields(record: &Record) -> &[(&'static str, Value)] {
    match record {
        Record::Span(s) => &s.fields,
        Record::Event(e) => &e.fields,
    }
}

fn trace_of(record: &Record) -> u64 {
    match record {
        Record::Span(s) => s.trace,
        Record::Event(e) => e.trace,
    }
}

fn get_u64(record: &Record, key: &str) -> Option<u64> {
    fields(record)
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(u) => Some(*u),
            _ => None,
        })
}

fn get_str<'a>(record: &'a Record, key: &str) -> Option<&'a str> {
    fields(record)
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        })
}

/// A payload string must be a short label (a mechanism name, a close
/// reason, a tenant id) — never serialized data.
fn is_short_label(s: &str) -> bool {
    s.len() <= 32
        && s.chars()
            .all(|c| c.is_alphanumeric() || "._-+γ".contains(c))
}

#[test]
fn serve_traces_decompose_latency_and_carry_no_data() {
    let schema = Schema::single(Attribute::new("v", 0.0, 32.0, 32).unwrap());
    let data: Vec<f64> = (0..32).map(|i| 40.0 + (i as f64) * 3.0).collect();
    let server = Server::builder(schema, data)
        .mechanism(MechanismKind::Lrm)
        .coalesce_window(Duration::from_millis(4))
        .max_batch(4)
        .workers(2)
        .seed(7)
        .build()
        .unwrap();
    server.register_tenant("acme", Epsilon::new(4.0).unwrap());

    let sink = Arc::new(Memory::default());
    lrm_obs::install(sink.clone());
    let (answered, report) = server.serve(|client| {
        let spec = QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 16.0), (16.0, 32.0)],
        };
        let eps = Epsilon::new(0.2).unwrap();
        let tickets: Vec<_> = (0..12)
            .map(|_| client.submit("acme", &spec, eps).unwrap())
            .collect();
        tickets.into_iter().filter_map(|t| t.wait().ok()).count() as u64
    });
    lrm_obs::uninstall();
    let records = sink.take();

    assert_eq!(answered, 12, "every submission must be answered");
    assert_eq!(report.metrics.answered, 12);
    assert!(!records.is_empty(), "tracing must have captured the serve");

    // ---- 1. Payload audit over the in-memory records and the JSON. ----
    for record in &records {
        let name = record.name();
        assert!(
            ALLOWED_NAMES.contains(&name),
            "unknown span/event name {name:?}"
        );
        for (key, value) in fields(record) {
            assert!(
                ALLOWED_KEYS.contains(key),
                "field {key:?} on {name:?} is not on the data-independence allowlist"
            );
            if let Value::Str(s) = value {
                assert!(
                    is_short_label(s),
                    "string payload {s:?} on {name:?}.{key} is not a short label"
                );
            }
        }
        // The wire format: one JSON object, scalar fields only. No '['
        // can appear — not in names (checked above), not in labels
        // (checked above), so none anywhere means no arrays anywhere.
        let line = lrm_obs::json::record_line(record);
        assert!(
            !line.contains('[') && !line.contains(']'),
            "rendered record may not contain an array: {line}"
        );
    }

    // ---- 2. Phase decomposition. ----
    let submits: Vec<&Record> = records
        .iter()
        .filter(|r| r.name() == "request.submit")
        .collect();
    let completes: Vec<&Record> = records
        .iter()
        .filter(|r| r.name() == "request.complete")
        .collect();
    assert_eq!(submits.len(), 12);
    assert_eq!(completes.len(), 12);
    let submit_traces: HashSet<u64> = submits.iter().map(|r| trace_of(r)).collect();
    assert_eq!(submit_traces.len(), 12, "every request gets its own trace");
    for submit in &submits {
        assert_eq!(get_str(submit, "tenant"), Some("acme"));
    }

    let mut total_sum_ns: u64 = 0;
    for complete in &completes {
        assert!(
            submit_traces.contains(&trace_of(complete)),
            "a completion must share its submission's trace"
        );
        let phases: u64 = [
            "coalesce_ns",
            "queue_ns",
            "compile_ns",
            "noise_ns",
            "settle_ns",
        ]
        .iter()
        .map(|k| get_u64(complete, k).expect("phase field present"))
        .sum();
        let total = get_u64(complete, "total_ns").expect("total_ns present");
        assert_eq!(phases, total, "phases must sum exactly to the total");
        assert!(total > 0, "a served request takes time");
        total_sum_ns += total;
    }
    // The traced totals and the histogram measure the same interval
    // (submit → respond) at slightly different capture points; they
    // must agree within 5% in aggregate.
    let histogram_ns = report.metrics.latency_sum.as_nanos() as f64;
    let diff = (total_sum_ns as f64 - histogram_ns).abs();
    assert!(
        diff <= 0.05 * histogram_ns + 1e6,
        "trace totals {total_sum_ns}ns vs histogram {histogram_ns}ns drift over 5%"
    );

    // ---- 3. Attribution. ----
    let closes: Vec<&Record> = records
        .iter()
        .filter(|r| r.name() == "batch.close")
        .collect();
    let compiles: Vec<&Record> = records
        .iter()
        .filter(|r| r.name() == "batch.compile")
        .collect();
    assert!(!closes.is_empty());
    let m = &report.metrics;
    let closed_counted = m.rank_closed_batches
        + m.window_closed_batches
        + m.ceiling_closed_batches
        + m.drain_closed_batches;
    assert_eq!(
        closes.len() as u64,
        closed_counted,
        "every close reason is counted exactly once"
    );
    let member_sum: u64 = closes
        .iter()
        .map(|r| get_u64(r, "requests").expect("requests field present"))
        .sum();
    assert_eq!(
        member_sum, 12,
        "batch members must account for every request"
    );
    for close in &closes {
        let reason = get_str(close, "reason").expect("reason field present");
        assert!(
            ["rank_growth", "window", "max_batch", "shutdown_drain"].contains(&reason),
            "unknown close reason {reason:?}"
        );
    }
    assert_eq!(
        compiles.len(),
        closes.len(),
        "every flushed batch compiles exactly once"
    );
    let close_traces: HashSet<u64> = closes.iter().map(|r| trace_of(r)).collect();
    for compile in &compiles {
        assert!(
            close_traces.contains(&trace_of(compile)),
            "a compile span must live on its batch's trace"
        );
        let cache = get_str(compile, "cache").expect("cache field present");
        assert!(
            ["miss", "warm_start", "memory_hit", "disk_hit"].contains(&cache),
            "unknown cache outcome {cache:?}"
        );
        assert!(get_str(compile, "mechanism").is_some());
    }
    assert!(
        records.iter().any(|r| r.name() == "alm.iteration"),
        "the cold compile must report solver iterations"
    );
}
