//! End-to-end coalescing correctness (ISSUE 5 satellite).
//!
//! * A coalesced batch answer for tenant A is **bit-identical** to the
//!   slice of the combined batch answer it was cut from — verified by
//!   reconstructing the combined workload and the batch's noise stream
//!   outside the server and comparing exactly.
//! * Single-query fallthrough matches `Session::answer` bit-for-bit.
//! * Budget misbehavior is impossible: admission and settlement both
//!   refuse with typed errors, and the whole pipeline never densifies a
//!   structured workload.
//!
//! Determinism notes: batches are deterministic here because either
//! `max_batch` closes them (count-triggered, no timing) or every
//! submission lands in one open batch that shutdown flushes; settlement
//! runs in submission order within a batch.

use lrm_core::engine::{Engine, MechanismKind};
use lrm_core::mechanism::Mechanism;
use lrm_dp::rng::derive_rng;
use lrm_dp::{BudgetError, Epsilon};
use lrm_linalg::operator::densification_count;
use lrm_server::{AdmissionError, QuerySpec, Server, ServerError};
use lrm_workload::{Attribute, Schema, Workload};

const SEED: u64 = 0x5e12_11e5;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// 32 unit-width buckets over [0, 32): value intervals with integer
/// endpoints map to the bucket interval `(a, b-1)` exactly.
fn schema() -> Schema {
    Schema::single(Attribute::new("v", 0.0, 32.0, 32).unwrap())
}

fn data() -> Vec<f64> {
    (0..32).map(|i| ((i * 13) % 97) as f64).collect()
}

fn server(max_batch: usize) -> Server {
    Server::builder(schema(), data())
        .mechanism(MechanismKind::Lrm)
        .max_batch(max_batch)
        .coalesce_window(std::time::Duration::from_secs(60))
        .workers(2)
        .seed(SEED)
        .build()
        .unwrap()
}

#[test]
fn coalesced_slices_are_bit_identical_to_the_combined_batch_answer() {
    let densify_before = densification_count();
    let server = server(100);
    server.register_tenant("a", eps(4.0));
    server.register_tenant("b", eps(4.0));

    let spec_a = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (8.0, 24.0)],
    };
    let spec_b = QuerySpec::Prefixes {
        attr: 0,
        thresholds: vec![4.0, 32.0],
    };
    let half = eps(0.5);

    // Submit both without waiting: they join the same open batch, which
    // the shutdown flush closes as one two-request batch (index 0).
    let (tickets, report) = server.serve(|client| {
        let ta = client.submit("a", &spec_a, half).unwrap();
        let tb = client.submit("b", &spec_b, half).unwrap();
        vec![ta, tb]
    });
    let mut releases = Vec::new();
    for t in tickets {
        releases.push(t.wait().unwrap());
    }
    assert_eq!(report.metrics.coalesced_batches, 1);
    assert_eq!(report.metrics.batches, 1);
    assert!(releases.iter().all(|r| r.coalesced() && r.batch_size == 2));
    assert_eq!(releases[0].batch_index, 0);

    // Reconstruct the combined release entirely outside the server: the
    // same concatenated workload, compiled by a fresh engine with the
    // same (default) options, answered with the batch's noise stream.
    let combined = Workload::from_intervals(
        32,
        vec![(0, 15), (8, 23), (0, 3), (0, 31)], // spec_a rows, then spec_b rows
    )
    .unwrap();
    let engine = Engine::default();
    let compiled = engine
        .compile_default(&combined, MechanismKind::Lrm)
        .unwrap();
    let batch_answers = compiled
        .answer(&data(), half, &mut derive_rng(SEED, 0))
        .unwrap();

    assert_eq!(releases[0].answers, batch_answers[0..2].to_vec());
    assert_eq!(releases[1].answers, batch_answers[2..4].to_vec());
    assert_eq!(releases[0].mechanism, "LRM");
    assert!((releases[0].eps_remaining - 3.5).abs() < 1e-12);

    // The whole pipeline (spec → coalesce → compile → answer) stayed
    // structured: zero densifications.
    assert_eq!(densification_count() - densify_before, 0);
}

#[test]
fn single_query_fallthrough_matches_session_answer() {
    let server = server(1); // max_batch = 1: every request falls through
    server.register_tenant("solo", eps(1.0));
    let spec = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 8.0), (8.0, 32.0), (0.0, 32.0)],
    };
    let half = eps(0.5);

    let (outcome, report) =
        server.serve(|client| client.submit("solo", &spec, half).unwrap().wait());
    let release = outcome.unwrap();
    assert_eq!(report.metrics.single_batches, 1);
    assert_eq!(report.metrics.coalesced_batches, 0);
    assert!(!release.coalesced());

    // The same request through the library Session API, with the same
    // strategy and the same noise stream, answers bit-identically.
    let alone = Workload::from_intervals(32, vec![(0, 7), (8, 31), (0, 31)]).unwrap();
    let engine = Engine::default();
    let compiled = engine.compile_default(&alone, MechanismKind::Lrm).unwrap();
    let mut session = compiled.session(eps(1.0));
    let batch = session
        .answer(&data(), half, &mut derive_rng(SEED, 0))
        .unwrap();

    assert_eq!(release.answers, batch.answers);
    assert_eq!(release.eps_remaining, session.remaining());
    // The server reports the data-independent noise bound (x = None):
    // the Session's estimate additionally folds in the structural
    // residual, a statistic of the private data the server must never
    // release un-noised.
    assert_eq!(
        release.expected_avg_error,
        compiled.expected_average_error(half, None)
    );
    assert!(release.expected_avg_error <= batch.expected_avg_error);
}

#[test]
fn settlement_refuses_the_second_debit_of_an_over_committed_batch() {
    // Both requests pass the advisory admission check (each alone fits),
    // land in one batch, and the batch answers — but only the first
    // settlement debit fits. The second slice is withheld with the same
    // typed budget error the sequential ledger gives.
    let server = server(2);
    server.register_tenant("tight", eps(0.5));
    let spec = QuerySpec::Total;
    let half = eps(0.5);

    let (tickets, report) = server.serve(|client| {
        let t1 = client.submit("tight", &spec, half).unwrap();
        let t2 = client.submit("tight", &spec, half).unwrap();
        vec![t1, t2]
    });
    let mut outcomes = tickets.into_iter().map(|t| t.wait());
    let first = outcomes.next().unwrap().unwrap();
    assert!((first.eps_remaining - 0.0).abs() < 1e-12);
    match outcomes.next().unwrap() {
        Err(ServerError::Admission(AdmissionError::Budget(BudgetError::Exhausted {
            requested,
            ..
        }))) => assert_eq!(requested, 0.5),
        other => panic!("expected a typed settlement refusal, got {other:?}"),
    }
    assert_eq!(report.metrics.answered, 1);
    assert_eq!(report.metrics.rejected_settlement, 1);
    // The tenant's ledger granted exactly one release.
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.tenants[0].releases, 1);
    assert!((report.tenants[0].spent - 0.5).abs() < 1e-12);
}

#[test]
fn admission_rejects_exhausted_tenants_and_unknown_tenants() {
    let server = server(1);
    server.register_tenant("a", eps(0.5));
    let spec = QuerySpec::Total;

    let (results, report) = server.serve(|client| {
        // Unknown tenant: synchronous, typed.
        let unknown = client.submit("ghost", &spec, eps(0.1)).err().unwrap();
        // Spend the whole budget, then get refused at admission.
        let ok = client.submit("a", &spec, eps(0.5)).unwrap().wait();
        let refused = client.submit("a", &spec, eps(0.5)).unwrap().wait();
        (unknown, ok, refused)
    });
    let (unknown, ok, refused) = results;
    assert!(matches!(
        unknown,
        ServerError::Admission(AdmissionError::UnknownTenant { tenant }) if tenant == "ghost"
    ));
    assert!(ok.is_ok());
    assert!(matches!(
        refused,
        Err(ServerError::Admission(AdmissionError::Budget(_)))
    ));
    assert_eq!(report.metrics.rejected_admission, 1);
    assert_eq!(report.metrics.answered, 1);

    // Spec errors are synchronous and typed too.
    let (spec_err, _) = server.serve(|client| {
        client
            .submit("a", &QuerySpec::Marginal { attr: 9 }, eps(0.1))
            .err()
            .unwrap()
    });
    assert!(matches!(spec_err, ServerError::Spec(_)));
}

#[test]
fn incompatible_specs_do_not_share_a_batch() {
    // Same arrival window, but different ε: the scheduler must keep them
    // in separate batches (a single noise draw cannot serve two scales).
    let server = server(4);
    server.register_tenant("a", eps(4.0));
    let spec = QuerySpec::Total;

    let (tickets, report) = server.serve(|client| {
        vec![
            client.submit("a", &spec, eps(0.5)).unwrap(),
            client.submit("a", &spec, eps(0.25)).unwrap(),
            client.submit("a", &spec, eps(0.5)).unwrap(),
        ]
    });
    let releases: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(report.metrics.batches, 2);
    assert_eq!(report.metrics.coalesced_batches, 1); // the two ε = 0.5
    assert_eq!(report.metrics.single_batches, 1); // the lone ε = 0.25
    assert_eq!(releases[0].batch_size, 2);
    assert_eq!(releases[1].batch_size, 1);
    assert_eq!(releases[2].batch_size, 2);
}

#[test]
fn sparse_class_specs_coalesce_through_csr() {
    let schema = Schema::product(vec![
        Attribute::new("x", 0.0, 8.0, 8).unwrap(),
        Attribute::new("y", 0.0, 4.0, 4).unwrap(),
    ])
    .unwrap();
    let n = schema.domain_size();
    let data: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let server = Server::builder(schema, data)
        .max_batch(2)
        .coalesce_window(std::time::Duration::from_secs(60))
        .seed(SEED)
        .build()
        .unwrap();
    server.register_tenant("a", eps(2.0));

    // Both specs stride the inner attribute → both are CSR-class.
    let m1 = QuerySpec::Marginal { attr: 1 };
    let m2 = QuerySpec::Ranges {
        attr: 1,
        ranges: vec![(0.0, 2.0)],
    };
    let (tickets, report) = server.serve(|client| {
        vec![
            client.submit("a", &m1, eps(0.5)).unwrap(),
            client.submit("a", &m2, eps(0.5)).unwrap(),
        ]
    });
    let releases: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(report.metrics.coalesced_batches, 1);
    assert_eq!(releases[0].answers.len(), 4);
    assert_eq!(releases[1].answers.len(), 1);
}

#[test]
fn repeated_workloads_hit_the_strategy_cache() {
    let server = server(1);
    server.register_tenant("a", eps(8.0));
    let spec = QuerySpec::Prefixes {
        attr: 0,
        thresholds: vec![8.0, 16.0, 24.0, 32.0],
    };
    let (_, report) = server.serve(|client| {
        for _ in 0..4 {
            client.submit("a", &spec, eps(0.5)).unwrap().wait().unwrap();
        }
    });
    assert_eq!(report.cache.misses, 1);
    assert_eq!(report.cache.memory_hits, 3);
    assert_eq!(report.metrics.answered, 4);
    // Distinct noise per batch even on cache hits: the four releases
    // come from four different derived streams.
    let (tickets, _) = server.serve(|client| {
        vec![
            client.submit("a", &spec, eps(0.5)).unwrap(),
            client.submit("a", &spec, eps(0.5)).unwrap(),
        ]
    });
    let r: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_ne!(r[0].answers, r[1].answers);
}

#[test]
fn noise_streams_never_repeat_across_serve_runs() {
    // The batch counter is server-lifetime, not per-serve: tenant
    // ledgers span serve() calls, so a repeated batch index would
    // re-release the same Laplace draws for freshly-debited ε. Two runs
    // of the same single request must get different indices — and hence
    // different noise despite the identical workload and cached strategy.
    let server = server(1);
    server.register_tenant("a", eps(4.0));
    let spec = QuerySpec::Ranges {
        attr: 0,
        ranges: vec![(0.0, 16.0), (16.0, 32.0)],
    };
    let (first, _) = server.serve(|client| client.submit("a", &spec, eps(0.5)).unwrap().wait());
    let (second, _) = server.serve(|client| client.submit("a", &spec, eps(0.5)).unwrap().wait());
    let (first, second) = (first.unwrap(), second.unwrap());
    assert_eq!(first.batch_index, 0);
    assert_eq!(second.batch_index, 1);
    assert_ne!(first.answers, second.answers);
}

#[test]
fn concurrent_clients_all_get_answers() {
    // Multi-threaded smoke: several client threads hammer the runtime;
    // every submission resolves (answered or typed-rejected), the queue
    // drains, and per-tenant grants never exceed the registered totals.
    let server = Server::builder(schema(), data())
        .max_batch(4)
        .coalesce_window(std::time::Duration::from_millis(5))
        .workers(3)
        .seed(SEED)
        .build()
        .unwrap();
    for t in 0..3 {
        server.register_tenant(&format!("t{t}"), eps(2.0));
    }
    let request = eps(0.25);

    let (granted, report) = server.serve(|client| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|t| {
                    let client = client.clone();
                    s.spawn(move || {
                        let tenant = format!("t{t}");
                        let spec = QuerySpec::Ranges {
                            attr: 0,
                            ranges: vec![(0.0, 16.0), (16.0, 32.0)],
                        };
                        let mut granted = 0.0;
                        for _ in 0..12 {
                            let ticket = client.submit(&tenant, &spec, request).unwrap();
                            match ticket.wait() {
                                Ok(r) => granted += r.eps_spent.value(),
                                Err(ServerError::Admission(_)) => {}
                                Err(e) => panic!("unexpected serving error: {e}"),
                            }
                        }
                        granted
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<f64>>()
        })
    });

    // 12 requests × ε/4 against a budget of 2: exactly 8 grants each.
    for g in &granted {
        assert!(*g <= 2.0 + 1e-9, "tenant granted {g} > total 2.0");
        assert!((g - 2.0).abs() < 1e-9);
    }
    assert_eq!(report.metrics.submitted, 36);
    assert_eq!(
        report.metrics.answered
            + report.metrics.rejected_admission
            + report.metrics.rejected_settlement,
        36
    );
    assert_eq!(report.metrics.answered, 24);
}

#[test]
fn sharded_serving_is_bit_identical_to_single_shard() {
    // ISSUE 9 satellite: sharding the scheduler must not perturb a
    // single answer bit. The shard key is a strict coarsening of the
    // batch key, so a coalescible group always meets on one shard, and
    // the batch index (the noise-stream label) comes from the shared
    // server-lifetime counter — under the same seed a sharded server
    // must therefore reproduce the unsharded answers exactly. Two
    // sequential phases at different ε (different batch keys, generally
    // different shards) keep the index assignment deterministic.
    let run = |shards: usize| -> Vec<lrm_server::Release> {
        let server = Server::builder(schema(), data())
            .mechanism(MechanismKind::Lrm)
            .max_batch(2) // count-closed: no timing in batch formation
            .coalesce_window(std::time::Duration::from_secs(60))
            .workers(3)
            .shards(shards)
            .seed(SEED)
            .build()
            .unwrap();
        server.register_tenant("a", eps(4.0));
        server.register_tenant("b", eps(4.0));
        let spec_a = QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 16.0), (8.0, 24.0)],
        };
        let spec_b = QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![4.0, 32.0],
        };
        let (mut releases, report) = server.serve(|client| {
            // Phase 1 (batch 0): one ε=0.5 batch, both members, via the
            // evented TicketSet path.
            let set = lrm_server::TicketSet::new();
            let ta = client.submit_into("a", &spec_a, eps(0.5), &set).unwrap();
            let tb = client.submit_into("b", &spec_b, eps(0.5), &set).unwrap();
            let mut phase1: Vec<(u64, lrm_server::Release)> = Vec::new();
            while let Some((token, outcome)) = set.wait_any() {
                phase1.push((token, outcome.unwrap()));
            }
            phase1.sort_by_key(|(token, _)| *token);
            assert_eq!(phase1.len(), 2);
            assert_eq!((phase1[0].0, phase1[1].0), (ta, tb));
            // Phase 2 (batch 1): a different ε — a different batch key,
            // and on a sharded server generally a different shard — via
            // the blocking path.
            let ra = client.submit("a", &spec_a, eps(0.25)).unwrap();
            let rb = client.submit("b", &spec_b, eps(0.25)).unwrap();
            let mut out: Vec<lrm_server::Release> = phase1.into_iter().map(|(_, r)| r).collect();
            out.push(ra.wait().unwrap());
            out.push(rb.wait().unwrap());
            out
        });
        assert_eq!(report.metrics.answered, 4);
        assert_eq!(report.metrics.batches, 2);
        assert_eq!(report.metrics.shard_depths.len(), shards);
        assert_eq!(report.metrics.shard_depths.iter().sum::<u64>(), 0);
        // Both phases' indices are deterministic: phase 1 completed
        // before phase 2 submitted.
        releases.sort_by_key(|r| (r.batch_index, r.answers.len()));
        assert_eq!(releases[0].batch_index, 0);
        assert_eq!(releases[3].batch_index, 1);
        releases
    };

    let unsharded = run(1);
    let sharded = run(8);
    for (u, s) in unsharded.iter().zip(&sharded) {
        assert_eq!(
            u.answers, s.answers,
            "sharding changed a released answer bit"
        );
        assert_eq!(u.batch_index, s.batch_index);
        assert_eq!(u.batch_size, s.batch_size);
        assert_eq!(u.eps_remaining, s.eps_remaining);
    }
}
