//! The query front door: declarative predicates over a [`Schema`],
//! compiled to structured workload rows.
//!
//! A [`QuerySpec`] describes *what* a client wants counted — value ranges,
//! prefix histograms, a full marginal — without ever naming buckets or
//! matrices. [`QuerySpec::compile`] translates it against the server's
//! schema into a [`PreparedSpec`]: either implicit interval rows (ranges
//! over the outer attribute, prefixes, totals, outer marginals — `O(1)`
//! per row) or CSR rows (anything strided over the inner attribute). The
//! dense `m×n` matrix is never materialized at any point of the request
//! lifecycle; the coalescer concatenates prepared rows from many specs
//! into one structured [`Workload`].

use lrm_linalg::operator::CsrOp;
use lrm_workload::{Schema, Workload, WorkloadError};
use std::fmt;

/// A declarative batch-query request over the serving schema.
///
/// Every variant names an attribute by index into the schema (specs over
/// a single-attribute schema use `attr = 0`).
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Count queries for each value interval `[from, to)` over one
    /// attribute.
    Ranges {
        /// Attribute index in the schema.
        attr: usize,
        /// Value intervals, one query per `(from, to)` pair.
        ranges: Vec<(f64, f64)>,
    },
    /// A prefix histogram: one count of "values below `t`" per threshold.
    Prefixes {
        /// Attribute index in the schema.
        attr: usize,
        /// Prefix thresholds, one query each.
        thresholds: Vec<f64>,
    },
    /// The full marginal of one attribute: one count per bucket, summed
    /// over every other attribute.
    Marginal {
        /// Attribute index in the schema.
        attr: usize,
    },
    /// The grand total over the whole domain.
    Total,
}

impl QuerySpec {
    /// Validates the spec against `schema` and translates it into
    /// structured workload rows.
    pub fn compile(&self, schema: &Schema) -> Result<PreparedSpec, SpecError> {
        let rows = match self {
            QuerySpec::Total => PreparedRows::Intervals(vec![(0, schema.domain_size() - 1)]),
            QuerySpec::Ranges { attr, ranges } => {
                if ranges.is_empty() {
                    return Err(SpecError::Empty);
                }
                let attribute = schema.attribute(*attr).ok_or(SpecError::UnknownAttribute {
                    attr: *attr,
                    arity: schema.arity(),
                })?;
                let buckets: Vec<(usize, usize)> = ranges
                    .iter()
                    .map(|&(from, to)| {
                        attribute
                            .bucket_range(from, to)
                            .map_err(|reason| SpecError::InvalidPredicate { reason })
                    })
                    .collect::<Result<_, _>>()?;
                translate_bucket_rows(schema, *attr, &buckets)
            }
            QuerySpec::Prefixes { attr, thresholds } => {
                if thresholds.is_empty() {
                    return Err(SpecError::Empty);
                }
                let attribute = schema.attribute(*attr).ok_or(SpecError::UnknownAttribute {
                    attr: *attr,
                    arity: schema.arity(),
                })?;
                let buckets: Vec<(usize, usize)> = thresholds
                    .iter()
                    .map(|&t| {
                        attribute
                            .bucket_prefix(t)
                            .map_err(|reason| SpecError::InvalidPredicate { reason })
                    })
                    .collect::<Result<_, _>>()?;
                translate_bucket_rows(schema, *attr, &buckets)
            }
            QuerySpec::Marginal { attr } => {
                let attribute = schema.attribute(*attr).ok_or(SpecError::UnknownAttribute {
                    attr: *attr,
                    arity: schema.arity(),
                })?;
                let buckets: Vec<(usize, usize)> =
                    (0..attribute.domain_size()).map(|b| (b, b)).collect();
                translate_bucket_rows(schema, *attr, &buckets)
            }
        };
        Ok(PreparedSpec {
            domain_size: schema.domain_size(),
            schema_fingerprint: schema.fingerprint(),
            rows,
        })
    }
}

/// Turns inclusive *bucket* intervals over attribute `attr` into flattened
/// cell rows. Over the outer attribute (or a 1-attribute schema) a bucket
/// interval covers a contiguous cell block — an implicit interval row;
/// over the inner attribute it covers a strided cell set — a CSR row.
fn translate_bucket_rows(schema: &Schema, attr: usize, buckets: &[(usize, usize)]) -> PreparedRows {
    let stride = schema.inner_stride();
    if attr == 0 {
        PreparedRows::Intervals(
            buckets
                .iter()
                .map(|&(lo, hi)| (lo * stride, (hi + 1) * stride - 1))
                .collect(),
        )
    } else {
        // Inner attribute: bucket b selects cells { i·stride + b } for
        // every outer bucket i — one sparse row per interval.
        let outer = schema.domain_size() / stride;
        PreparedRows::Sparse(
            buckets
                .iter()
                .map(|&(lo, hi)| {
                    let mut entries = Vec::with_capacity(outer * (hi - lo + 1));
                    for i in 0..outer {
                        for b in lo..=hi {
                            entries.push((i * stride + b, 1.0));
                        }
                    }
                    entries
                })
                .collect(),
        )
    }
}

/// The structured rows a spec compiled to.
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedRows {
    /// Implicit inclusive cell intervals (one per query) — `O(1)` storage
    /// per row, merged into an `IntervalsOp` workload.
    Intervals(Vec<(usize, usize)>),
    /// Explicit sparse rows `(cell, weight)` — merged into a CSR workload.
    Sparse(Vec<Vec<(usize, f64)>>),
}

/// Which coalescing compatibility class a spec belongs to: only specs of
/// the same class (and ε, and schema) share a combined workload, so the
/// merge result keeps one uniform structured representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecClass {
    /// Implicit-interval rows.
    Intervals,
    /// CSR rows.
    Sparse,
}

impl fmt::Display for SpecClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecClass::Intervals => write!(f, "intervals"),
            SpecClass::Sparse => write!(f, "sparse"),
        }
    }
}

/// A spec validated and translated against one schema: what the scheduler
/// coalesces and the workers answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedSpec {
    domain_size: usize,
    schema_fingerprint: u64,
    rows: PreparedRows,
}

impl PreparedSpec {
    /// Reassembles a spec from persisted parts (the farm's durable
    /// popularity queue). Crate-internal: the public path to a
    /// `PreparedSpec` is [`QuerySpec::compile`], which validates against
    /// a live schema.
    pub(crate) fn from_parts(
        domain_size: usize,
        schema_fingerprint: u64,
        rows: PreparedRows,
    ) -> Self {
        Self {
            domain_size,
            schema_fingerprint,
            rows,
        }
    }

    /// Number of queries (rows) this spec contributes to a batch.
    pub fn num_queries(&self) -> usize {
        match &self.rows {
            PreparedRows::Intervals(v) => v.len(),
            PreparedRows::Sparse(v) => v.len(),
        }
    }

    /// The flattened domain size the rows are defined over.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Fingerprint of the schema this spec was compiled against.
    pub fn schema_fingerprint(&self) -> u64 {
        self.schema_fingerprint
    }

    /// The coalescing compatibility class.
    pub fn class(&self) -> SpecClass {
        match &self.rows {
            PreparedRows::Intervals(_) => SpecClass::Intervals,
            PreparedRows::Sparse(_) => SpecClass::Sparse,
        }
    }

    /// The translated rows.
    pub fn rows(&self) -> &PreparedRows {
        &self.rows
    }

    /// This spec alone as a structured [`Workload`] — what the
    /// single-query fallthrough answers, and what tests / the load
    /// harness use to compute exact answers.
    pub fn to_workload(&self) -> Result<Workload, WorkloadError> {
        match &self.rows {
            PreparedRows::Intervals(v) => Workload::from_intervals(self.domain_size, v.clone()),
            PreparedRows::Sparse(v) => {
                Workload::from_csr(CsrOp::from_row_entries(v.len(), self.domain_size, v))
            }
        }
    }
}

/// Typed spec-translation failure (an admission error: the request never
/// reaches the scheduler).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec contains no predicates.
    Empty,
    /// The spec names an attribute the schema does not have.
    UnknownAttribute {
        /// The attribute index the spec asked for.
        attr: usize,
        /// The schema's arity.
        arity: usize,
    },
    /// A predicate failed value-level validation (empty interval, NaN…).
    InvalidPredicate {
        /// The attribute-level reason.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "query spec contains no predicates"),
            SpecError::UnknownAttribute { attr, arity } => write!(
                f,
                "spec names attribute {attr} but the schema has {arity} attribute(s)"
            ),
            SpecError::InvalidPredicate { reason } => write!(f, "invalid predicate: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_workload::{Attribute, WorkloadStructure};

    fn schema_1d() -> Schema {
        Schema::single(Attribute::new("age", 0.0, 120.0, 24).unwrap())
    }

    fn schema_2d() -> Schema {
        Schema::product(vec![
            Attribute::new("age", 0.0, 120.0, 4).unwrap(),
            Attribute::new("income", 0.0, 100.0, 3).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn ranges_over_1d_become_intervals() {
        let spec = QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 60.0), (60.0, 120.0)],
        };
        let p = spec.compile(&schema_1d()).unwrap();
        assert_eq!(p.class(), SpecClass::Intervals);
        assert_eq!(p.num_queries(), 2);
        assert_eq!(p.rows(), &PreparedRows::Intervals(vec![(0, 11), (12, 23)]));
        let w = p.to_workload().unwrap();
        assert_eq!(w.structure(), WorkloadStructure::Intervals);
        assert_eq!(w.num_queries(), 2);
        assert_eq!(w.domain_size(), 24);
    }

    #[test]
    fn prefixes_and_total() {
        let p = QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![30.0, 60.0, 120.0],
        }
        .compile(&schema_1d())
        .unwrap();
        assert_eq!(
            p.rows(),
            &PreparedRows::Intervals(vec![(0, 5), (0, 11), (0, 23)])
        );

        let t = QuerySpec::Total.compile(&schema_1d()).unwrap();
        assert_eq!(t.rows(), &PreparedRows::Intervals(vec![(0, 23)]));
    }

    #[test]
    fn outer_queries_stay_contiguous_inner_go_sparse() {
        let s = schema_2d(); // 4 × 3 cells, stride 3
        let outer = QuerySpec::Marginal { attr: 0 }.compile(&s).unwrap();
        assert_eq!(outer.class(), SpecClass::Intervals);
        assert_eq!(
            outer.rows(),
            &PreparedRows::Intervals(vec![(0, 2), (3, 5), (6, 8), (9, 11)])
        );

        let inner = QuerySpec::Marginal { attr: 1 }.compile(&s).unwrap();
        assert_eq!(inner.class(), SpecClass::Sparse);
        match inner.rows() {
            PreparedRows::Sparse(rows) => {
                assert_eq!(rows.len(), 3);
                // Bucket 1 of the inner attribute: cells 1, 4, 7, 10.
                let cells: Vec<usize> = rows[1].iter().map(|&(c, _)| c).collect();
                assert_eq!(cells, vec![1, 4, 7, 10]);
            }
            other => panic!("expected sparse rows, got {other:?}"),
        }
        // The two marginals answer consistently: both sum the same grid.
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let total: f64 = x.iter().sum();
        for p in [&outer, &inner] {
            let sums = p.to_workload().unwrap().answer(&x).unwrap();
            assert_eq!(sums.iter().sum::<f64>(), total);
        }

        // A range over the inner attribute is sparse too. [0, 50) over
        // the 3-bucket income attribute (≈33.3-wide buckets) touches
        // buckets 0 and 1 — the strided cells of both.
        let r = QuerySpec::Ranges {
            attr: 1,
            ranges: vec![(0.0, 50.0)],
        }
        .compile(&s)
        .unwrap();
        assert_eq!(r.class(), SpecClass::Sparse);
        match r.rows() {
            PreparedRows::Sparse(rows) => {
                let cells: Vec<usize> = rows[0].iter().map(|&(c, _)| c).collect();
                assert_eq!(cells, vec![0, 1, 3, 4, 6, 7, 9, 10]);
            }
            other => panic!("expected sparse rows, got {other:?}"),
        }
    }

    #[test]
    fn spec_errors_are_typed() {
        let s = schema_1d();
        assert_eq!(
            QuerySpec::Ranges {
                attr: 0,
                ranges: vec![]
            }
            .compile(&s),
            Err(SpecError::Empty)
        );
        assert_eq!(
            QuerySpec::Marginal { attr: 3 }.compile(&s),
            Err(SpecError::UnknownAttribute { attr: 3, arity: 1 })
        );
        assert!(matches!(
            QuerySpec::Ranges {
                attr: 0,
                ranges: vec![(5.0, 5.0)]
            }
            .compile(&s),
            Err(SpecError::InvalidPredicate { .. })
        ));
    }

    #[test]
    fn schema_fingerprint_travels_with_the_spec() {
        let p = QuerySpec::Total.compile(&schema_1d()).unwrap();
        assert_eq!(p.schema_fingerprint(), schema_1d().fingerprint());
        assert_ne!(p.schema_fingerprint(), schema_2d().fingerprint());
        assert_eq!(p.domain_size(), 24);
    }
}
