//! Per-tenant budget ledgers.
//!
//! Every tenant (analyst) owns one [`SharedLedger`]: the scheduler
//! admission-checks against it (fail fast, advisory) and a worker debits
//! it *after* the batch release succeeds and *before* the tenant's answer
//! slice leaves the server — debit-after-success, atomically re-validated
//! under the ledger lock, so the one-slack over-spend bound of
//! [`lrm_dp::BudgetLedger`] holds per tenant however many workers settle
//! concurrently. A slice that fails settlement is never released:
//! withholding it is privacy-free (nothing about the data is observable
//! from a response that never arrives), so a refused debit spends nothing.

use lrm_dp::concurrent::SharedLedger;
use lrm_dp::{BudgetError, Epsilon};
use std::collections::HashMap;
use std::sync::RwLock;

/// The tenant registry: a concurrent map of tenant id → shared ledger.
#[derive(Debug, Default)]
pub(crate) struct TenantLedgers {
    ledgers: RwLock<HashMap<String, SharedLedger>>,
}

/// One tenant's budget position, reported in the
/// [`ServerReport`](crate::server::ServerReport).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpend {
    /// Tenant id.
    pub tenant: String,
    /// The total ε this tenant registered with.
    pub total: f64,
    /// Cumulative ε granted to this tenant.
    pub spent: f64,
    /// Number of granted releases.
    pub releases: usize,
}

impl TenantLedgers {
    /// Registers (or resets) a tenant with a fresh budget.
    pub fn register(&self, tenant: &str, total: Epsilon) {
        self.ledgers
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(tenant.to_string(), SharedLedger::new(total));
    }

    /// The tenant's ledger handle, if registered.
    pub fn get(&self, tenant: &str) -> Option<SharedLedger> {
        self.ledgers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .cloned()
    }

    /// Advisory admission check (see [`SharedLedger::check`]).
    pub fn check(&self, tenant: &str, eps: Epsilon) -> Result<(), AdmissionError> {
        let ledger = self
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        ledger.check(eps).map_err(AdmissionError::Budget)
    }

    /// Atomic settlement debit (see [`SharedLedger::debit`]); returns the
    /// remaining budget.
    pub fn debit(&self, tenant: &str, eps: Epsilon) -> Result<f64, AdmissionError> {
        let ledger = self
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        ledger.debit(eps).map_err(AdmissionError::Budget)
    }

    /// Point-in-time budget positions of every tenant, sorted by id.
    pub fn snapshot(&self) -> Vec<TenantSpend> {
        let mut spends: Vec<TenantSpend> = self
            .ledgers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(tenant, ledger)| {
                let l = ledger.snapshot();
                TenantSpend {
                    tenant: tenant.clone(),
                    total: l.total(),
                    spent: l.spent(),
                    releases: l.debits(),
                }
            })
            .collect();
        spends.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        spends
    }
}

/// Typed admission/settlement failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The request names a tenant that was never registered.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: String,
    },
    /// The tenant's remaining budget cannot cover the request.
    Budget(BudgetError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant:?}")
            }
            AdmissionError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Budget(e) => Some(e),
            AdmissionError::UnknownTenant { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn register_check_debit_cycle() {
        let tenants = TenantLedgers::default();
        tenants.register("acme", eps(1.0));
        assert!(tenants.check("acme", eps(0.5)).is_ok());
        assert!((tenants.debit("acme", eps(0.5)).unwrap() - 0.5).abs() < 1e-15);
        assert!(tenants.check("acme", eps(0.6)).is_err());
        assert!(matches!(
            tenants.debit("acme", eps(0.6)),
            Err(AdmissionError::Budget(BudgetError::Exhausted { .. }))
        ));
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let tenants = TenantLedgers::default();
        assert_eq!(
            tenants.check("ghost", eps(0.1)),
            Err(AdmissionError::UnknownTenant {
                tenant: "ghost".into()
            })
        );
        assert!(tenants.get("ghost").is_none());
    }

    #[test]
    fn snapshot_sorted_and_accurate() {
        let tenants = TenantLedgers::default();
        tenants.register("zeta", eps(2.0));
        tenants.register("alpha", eps(1.0));
        tenants.debit("zeta", eps(0.5)).unwrap();
        let snap = tenants.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, "alpha");
        assert_eq!(snap[0].spent, 0.0);
        assert_eq!(snap[1].tenant, "zeta");
        assert!((snap[1].spent - 0.5).abs() < 1e-15);
        assert_eq!(snap[1].releases, 1);
    }

    #[test]
    fn re_register_resets_the_budget() {
        let tenants = TenantLedgers::default();
        tenants.register("acme", eps(0.5));
        tenants.debit("acme", eps(0.5)).unwrap();
        assert!(tenants.check("acme", eps(0.1)).is_err());
        tenants.register("acme", eps(1.0));
        assert!(tenants.check("acme", eps(0.1)).is_ok());
    }
}
