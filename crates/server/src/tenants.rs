//! Per-tenant budget ledgers, durably journaled.
//!
//! Every tenant (analyst) owns one ledger — a [`DurableLedger`] when the
//! server journals to a state directory, the lock-free [`SharedLedger`]
//! fast path otherwise: the scheduler
//! admission-checks against it (fail fast, advisory) and a worker runs
//! the two-phase debit protocol around every release — an `Intent` is
//! durably recorded *before* noise is drawn, the debit settles *before*
//! the tenant's answer slice leaves the server, and an intent whose
//! noise was never released is aborted (refunded only if the abort is
//! durably recorded). With a state directory configured, each tenant's
//! ledger is backed by a fsync'd write-ahead journal
//! ([`lrm_dp::journal`]): a crash replays every unsettled intent as
//! spent, so the server can over-charge a tenant across a kill but can
//! never under-charge one. A slice that fails settlement is never
//! released: withholding it is privacy-free (nothing about the data is
//! observable from a response that never arrives), so a refused debit
//! spends nothing.
//!
//! Grants and releases are full (ε, δ) [`Budget`]s: pure tenants carry
//! δ = 0 and behave exactly as before, Gaussian tenants reserve, settle,
//! and recover *both* columns through the same two-phase protocol — a
//! crash replays unsettled δ as spent just like unsettled ε.

use lrm_dp::{
    Budget, BudgetError, BudgetLedger, DurableError, DurableLedger, Epsilon, SharedLedger,
};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// One tenant's ledger handle: durable (journaled, fsync on every
/// intent) when the server has a state directory, or the lock-free
/// [`SharedLedger`] fast path when it does not. Both run the same
/// two-phase reserve-then-settle protocol; the fast path keeps the
/// admission-storm case (thousands of concurrent submits against one
/// tenant) off any mutex.
#[derive(Debug, Clone)]
pub(crate) enum TenantLedger {
    Durable(DurableLedger),
    Fast(SharedLedger),
}

impl TenantLedger {
    fn check_budget(&self, budget: Budget) -> Result<(), BudgetError> {
        match self {
            TenantLedger::Durable(l) => l.check_budget(budget),
            TenantLedger::Fast(l) => l.check_budget(budget),
        }
    }

    fn begin_budget(&self, budget: Budget) -> Result<u64, DurableError> {
        match self {
            TenantLedger::Durable(l) => l.begin_budget(budget),
            TenantLedger::Fast(l) => l.begin_budget(budget).map_err(DurableError::Budget),
        }
    }

    fn settle(&self, id: u64) -> f64 {
        match self {
            TenantLedger::Durable(l) => l.settle(id),
            TenantLedger::Fast(l) => l.settle(id),
        }
    }

    fn abort(&self, id: u64) {
        match self {
            TenantLedger::Durable(l) => l.abort(id),
            TenantLedger::Fast(l) => l.abort(id),
        }
    }

    fn delta_remaining(&self) -> f64 {
        match self {
            TenantLedger::Durable(l) => l.delta_remaining(),
            TenantLedger::Fast(l) => l.delta_remaining(),
        }
    }

    fn snapshot(&self) -> BudgetLedger {
        match self {
            TenantLedger::Durable(l) => l.snapshot(),
            TenantLedger::Fast(l) => l.snapshot(),
        }
    }
}

/// The tenant registry: a concurrent map of tenant id → budget ledger.
#[derive(Debug, Default)]
pub(crate) struct TenantLedgers {
    ledgers: RwLock<HashMap<String, TenantLedger>>,
    /// Journal directory; `None` keeps every ledger in memory (the
    /// previous behavior — durability for the process lifetime only).
    dir: Option<PathBuf>,
    /// Ledger journals replayed on registration (restart resumes).
    replays: AtomicU64,
}

/// One tenant's budget position, reported in the
/// [`ServerReport`](crate::server::ServerReport).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpend {
    /// Tenant id.
    pub tenant: String,
    /// The total ε this tenant registered with.
    pub total: f64,
    /// Cumulative ε granted to this tenant.
    pub spent: f64,
    /// The total δ this tenant registered with (`0` for pure grants).
    pub delta_total: f64,
    /// Cumulative δ granted to this tenant.
    pub delta_spent: f64,
    /// Number of granted releases.
    pub releases: usize,
}

/// What registering a tenant found on disk (see
/// [`Server::try_register_tenant`](crate::server::Server::try_register_tenant)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantResume {
    /// Whether a prior journal with the same total was honored.
    pub resumed: bool,
    /// Whether the journal was damaged; the ledger opened fully
    /// exhausted (conservative).
    pub corrupted: bool,
    /// Settled ε spend after recovery.
    pub spent: f64,
    /// ε reserved by a previous process but never released, now folded
    /// into the spend.
    pub recovered_pending: f64,
    /// Settled δ spend after recovery (`0` for pure grants).
    pub delta_spent: f64,
    /// δ reserved by a previous process but never released, now folded
    /// into the spend.
    pub recovered_pending_delta: f64,
}

impl TenantLedgers {
    /// A registry journaling under `dir` (`None` = in-memory ledgers).
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            ledgers: RwLock::new(HashMap::new()),
            dir,
            replays: AtomicU64::new(0),
        }
    }

    /// Registers (or resets) a tenant with a fresh pure-ε budget,
    /// resuming its durable journal when one exists with the same total.
    pub fn register(&self, tenant: &str, total: Epsilon) -> Result<TenantResume, AdmissionError> {
        self.register_budget(tenant, Budget::pure(total))
    }

    /// Registers (or resets) a tenant with a fresh (ε, δ) budget,
    /// resuming its durable journal when one exists with the same totals
    /// (a grant whose ε *or* δ total changed resets instead of resuming).
    pub fn register_budget(
        &self,
        tenant: &str,
        total: Budget,
    ) -> Result<TenantResume, AdmissionError> {
        let (ledger, resume) = match &self.dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| AdmissionError::Ledger {
                    tenant: tenant.to_string(),
                    reason: e.to_string(),
                })?;
                let path = dir.join(ledger_file_name(tenant));
                let (ledger, summary) = DurableLedger::open_budget(&path, total).map_err(|e| {
                    AdmissionError::Ledger {
                        tenant: tenant.to_string(),
                        reason: e.to_string(),
                    }
                })?;
                if summary.resumed {
                    self.replays.fetch_add(1, Ordering::Relaxed);
                }
                (
                    TenantLedger::Durable(ledger),
                    TenantResume {
                        resumed: summary.resumed,
                        corrupted: summary.corrupted,
                        spent: summary.spent,
                        recovered_pending: summary.recovered_pending,
                        delta_spent: summary.delta_spent,
                        recovered_pending_delta: summary.recovered_pending_delta,
                    },
                )
            }
            None => (
                TenantLedger::Fast(SharedLedger::with_budget(total)),
                TenantResume {
                    resumed: false,
                    corrupted: false,
                    spent: 0.0,
                    recovered_pending: 0.0,
                    delta_spent: 0.0,
                    recovered_pending_delta: 0.0,
                },
            ),
        };
        self.ledgers
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(tenant.to_string(), ledger);
        Ok(resume)
    }

    /// The tenant's ledger handle, if registered.
    pub fn get(&self, tenant: &str) -> Option<TenantLedger> {
        self.ledgers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .cloned()
    }

    /// Advisory admission check (reservations count as spent). Both the
    /// ε and δ components of `budget` must fit the tenant's remainder.
    pub fn check_budget(&self, tenant: &str, budget: Budget) -> Result<(), AdmissionError> {
        let ledger = self
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        ledger.check_budget(budget).map_err(AdmissionError::Budget)
    }

    /// Phase one of a settlement: durably reserves `budget` (both
    /// components) for one release. Only after this returns `Ok` may
    /// noise be drawn for the tenant's slice. In a cross-ε batch every
    /// member begins at its *own* budget — the shared base draw never
    /// changes what a member pays.
    pub fn begin_budget(&self, tenant: &str, budget: Budget) -> Result<u64, AdmissionError> {
        let ledger = self
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        ledger.begin_budget(budget).map_err(|e| match e {
            DurableError::Budget(b) => AdmissionError::Budget(b),
            DurableError::Io(io) => AdmissionError::Ledger {
                tenant: tenant.to_string(),
                reason: io.to_string(),
            },
        })
    }

    /// Phase two, success path: finalizes intent `id` and returns the
    /// remaining `(ε, δ)` budget. Never refuses (admission happened at
    /// `begin_budget`).
    pub fn settle(&self, tenant: &str, id: u64) -> (f64, f64) {
        match self.get(tenant) {
            Some(ledger) => {
                let eps_remaining = ledger.settle(id);
                (eps_remaining, ledger.delta_remaining())
            }
            None => (0.0, 0.0),
        }
    }

    /// Phase two, failure path: refunds intent `id` (only if the abort
    /// is durably recorded — otherwise the reservation is kept, which is
    /// conservative).
    pub fn abort(&self, tenant: &str, id: u64) {
        if let Some(ledger) = self.get(tenant) {
            ledger.abort(id);
        }
    }

    /// Single-phase debit: `begin` + immediate `settle`; returns the
    /// remaining ε budget. The serving path always uses the two phases
    /// explicitly (intent before noise); this shorthand serves tests.
    #[cfg(test)]
    pub fn debit(&self, tenant: &str, eps: Epsilon) -> Result<f64, AdmissionError> {
        let id = self.begin_budget(tenant, Budget::pure(eps))?;
        Ok(self.settle(tenant, id).0)
    }

    /// Ledger journals replayed on registration so far.
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Point-in-time budget positions of every tenant, sorted by id.
    pub fn snapshot(&self) -> Vec<TenantSpend> {
        let mut spends: Vec<TenantSpend> = self
            .ledgers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(tenant, ledger)| {
                let l = ledger.snapshot();
                TenantSpend {
                    tenant: tenant.clone(),
                    total: l.total(),
                    spent: l.spent(),
                    delta_total: l.delta_total(),
                    delta_spent: l.delta_spent(),
                    releases: l.debits(),
                }
            })
            .collect();
        spends.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        spends
    }
}

/// Journal file name for one tenant: a sanitized prefix for operator
/// readability plus an FNV-1a hash of the exact id for uniqueness
/// (distinct tenants whose names sanitize identically get distinct
/// files).
fn ledger_file_name(tenant: &str) -> String {
    let safe: String = tenant
        .chars()
        .take(32)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{safe}-{h:016x}.epsj")
}

/// Typed admission/settlement failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The request names a tenant that was never registered.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: String,
    },
    /// The tenant's remaining budget cannot cover the request.
    Budget(BudgetError),
    /// The tenant's durable budget journal failed an I/O operation; the
    /// request is refused (nothing was reserved, no noise is drawn).
    Ledger {
        /// The affected tenant id.
        tenant: String,
        /// The underlying I/O failure.
        reason: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant:?}")
            }
            AdmissionError::Budget(e) => write!(f, "{e}"),
            AdmissionError::Ledger { tenant, reason } => {
                write!(f, "budget journal for tenant {tenant:?} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Budget(e) => Some(e),
            AdmissionError::UnknownTenant { .. } | AdmissionError::Ledger { .. } => None,
        }
    }
}

/// Sliding-window budget burn rates: every settled release drops one
/// `(when, ε, δ)` sample per tenant; [`BurnTracker::report`] reduces
/// the samples still inside the window to a per-second rate and an
/// estimated time-to-exhaustion. Pure accounting over already-debited
/// grants — no query data, no noise, nothing the ledgers don't already
/// publish.
/// One tenant's recent spend samples: `(when, ε, δ)` per release.
type SpendSamples = VecDeque<(Instant, f64, f64)>;

#[derive(Debug)]
pub(crate) struct BurnTracker {
    window: Duration,
    samples: Mutex<HashMap<String, SpendSamples>>,
}

impl BurnTracker {
    /// A tracker averaging spend over the trailing `window`.
    pub(crate) fn new(window: Duration) -> Self {
        Self {
            window: window.max(Duration::from_millis(1)),
            samples: Mutex::new(HashMap::new()),
        }
    }

    /// Records one settled release for `tenant`.
    pub(crate) fn record(&self, tenant: &str, budget: Budget) {
        let now = Instant::now();
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let queue = samples.entry(tenant.to_string()).or_default();
        queue.push_back((now, budget.eps().value(), budget.delta()));
        while queue
            .front()
            .is_some_and(|(t, _, _)| now.duration_since(*t) > self.window)
        {
            queue.pop_front();
        }
    }

    /// Reduces to per-tenant telemetry, one entry per ledger `spends`
    /// row (tenants with no in-window releases report zero rates).
    pub(crate) fn report(&self, spends: &[TenantSpend]) -> Vec<TenantTelemetry> {
        let now = Instant::now();
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let horizon = self.window.as_secs_f64();
        spends
            .iter()
            .map(|spend| {
                let (eps_in_window, delta_in_window) = samples
                    .get(&spend.tenant)
                    .map(|queue| {
                        queue
                            .iter()
                            .filter(|(t, _, _)| now.duration_since(*t) <= self.window)
                            .fold((0.0, 0.0), |(e, d), (_, se, sd)| (e + se, d + sd))
                    })
                    .unwrap_or((0.0, 0.0));
                let eps_burn_per_sec = eps_in_window / horizon;
                let delta_burn_per_sec = delta_in_window / horizon;
                TenantTelemetry {
                    tenant: spend.tenant.clone(),
                    eps_spent: spend.spent,
                    eps_remaining: (spend.total - spend.spent).max(0.0),
                    delta_spent: spend.delta_spent,
                    delta_remaining: (spend.delta_total - spend.delta_spent).max(0.0),
                    window: self.window,
                    eps_burn_per_sec,
                    delta_burn_per_sec,
                    eps_exhaustion: exhaustion(spend.total - spend.spent, eps_burn_per_sec),
                    delta_exhaustion: exhaustion(
                        spend.delta_total - spend.delta_spent,
                        delta_burn_per_sec,
                    ),
                }
            })
            .collect()
    }
}

/// `remaining / rate` as a duration; `None` when the burn rate is ~0
/// (no exhaustion in sight — avoids infinities in reports). Capped at
/// about 30 years so the duration always constructs.
fn exhaustion(remaining: f64, rate_per_sec: f64) -> Option<Duration> {
    const CAP_SECS: f64 = 1e9;
    if rate_per_sec <= f64::EPSILON {
        return None;
    }
    Some(Duration::from_secs_f64(
        (remaining.max(0.0) / rate_per_sec).min(CAP_SECS),
    ))
}

/// One tenant's privacy-budget telemetry, reported in the
/// [`ServerReport`](crate::server::ServerReport): the ledger position
/// plus the trailing-window burn rate and the time-to-exhaustion it
/// implies at that pace.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTelemetry {
    /// Tenant id.
    pub tenant: String,
    /// Cumulative ε granted.
    pub eps_spent: f64,
    /// ε still grantable.
    pub eps_remaining: f64,
    /// Cumulative δ granted (`0` for pure grants).
    pub delta_spent: f64,
    /// δ still grantable.
    pub delta_remaining: f64,
    /// The trailing window the rates below average over.
    pub window: Duration,
    /// ε granted per second over the trailing window.
    pub eps_burn_per_sec: f64,
    /// δ granted per second over the trailing window.
    pub delta_burn_per_sec: f64,
    /// At the current ε burn rate, when the remaining ε runs out
    /// (`None` when the tenant is idle in the window).
    pub eps_exhaustion: Option<Duration>,
    /// At the current δ burn rate, when the remaining δ runs out
    /// (`None` when idle or on a pure server).
    pub delta_exhaustion: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn pure(v: f64) -> Budget {
        Budget::pure(eps(v))
    }

    #[test]
    fn register_check_debit_cycle() {
        let tenants = TenantLedgers::default();
        tenants.register("acme", eps(1.0)).unwrap();
        assert!(tenants.check_budget("acme", pure(0.5)).is_ok());
        assert!((tenants.debit("acme", eps(0.5)).unwrap() - 0.5).abs() < 1e-15);
        assert!(tenants.check_budget("acme", pure(0.6)).is_err());
        assert!(matches!(
            tenants.debit("acme", eps(0.6)),
            Err(AdmissionError::Budget(BudgetError::Exhausted { .. }))
        ));
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let tenants = TenantLedgers::default();
        assert_eq!(
            tenants.check_budget("ghost", pure(0.1)),
            Err(AdmissionError::UnknownTenant {
                tenant: "ghost".into()
            })
        );
        assert!(tenants.get("ghost").is_none());
    }

    #[test]
    fn snapshot_sorted_and_accurate() {
        let tenants = TenantLedgers::default();
        tenants.register("zeta", eps(2.0)).unwrap();
        tenants.register("alpha", eps(1.0)).unwrap();
        tenants.debit("zeta", eps(0.5)).unwrap();
        let snap = tenants.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, "alpha");
        assert_eq!(snap[0].spent, 0.0);
        assert_eq!(snap[1].tenant, "zeta");
        assert!((snap[1].spent - 0.5).abs() < 1e-15);
        assert_eq!(snap[1].releases, 1);
        assert_eq!(snap[1].delta_total, 0.0);
        assert_eq!(snap[1].delta_spent, 0.0);
    }

    #[test]
    fn re_register_resets_the_budget() {
        let tenants = TenantLedgers::default();
        tenants.register("acme", eps(0.5)).unwrap();
        tenants.debit("acme", eps(0.5)).unwrap();
        assert!(tenants.check_budget("acme", pure(0.1)).is_err());
        tenants.register("acme", eps(1.0)).unwrap();
        assert!(tenants.check_budget("acme", pure(0.1)).is_ok());
    }

    #[test]
    fn two_phase_reservation_gates_admission() {
        let tenants = TenantLedgers::default();
        tenants.register("acme", eps(1.0)).unwrap();
        let id = tenants.begin_budget("acme", pure(0.7)).unwrap();
        // The live reservation counts as spent for concurrent checks.
        assert!(tenants.check_budget("acme", pure(0.5)).is_err());
        tenants.abort("acme", id);
        assert!(tenants.check_budget("acme", pure(0.5)).is_ok());
        let id = tenants.begin_budget("acme", pure(0.7)).unwrap();
        let (remaining, delta_remaining) = tenants.settle("acme", id);
        assert!((remaining - 0.3).abs() < 1e-12);
        assert_eq!(delta_remaining, 0.0);
    }

    #[test]
    fn approx_grants_track_both_columns() {
        let tenants = TenantLedgers::default();
        let grant = Budget::approx(eps(1.0), 1e-5).unwrap();
        tenants.register_budget("acme", grant).unwrap();
        let release = Budget::approx(eps(0.25), 1e-6).unwrap();
        let id = tenants.begin_budget("acme", release).unwrap();
        let (eps_remaining, delta_remaining) = tenants.settle("acme", id);
        assert!((eps_remaining - 0.75).abs() < 1e-12);
        assert!((delta_remaining - 9e-6).abs() < 1e-18);

        // δ exhaustion refuses even when ε would fit.
        let delta_hog = Budget::approx(eps(0.1), 9.5e-6).unwrap();
        assert!(matches!(
            tenants.check_budget("acme", delta_hog),
            Err(AdmissionError::Budget(_))
        ));

        let snap = tenants.snapshot();
        assert!((snap[0].delta_total - 1e-5).abs() < 1e-18);
        assert!((snap[0].delta_spent - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn durable_registry_resumes_spend_across_instances() {
        let dir = std::env::temp_dir().join(format!(
            "lrm_tenants_resume_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let tenants = TenantLedgers::new(Some(dir.clone()));
            let r = tenants.register("acme", eps(1.0)).unwrap();
            assert!(!r.resumed);
            tenants.debit("acme", eps(0.25)).unwrap();
            // A second tenant with a hostile name shares the directory.
            tenants.register("../acme", eps(1.0)).unwrap();
            tenants.debit("../acme", eps(0.5)).unwrap();
            assert_eq!(tenants.replays(), 0);
        }
        let tenants = TenantLedgers::new(Some(dir.clone()));
        let r = tenants.register("acme", eps(1.0)).unwrap();
        assert!(r.resumed);
        assert!((r.spent - 0.25).abs() < 1e-12);
        let r2 = tenants.register("../acme", eps(1.0)).unwrap();
        assert!((r2.spent - 0.5).abs() < 1e-12);
        assert_eq!(tenants.replays(), 2);
        assert!(tenants.check_budget("acme", pure(0.8)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_file_names_are_unique_and_safe() {
        let a = ledger_file_name("../../etc/passwd");
        let b = ledger_file_name(".././etc/passwd");
        assert_ne!(a, b);
        assert!(!a.contains('/') && !a.contains(".."));
        assert!(a.ends_with(".epsj"));
    }

    #[test]
    fn burn_tracker_rates_and_exhaustion() {
        let tracker = BurnTracker::new(Duration::from_secs(10));
        for _ in 0..4 {
            tracker.record("acme", Budget::approx(eps(0.25), 1e-7).unwrap());
        }
        let spends = vec![
            TenantSpend {
                tenant: "acme".into(),
                total: 2.0,
                spent: 1.0,
                delta_total: 1e-5,
                delta_spent: 4e-7,
                releases: 4,
            },
            TenantSpend {
                tenant: "idle".into(),
                total: 1.0,
                spent: 0.0,
                delta_total: 0.0,
                delta_spent: 0.0,
                releases: 0,
            },
        ];
        let telemetry = tracker.report(&spends);
        assert_eq!(telemetry.len(), 2);
        let acme = &telemetry[0];
        assert_eq!(acme.tenant, "acme");
        assert!((acme.eps_remaining - 1.0).abs() < 1e-12);
        // 4 × 0.25 ε inside a 10 s window → 0.1 ε/s → exhaustion in
        // about 10 s for the remaining 1.0 ε.
        assert!((acme.eps_burn_per_sec - 0.1).abs() < 1e-9);
        let eta = acme.eps_exhaustion.expect("burning tenant has an ETA");
        assert!((eta.as_secs_f64() - 10.0).abs() < 0.5, "eta {eta:?}");
        assert!(acme.delta_exhaustion.is_some());
        let idle = &telemetry[1];
        assert_eq!(idle.eps_burn_per_sec, 0.0);
        assert!(idle.eps_exhaustion.is_none());
        assert!(idle.delta_exhaustion.is_none());
    }

    #[test]
    fn burn_tracker_evicts_samples_past_the_window() {
        let tracker = BurnTracker::new(Duration::from_millis(20));
        tracker.record("acme", pure(0.5));
        std::thread::sleep(Duration::from_millis(40));
        tracker.record("acme", pure(0.25));
        let spends = vec![TenantSpend {
            tenant: "acme".into(),
            total: 1.0,
            spent: 0.75,
            delta_total: 0.0,
            delta_spent: 0.0,
            releases: 2,
        }];
        let telemetry = tracker.report(&spends);
        // Only the second release is still inside the 20 ms window.
        let expected = 0.25 / 0.020;
        assert!(
            (telemetry[0].eps_burn_per_sec - expected).abs() / expected < 0.5,
            "rate {} vs expected {expected}",
            telemetry[0].eps_burn_per_sec
        );
    }
}
