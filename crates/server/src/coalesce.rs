//! Batch assembly: merging compatible prepared specs into one structured
//! workload.
//!
//! This is the paper's premise turned into scheduling policy: queries
//! answered *together* through one low-rank strategy beat queries answered
//! alone, so concurrently-arriving compatible specs are concatenated into
//! one combined workload that shares a single compiled strategy and **one
//! noise draw per strategy column** — `r` Laplace samples for the whole
//! batch instead of `Σ rᵢ` across its members. Compatibility is exact:
//! same schema and same structural class (so the merge stays one uniform
//! `IntervalsOp`/CSR operator, never densified). What the budget
//! contributes to the key depends on the noise model:
//!
//! * **Pure ε-DP (Laplace).** The per-release ε is part of the key: the
//!   single Laplace draw is scale-exact, so members at even slightly
//!   different ε cannot share it.
//! * **Approximate (ε, δ)-DP (Gaussian).** Only the δ-class is keyed.
//!   Gaussian noise is closed under addition, so one base draw calibrated
//!   at the *weakest* (largest-ε) member serves every member: stricter
//!   members add an independent residual top-up of variance
//!   `σ_member² − σ_base²` on the same data pass. Mixing δ values would
//!   break that algebra — the analytic calibration is a joint function of
//!   (ε, δ) — so δ stays in the key while ε drops out.
//!
//! Each member's answer is the contiguous slice of the combined batch
//! answer its rows occupy — releasing a slice is post-processing of one
//! DP release at that member's own budget (exactly, for topped-up
//! Gaussian slices; strictly conservatively, for shared Laplace slices).

use crate::spec::{PreparedRows, PreparedSpec, SpecClass};
use lrm_dp::Budget;
use lrm_linalg::operator::CsrOp;
use lrm_workload::{Workload, WorkloadError};
use std::collections::HashSet;
use std::ops::Range;

/// What makes two submissions coalescible. Budget components enter via
/// their IEEE-754 bits: budgets are `Copy` floats and exact equality is
/// the right notion — releases at even slightly different ε (Laplace) or
/// δ (Gaussian) need differently-calibrated noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    pub schema_fingerprint: u64,
    pub class: SpecClass,
    /// ε bits for pure (or ε-fragmented Gaussian) batches; `0` when
    /// cross-ε coalescing erases ε from the key.
    pub eps_bits: u64,
    /// δ bits — `0f64.to_bits()` (= 0) for pure budgets, so pure keys are
    /// unchanged from the Laplace-only servers.
    pub delta_bits: u64,
}

impl BatchKey {
    /// Builds the key for one submission. `coalesce_across_eps` only
    /// affects approximate budgets: when set, ε is erased from the key so
    /// a δ-class shares batches across ε; when clear (the ε-fragmented
    /// baseline), Gaussian batches key on (ε, δ) exactly like pure ones.
    pub fn of(spec: &PreparedSpec, budget: Budget, coalesce_across_eps: bool) -> Self {
        let keyed_on_eps = budget.is_pure() || !coalesce_across_eps;
        Self {
            schema_fingerprint: spec.schema_fingerprint(),
            class: spec.class(),
            eps_bits: if keyed_on_eps {
                budget.eps().value().to_bits()
            } else {
                0
            },
            delta_bits: budget.delta().to_bits(),
        }
    }

    /// The scheduler shard this key routes to. The shard key is a strict
    /// coarsening of the batch key — schema fingerprint × noise class,
    /// where the noise class is the δ-class for Gaussian budgets and the
    /// ε-bits for pure ones — so every submission that could coalesce
    /// into one batch lands on the same shard, and a batch never spans
    /// shards. Structural class and (for Gaussian) ε are deliberately
    /// left out: they split batch keys *within* a shard, not across.
    pub fn shard(&self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        let noise_class = if self.delta_bits != 0 {
            self.delta_bits
        } else {
            self.eps_bits
        };
        // FNV-1a over the two routing words, mixed once more so that
        // near-identical float bit patterns spread across shards.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.schema_fingerprint, noise_class] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % shards as u64) as usize
    }
}

/// Running upper-bound estimate of the combined rank of an open batch,
/// used by the scheduler's rank-growth close.
///
/// Interval rows are differences of prefix indicators, so the combined
/// row space is spanned by the prefix vectors at the distinct boundary
/// points `{lo, hi+1}` the batch has seen — the size of that set bounds
/// the combined rank. CSR batches are bounded by their number of
/// *distinct* rows instead (duplicate rows add nothing), tracked by row
/// hash. Either way, a member that contributes no new element cannot
/// raise the rank of the combined workload: the batch's shared structure
/// is saturated, and further members only add window latency and
/// fingerprint churn. Hash collisions on the sparse side can only
/// under-estimate, which closes a batch early — never a correctness
/// issue, members are answered identically either way.
#[derive(Debug, Default)]
pub(crate) struct RankTracker {
    elements: HashSet<u64>,
}

impl RankTracker {
    /// Folds one member's rows into the estimate; returns whether the
    /// estimated combined rank grew.
    pub fn admit(&mut self, spec: &PreparedSpec) -> bool {
        let mut grew = false;
        match spec.rows() {
            PreparedRows::Intervals(rows) => {
                for &(lo, hi) in rows {
                    grew |= self.elements.insert(lo as u64);
                    grew |= self.elements.insert(hi as u64 + 1);
                }
            }
            PreparedRows::Sparse(rows) => {
                for row in rows {
                    grew |= self.elements.insert(hash_sparse_row(row));
                }
            }
        }
        grew
    }

    /// The current rank upper bound.
    #[cfg(test)]
    pub fn estimate(&self) -> usize {
        self.elements.len()
    }
}

/// FNV-1a over a sparse row's `(cell, weight)` entries.
fn hash_sparse_row(row: &[(usize, f64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &(cell, weight) in row {
        fold(cell as u64);
        fold(weight.to_bits());
    }
    h
}

/// Concatenates the members' rows (in submission order) into one
/// structured workload, returning it with each member's row span. Takes
/// references: the members' rows are copied exactly once, into the
/// workload — no intermediate clone on the worker hot path.
pub(crate) fn combine(
    domain_size: usize,
    specs: &[&PreparedSpec],
) -> Result<(Workload, Vec<Range<usize>>), WorkloadError> {
    debug_assert!(!specs.is_empty());
    let mut spans = Vec::with_capacity(specs.len());
    let mut offset = 0;
    for spec in specs {
        let len = spec.num_queries();
        spans.push(offset..offset + len);
        offset += len;
    }

    let workload = match specs[0].class() {
        SpecClass::Intervals => {
            let mut intervals = Vec::with_capacity(offset);
            for spec in specs {
                match spec.rows() {
                    PreparedRows::Intervals(rows) => intervals.extend_from_slice(rows),
                    PreparedRows::Sparse(_) => unreachable!("batch key fixes the class"),
                }
            }
            Workload::from_intervals(domain_size, intervals)?
        }
        SpecClass::Sparse => {
            let mut rows = Vec::with_capacity(offset);
            for spec in specs {
                match spec.rows() {
                    PreparedRows::Sparse(entries) => rows.extend_from_slice(entries),
                    PreparedRows::Intervals(_) => unreachable!("batch key fixes the class"),
                }
            }
            Workload::from_csr(CsrOp::from_row_entries(rows.len(), domain_size, &rows))?
        }
    };
    Ok((workload, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;
    use lrm_dp::Epsilon;
    use lrm_workload::{Attribute, Schema, WorkloadStructure};

    fn schema() -> Schema {
        Schema::single(Attribute::new("v", 0.0, 64.0, 64).unwrap())
    }

    fn prepared(spec: QuerySpec) -> PreparedSpec {
        spec.compile(&schema()).unwrap()
    }

    #[test]
    fn batch_key_separates_class_eps_and_schema() {
        let s = schema();
        let a = QuerySpec::Total.compile(&s).unwrap();
        let eps1 = Budget::pure(Epsilon::new(0.5).unwrap());
        let eps2 = Budget::pure(Epsilon::new(0.25).unwrap());
        assert_eq!(BatchKey::of(&a, eps1, true), BatchKey::of(&a, eps1, true));
        assert_ne!(BatchKey::of(&a, eps1, true), BatchKey::of(&a, eps2, true));

        let other_schema = Schema::single(Attribute::new("w", 0.0, 64.0, 64).unwrap());
        let b = QuerySpec::Total.compile(&other_schema).unwrap();
        assert_ne!(BatchKey::of(&a, eps1, true), BatchKey::of(&b, eps1, true));

        let two_d = Schema::product(vec![
            Attribute::new("x", 0.0, 1.0, 4).unwrap(),
            Attribute::new("y", 0.0, 1.0, 4).unwrap(),
        ])
        .unwrap();
        let sparse = QuerySpec::Marginal { attr: 1 }.compile(&two_d).unwrap();
        let contiguous = QuerySpec::Marginal { attr: 0 }.compile(&two_d).unwrap();
        assert_ne!(
            BatchKey::of(&sparse, eps1, true),
            BatchKey::of(&contiguous, eps1, true),
            "different structural classes must not share a batch"
        );
    }

    #[test]
    fn gaussian_keys_share_a_delta_class_across_eps() {
        let s = schema();
        let a = QuerySpec::Total.compile(&s).unwrap();
        let strict = Budget::approx(Epsilon::new(0.25).unwrap(), 1e-6).unwrap();
        let loose = Budget::approx(Epsilon::new(0.5).unwrap(), 1e-6).unwrap();
        let other_delta = Budget::approx(Epsilon::new(0.25).unwrap(), 1e-7).unwrap();

        // Cross-ε coalescing: same δ-class shares a key across ε...
        assert_eq!(
            BatchKey::of(&a, strict, true),
            BatchKey::of(&a, loose, true)
        );
        // ...but δ itself still separates batches,
        assert_ne!(
            BatchKey::of(&a, strict, true),
            BatchKey::of(&a, other_delta, true)
        );
        // ...and pure budgets never share a Gaussian δ-class.
        let pure = Budget::pure(Epsilon::new(0.25).unwrap());
        assert_ne!(BatchKey::of(&a, strict, true), BatchKey::of(&a, pure, true));

        // ε-fragmented mode restores ε to the Gaussian key.
        assert_ne!(
            BatchKey::of(&a, strict, false),
            BatchKey::of(&a, loose, false)
        );
        assert_eq!(
            BatchKey::of(&a, strict, false),
            BatchKey::of(&a, strict, false),
            "the fragmented key is still deterministic per (ε, δ)"
        );
    }

    #[test]
    fn combine_concatenates_in_order() {
        let a = prepared(QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 32.0), (32.0, 64.0)],
        });
        let b = prepared(QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![16.0, 48.0, 64.0],
        });
        let (w, spans) = combine(64, &[&a, &b]).unwrap();
        assert_eq!(w.structure(), WorkloadStructure::Intervals);
        assert_eq!(w.num_queries(), 5);
        assert_eq!(spans, vec![0..2, 2..5]);

        // The combined answers are exactly the members' answers, stacked.
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let combined = w.answer(&x).unwrap();
        let wa = a.to_workload().unwrap().answer(&x).unwrap();
        let wb = b.to_workload().unwrap().answer(&x).unwrap();
        assert_eq!(&combined[spans[0].clone()], &wa[..]);
        assert_eq!(&combined[spans[1].clone()], &wb[..]);
    }

    #[test]
    fn rank_tracker_saturates_on_shared_boundaries() {
        let mut tracker = RankTracker::default();
        let a = prepared(QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(0.0, 16.0), (16.0, 32.0)],
        });
        assert!(tracker.admit(&a), "first member always grows the estimate");
        assert_eq!(tracker.estimate(), 3); // boundary points {0, 16, 32}

        // Prefixes over the same grid re-use those boundaries exactly.
        let b = prepared(QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![16.0, 32.0],
        });
        assert!(!tracker.admit(&b), "no new boundary points, no rank growth");
        assert_eq!(tracker.estimate(), 3);

        // A member off the grid grows the estimate again.
        let c = prepared(QuerySpec::Ranges {
            attr: 0,
            ranges: vec![(8.0, 24.0)],
        });
        assert!(tracker.admit(&c));
        assert_eq!(tracker.estimate(), 5); // + {8, 24}
    }

    #[test]
    fn rank_tracker_counts_distinct_sparse_rows() {
        let two_d = Schema::product(vec![
            Attribute::new("x", 0.0, 1.0, 4).unwrap(),
            Attribute::new("y", 0.0, 1.0, 3).unwrap(),
        ])
        .unwrap();
        let marginal = QuerySpec::Marginal { attr: 1 }.compile(&two_d).unwrap();
        let mut tracker = RankTracker::default();
        assert!(tracker.admit(&marginal));
        assert_eq!(tracker.estimate(), 3); // three distinct strided rows

        // The identical spec again: pure duplicates, zero growth.
        assert!(!tracker.admit(&marginal));
        assert_eq!(tracker.estimate(), 3);

        // A different inner-attribute slice is a new row.
        let slice = QuerySpec::Ranges {
            attr: 1,
            ranges: vec![(0.0, 0.7)],
        }
        .compile(&two_d)
        .unwrap();
        assert!(tracker.admit(&slice));
        assert_eq!(tracker.estimate(), 4);
    }

    #[test]
    fn combine_sparse_rows() {
        let two_d = Schema::product(vec![
            Attribute::new("x", 0.0, 1.0, 4).unwrap(),
            Attribute::new("y", 0.0, 1.0, 3).unwrap(),
        ])
        .unwrap();
        let a = QuerySpec::Marginal { attr: 1 }.compile(&two_d).unwrap();
        let b = QuerySpec::Ranges {
            attr: 1,
            ranges: vec![(0.0, 0.5)],
        }
        .compile(&two_d)
        .unwrap();
        let (w, spans) = combine(12, &[&a, &b]).unwrap();
        assert_eq!(w.structure(), WorkloadStructure::Sparse);
        assert_eq!(w.num_queries(), 4);
        assert_eq!(spans, vec![0..3, 3..4]);
    }
}
