//! The serving metrics surface.
//!
//! Counters are plain relaxed atomics bumped on the hot path; latencies
//! are recorded per request (submit → response) into a fixed-size
//! log-scale `LatencyHistogram` — O(1) memory and a single relaxed
//! `fetch_add` per request, so the surface stays flat at 10⁵+ in-flight
//! requests — and reduced to percentiles only when a snapshot is taken.
//! The queue-depth gauge counts requests that have been submitted but not
//! yet responded to — it spans the scheduler's coalescing window *and*
//! the worker queue, which is the number an operator actually wants; the
//! sharded scheduler additionally keeps one depth/peak gauge pair per
//! shard so overload decisions and balance reporting see the queue that
//! actually admitted the request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution bits: 2⁶ = 64 sub-buckets per power of two, so
/// values below 64 µs are exact and everything above is recorded within
/// a 1/64 (≈1.6%) relative rounding, always rounding *down* to the
/// bucket floor.
const SUB_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// 64 exact buckets + 58 major (power-of-two) ranges × 64 sub-buckets
/// covers every `u64` microsecond value in ~30 KB of counters.
const BUCKET_COUNT: usize = (SUB_BUCKETS + (63 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Index of the histogram bucket holding `us`.
fn bucket_index(us: u64) -> usize {
    if us < SUB_BUCKETS {
        us as usize
    } else {
        let e = 63 - u64::from(us.leading_zeros());
        let major = e - u64::from(SUB_BITS) + 1;
        let sub = (us >> (e - u64::from(SUB_BITS))) - SUB_BUCKETS;
        (major * SUB_BUCKETS + sub) as usize
    }
}

/// The smallest value a bucket holds (the reported representative:
/// percentiles round down, never up, by at most 1/64 relative).
fn bucket_floor(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        i
    } else {
        let major = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << (major - 1)
    }
}

/// A fixed-bucket log-scale latency histogram: lock-free recording,
/// O(1) memory independent of request count.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    /// Exact running sum of samples in µs (not bucket floors) — the
    /// `_sum` a Prometheus histogram exposes, and what lets a trace's
    /// per-request phase decomposition be cross-checked against the
    /// histogram in aggregate.
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample (lock-free).
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The non-empty `(bucket_floor_us, count)` pairs of a bucket-count
/// copy, in ascending floor order.
fn nonzero_buckets(counts: &[u64]) -> Vec<(u64, u64)> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (bucket_floor(i), c))
        .collect()
}

/// Nearest-rank percentile over a bucket-count copy: the floor of the
/// bucket holding the rank-th smallest sample.
fn percentile(counts: &[u64], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Duration::from_micros(bucket_floor(i));
        }
    }
    Duration::from_micros(bucket_floor(counts.len() - 1))
}

/// Internal live counters (shared across scheduler shards, workers,
/// clients).
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    pub submitted: AtomicU64,
    pub answered: AtomicU64,
    pub rejected_admission: AtomicU64,
    pub rejected_settlement: AtomicU64,
    pub failed: AtomicU64,
    pub batches: AtomicU64,
    pub coalesced_batches: AtomicU64,
    pub single_batches: AtomicU64,
    pub batch_requests: AtomicU64,
    pub batch_rows: AtomicU64,
    pub max_occupancy: AtomicU64,
    pub queue_depth: AtomicU64,
    pub peak_queue_depth: AtomicU64,
    pub rank_closed_batches: AtomicU64,
    pub window_closed_batches: AtomicU64,
    pub ceiling_closed_batches: AtomicU64,
    pub drain_closed_batches: AtomicU64,
    pub farm_shapes: AtomicU64,
    pub farm_precompiled: AtomicU64,
    pub farm_compile_us: AtomicU64,
    pub worker_respawns: AtomicU64,
    pub quarantined_shapes: AtomicU64,
    pub degraded_releases: AtomicU64,
    pub shed: AtomicU64,
    pub ledger_replays: AtomicU64,
    pub laplace_batches: AtomicU64,
    pub gaussian_batches: AtomicU64,
    pub cross_eps_batches: AtomicU64,
    pub stolen_batches: AtomicU64,
    /// Per-shard submitted-but-unanswered gauges (index = shard id).
    shard_depths: Vec<AtomicU64>,
    shard_peaks: Vec<AtomicU64>,
    latencies: LatencyHistogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ServerMetrics {
    /// Live counters for a server running `shards` scheduler shards.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            submitted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            rejected_admission: AtomicU64::new(0),
            rejected_settlement: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            single_batches: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_rows: AtomicU64::new(0),
            max_occupancy: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            rank_closed_batches: AtomicU64::new(0),
            window_closed_batches: AtomicU64::new(0),
            ceiling_closed_batches: AtomicU64::new(0),
            drain_closed_batches: AtomicU64::new(0),
            farm_shapes: AtomicU64::new(0),
            farm_precompiled: AtomicU64::new(0),
            farm_compile_us: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            quarantined_shapes: AtomicU64::new(0),
            degraded_releases: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            ledger_replays: AtomicU64::new(0),
            laplace_batches: AtomicU64::new(0),
            gaussian_batches: AtomicU64::new(0),
            cross_eps_batches: AtomicU64::new(0),
            stolen_batches: AtomicU64::new(0),
            shard_depths: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_peaks: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            latencies: LatencyHistogram::default(),
        }
    }

    /// A request entered shard `shard`'s queue.
    pub fn enqueued(&self, shard: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let shard_depth = self.shard_depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        self.shard_peaks[shard].fetch_max(shard_depth, Ordering::Relaxed);
    }

    /// A request left shard `shard`'s queue (answered or rejected);
    /// records latency.
    pub fn dequeued(&self, shard: usize, latency: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shard_depths[shard].fetch_sub(1, Ordering::Relaxed);
        self.latencies.record(latency);
    }

    /// Undoes an [`enqueued`](Self::enqueued) whose submission never
    /// reached a scheduler shard (send failure at shutdown); no latency
    /// sample is taken.
    pub fn enqueue_rolled_back(&self, shard: usize) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shard_depths[shard].fetch_sub(1, Ordering::Relaxed);
    }

    /// The live submitted-but-unanswered depth of one shard.
    pub fn shard_depth(&self, shard: usize) -> u64 {
        self.shard_depths[shard].load(Ordering::Relaxed)
    }

    /// A batch was flushed to the workers. `gaussian` tags the batch's
    /// noise model; `distinct_eps` is how many distinct per-release ε
    /// values its members carry (cross-ε coalescing makes this > 1 only
    /// for Gaussian batches).
    pub fn batch_flushed(&self, requests: u64, rows: u64, gaussian: bool, distinct_eps: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.single_batches.fetch_add(1, Ordering::Relaxed);
        }
        if gaussian {
            self.gaussian_batches.fetch_add(1, Ordering::Relaxed);
            if distinct_eps > 1 {
                self.cross_eps_batches.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.laplace_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.batch_requests.fetch_add(requests, Ordering::Relaxed);
        self.batch_rows.fetch_add(rows, Ordering::Relaxed);
        self.max_occupancy.fetch_max(requests, Ordering::Relaxed);
    }

    /// Reduces the live counters to an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts = self.latencies.counts();
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_requests = self.batch_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            rejected_admission: self.rejected_admission.load(Ordering::Relaxed),
            rejected_settlement: self.rejected_settlement.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            single_batches: self.single_batches.load(Ordering::Relaxed),
            mean_occupancy: if batches > 0 {
                batch_requests as f64 / batches as f64
            } else {
                0.0
            },
            max_occupancy: self.max_occupancy.load(Ordering::Relaxed),
            batch_rows: self.batch_rows.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            rank_closed_batches: self.rank_closed_batches.load(Ordering::Relaxed),
            window_closed_batches: self.window_closed_batches.load(Ordering::Relaxed),
            ceiling_closed_batches: self.ceiling_closed_batches.load(Ordering::Relaxed),
            drain_closed_batches: self.drain_closed_batches.load(Ordering::Relaxed),
            farm_shapes: self.farm_shapes.load(Ordering::Relaxed),
            farm_precompiled: self.farm_precompiled.load(Ordering::Relaxed),
            farm_compile_time: Duration::from_micros(self.farm_compile_us.load(Ordering::Relaxed)),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            quarantined_shapes: self.quarantined_shapes.load(Ordering::Relaxed),
            degraded_releases: self.degraded_releases.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            ledger_replays: self.ledger_replays.load(Ordering::Relaxed),
            laplace_batches: self.laplace_batches.load(Ordering::Relaxed),
            gaussian_batches: self.gaussian_batches.load(Ordering::Relaxed),
            cross_eps_batches: self.cross_eps_batches.load(Ordering::Relaxed),
            stolen_batches: self.stolen_batches.load(Ordering::Relaxed),
            shard_depths: self
                .shard_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            shard_peak_depths: self
                .shard_peaks
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            p50_latency: percentile(&counts, 0.50),
            p99_latency: percentile(&counts, 0.99),
            p999_latency: percentile(&counts, 0.999),
            latency_sum: Duration::from_micros(self.latencies.sum_us.load(Ordering::Relaxed)),
            latency_buckets: nonzero_buckets(&counts),
        }
    }
}

/// A point-in-time copy of the serving counters, exposed through
/// [`ServerReport`](crate::server::ServerReport).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests that entered the queue.
    pub submitted: u64,
    /// Requests answered with a release.
    pub answered: u64,
    /// Requests refused at admission (unknown tenant / budget).
    pub rejected_admission: u64,
    /// Requests refused at settlement (budget spent concurrently between
    /// admission and release).
    pub rejected_settlement: u64,
    /// Requests failed by a compile/answer error.
    pub failed: u64,
    /// Batches flushed to the worker pool.
    pub batches: u64,
    /// Batches carrying two or more coalesced requests.
    pub coalesced_batches: u64,
    /// Single-request batches (the fallthrough path).
    pub single_batches: u64,
    /// Mean requests per batch.
    pub mean_occupancy: f64,
    /// Largest batch observed.
    pub max_occupancy: u64,
    /// Total workload rows answered across all batches.
    pub batch_rows: u64,
    /// Peak submitted-but-unanswered requests (across all shards).
    pub peak_queue_depth: u64,
    /// Batches closed by the rank-growth rule (the estimated combined
    /// rank stopped growing) rather than by the cap, the window, or
    /// shutdown.
    pub rank_closed_batches: u64,
    /// Batches closed because their coalescing window elapsed (including
    /// zero-window servers whose batches never wait).
    pub window_closed_batches: u64,
    /// Batches closed at the `max_batch` occupancy ceiling.
    pub ceiling_closed_batches: u64,
    /// Batches flushed by the shutdown drain (the scheduler hung up with
    /// the batch still open).
    pub drain_closed_batches: u64,
    /// Distinct shapes the compile farm observed in the admission stream.
    pub farm_shapes: u64,
    /// Shapes the farm pushed through the engine cache.
    pub farm_precompiled: u64,
    /// Total wall-clock the farm spent compiling (bounded by the
    /// configured compile budget).
    pub farm_compile_time: Duration,
    /// Worker panics contained and recovered from (the worker kept — or
    /// logically respawned into — its pool slot).
    pub worker_respawns: u64,
    /// Distinct workload shapes quarantined after crashing a worker.
    pub quarantined_shapes: u64,
    /// Releases answered by the degraded-mode fallback because the
    /// configured mechanism blew its compile deadline.
    pub degraded_releases: u64,
    /// Requests shed at submission because the admitting shard's queue
    /// was at its configured depth cap.
    pub shed: u64,
    /// Tenant ε-journals replayed when tenants registered (restart
    /// resumes honored by the durable ledgers).
    pub ledger_replays: u64,
    /// Batches answered with Laplace noise (pure ε-DP releases).
    pub laplace_batches: u64,
    /// Batches answered with Gaussian noise ((ε, δ)-DP releases).
    pub gaussian_batches: u64,
    /// Gaussian batches whose members span two or more distinct
    /// per-release ε values — batches that exist *only* because of
    /// cross-ε coalescing (an ε-keyed scheduler would have fragmented
    /// them).
    pub cross_eps_batches: u64,
    /// Batches a worker claimed from another shard's flush queue (the
    /// work-stealing handoff; 0 on a single-shard server).
    pub stolen_batches: u64,
    /// Live submitted-but-unanswered requests per scheduler shard at
    /// snapshot time (index = shard id; one entry on an unsharded
    /// server).
    pub shard_depths: Vec<u64>,
    /// Peak submitted-but-unanswered requests each shard ever held —
    /// the shard-balance signal: a hot shard shows up as one peak far
    /// above the rest.
    pub shard_peak_depths: Vec<u64>,
    /// Median submit→response latency (histogram floor: exact below
    /// 64 µs, within 1/64 relative — rounding down — above).
    pub p50_latency: Duration,
    /// 99th-percentile submit→response latency (same resolution).
    pub p99_latency: Duration,
    /// 99.9th-percentile submit→response latency (same resolution).
    pub p999_latency: Duration,
    /// Exact sum of every recorded latency sample (a Prometheus
    /// histogram's `_sum`; per-sample µs, not bucket floors).
    pub latency_sum: Duration,
    /// The raw non-empty histogram buckets as `(bucket_floor_us, count)`
    /// pairs in ascending floor order — everything needed to re-derive
    /// any percentile or export cumulative Prometheus buckets.
    pub latency_buckets: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Iterates the raw `(bucket_floor_us, count)` latency histogram
    /// pairs, ascending, skipping empty buckets.
    pub fn histogram_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.latency_buckets.iter().copied()
    }

    /// Total latency samples recorded (= requests that got a response).
    pub fn latency_samples(&self) -> u64 {
        self.latency_buckets.iter().map(|&(_, c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up() {
        let m = ServerMetrics::new(2);
        m.enqueued(0);
        m.enqueued(1);
        m.enqueued(1);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 3);
        assert_eq!(m.shard_depth(0), 1);
        assert_eq!(m.shard_depth(1), 2);
        m.batch_flushed(2, 10, true, 2);
        m.batch_flushed(1, 3, false, 1);
        m.dequeued(0, Duration::from_millis(4));
        m.dequeued(1, Duration::from_millis(8));
        m.dequeued(1, Duration::from_millis(100));
        m.answered.fetch_add(3, Ordering::Relaxed);

        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.answered, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.coalesced_batches, 1);
        assert_eq!(s.single_batches, 1);
        assert_eq!(s.max_occupancy, 2);
        assert_eq!(s.batch_rows, 13);
        assert!((s.mean_occupancy - 1.5).abs() < 1e-12);
        assert_eq!(s.peak_queue_depth, 3);
        assert_eq!(s.shard_depths, vec![0, 0]);
        assert_eq!(s.shard_peak_depths, vec![1, 2]);
        assert_eq!(s.gaussian_batches, 1);
        assert_eq!(s.laplace_batches, 1);
        assert_eq!(s.cross_eps_batches, 1);
        // 8000 µs is a bucket floor (125 × 64), so the median is exact;
        // 100 ms rounds down within the histogram's 1/64 resolution.
        assert_eq!(s.p50_latency, Duration::from_millis(8));
        assert!(s.p99_latency <= Duration::from_millis(100));
        assert!(s.p99_latency >= Duration::from_micros(100_000 - 100_000 / 64));
    }

    #[test]
    fn percentiles_on_empty_and_single() {
        let h = LatencyHistogram::default();
        assert_eq!(percentile(&h.counts(), 0.5), Duration::ZERO);
        h.record(Duration::from_micros(7));
        let counts = h.counts();
        assert_eq!(percentile(&counts, 0.5), Duration::from_micros(7));
        assert_eq!(percentile(&counts, 0.99), Duration::from_micros(7));
        let h = LatencyHistogram::default();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        let counts = h.counts();
        // The first major range (64..128) still has stride 1, so every
        // value below 128 µs is exact.
        assert_eq!(percentile(&counts, 0.50), Duration::from_micros(50));
        assert_eq!(percentile(&counts, 0.99), Duration::from_micros(99));
    }

    #[test]
    fn histogram_percentiles_track_the_exact_sort_within_resolution() {
        // The regression the histogram must pass against the old
        // Vec-sort path: for an arbitrary small sample, every reported
        // percentile equals the exact nearest-rank value rounded down by
        // at most 1/64 relative.
        let exact_percentile = |sorted: &[u64], q: f64| -> u64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..500 {
            // Deterministic xorshift spread over ~6 decades of µs.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % 10_000_000);
        }
        let h = LatencyHistogram::default();
        for &s in &samples {
            h.record(Duration::from_micros(s));
        }
        samples.sort_unstable();
        let counts = h.counts();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&samples, q);
            let reported = percentile(&counts, q).as_micros() as u64;
            assert!(
                reported <= exact && exact - reported <= exact / 64 + 1,
                "q={q}: reported {reported} vs exact {exact}"
            );
        }
    }

    #[test]
    fn snapshot_exposes_raw_buckets_sum_and_p999() {
        let m = ServerMetrics::new(1);
        // 998 fast samples and two slow ones: nearest-rank p99.9 of
        // 1000 samples is rank 999 — a slow sample — so p99.9 must
        // surface the outlier that p99 (rank 990) is allowed to hide.
        for _ in 0..998 {
            m.enqueued(0);
            m.dequeued(0, Duration::from_micros(10));
        }
        for _ in 0..2 {
            m.enqueued(0);
            m.dequeued(0, Duration::from_millis(50));
        }
        let s = m.snapshot();
        assert_eq!(s.p99_latency, Duration::from_micros(10));
        assert!(
            s.p999_latency >= Duration::from_micros(50_000 - 50_000 / 64),
            "p99.9 must surface the 50 ms outlier, got {:?}",
            s.p999_latency
        );
        assert_eq!(s.latency_sum, Duration::from_micros(998 * 10 + 2 * 50_000));
        assert_eq!(s.latency_samples(), 1000);
        let buckets: Vec<(u64, u64)> = s.histogram_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (10, 998));
        assert_eq!(buckets[1].1, 2);
        assert!(buckets[0].0 < buckets[1].0, "floors ascend");
        // The raw pairs re-derive the exact same percentiles the
        // snapshot reported.
        let floor_of = |q: f64| -> u64 {
            let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0;
            for &(floor, c) in &buckets {
                seen += c;
                if seen >= rank {
                    return floor;
                }
            }
            unreachable!()
        };
        assert_eq!(Duration::from_micros(floor_of(0.5)), s.p50_latency);
        assert_eq!(Duration::from_micros(floor_of(0.999)), s.p999_latency);
    }

    #[test]
    fn bucket_round_trip_covers_the_range() {
        for v in (0..4096u64).chain([8000, 99_328, 100_000, 1 << 20, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor {floor} > value {v}");
            assert!(
                v - floor <= v / 64,
                "value {v} rounded down past 1/64 (floor {floor})"
            );
            // Floors are canonical: a floor indexes back to its own bucket.
            assert_eq!(bucket_index(floor), i);
        }
    }
}
