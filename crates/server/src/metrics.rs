//! The serving metrics surface.
//!
//! Counters are plain relaxed atomics bumped on the hot path; latencies
//! are recorded per request (submit → response) into a mutex-guarded
//! vector and reduced to percentiles only when a snapshot is taken. The
//! queue-depth gauge counts requests that have been submitted but not yet
//! responded to — it spans the scheduler's coalescing window *and* the
//! worker queue, which is the number an operator actually wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Internal live counters (shared across scheduler, workers, clients).
#[derive(Debug, Default)]
pub(crate) struct ServerMetrics {
    pub submitted: AtomicU64,
    pub answered: AtomicU64,
    pub rejected_admission: AtomicU64,
    pub rejected_settlement: AtomicU64,
    pub failed: AtomicU64,
    pub batches: AtomicU64,
    pub coalesced_batches: AtomicU64,
    pub single_batches: AtomicU64,
    pub batch_requests: AtomicU64,
    pub batch_rows: AtomicU64,
    pub max_occupancy: AtomicU64,
    pub queue_depth: AtomicU64,
    pub peak_queue_depth: AtomicU64,
    pub rank_closed_batches: AtomicU64,
    pub farm_shapes: AtomicU64,
    pub farm_precompiled: AtomicU64,
    pub farm_compile_us: AtomicU64,
    pub worker_respawns: AtomicU64,
    pub quarantined_shapes: AtomicU64,
    pub degraded_releases: AtomicU64,
    pub shed: AtomicU64,
    pub ledger_replays: AtomicU64,
    pub laplace_batches: AtomicU64,
    pub gaussian_batches: AtomicU64,
    pub cross_eps_batches: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl ServerMetrics {
    /// A request entered the queue.
    pub fn enqueued(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A request left the queue (answered or rejected); records latency.
    pub fn dequeued(&self, latency: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(us);
    }

    /// A batch was flushed to the workers. `gaussian` tags the batch's
    /// noise model; `distinct_eps` is how many distinct per-release ε
    /// values its members carry (cross-ε coalescing makes this > 1 only
    /// for Gaussian batches).
    pub fn batch_flushed(&self, requests: u64, rows: u64, gaussian: bool, distinct_eps: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.single_batches.fetch_add(1, Ordering::Relaxed);
        }
        if gaussian {
            self.gaussian_batches.fetch_add(1, Ordering::Relaxed);
            if distinct_eps > 1 {
                self.cross_eps_batches.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.laplace_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.batch_requests.fetch_add(requests, Ordering::Relaxed);
        self.batch_rows.fetch_add(rows, Ordering::Relaxed);
        self.max_occupancy.fetch_max(requests, Ordering::Relaxed);
    }

    /// Reduces the live counters to an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latencies = self
            .latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        latencies.sort_unstable();
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_requests = self.batch_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            rejected_admission: self.rejected_admission.load(Ordering::Relaxed),
            rejected_settlement: self.rejected_settlement.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            single_batches: self.single_batches.load(Ordering::Relaxed),
            mean_occupancy: if batches > 0 {
                batch_requests as f64 / batches as f64
            } else {
                0.0
            },
            max_occupancy: self.max_occupancy.load(Ordering::Relaxed),
            batch_rows: self.batch_rows.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            rank_closed_batches: self.rank_closed_batches.load(Ordering::Relaxed),
            farm_shapes: self.farm_shapes.load(Ordering::Relaxed),
            farm_precompiled: self.farm_precompiled.load(Ordering::Relaxed),
            farm_compile_time: Duration::from_micros(self.farm_compile_us.load(Ordering::Relaxed)),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            quarantined_shapes: self.quarantined_shapes.load(Ordering::Relaxed),
            degraded_releases: self.degraded_releases.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            ledger_replays: self.ledger_replays.load(Ordering::Relaxed),
            laplace_batches: self.laplace_batches.load(Ordering::Relaxed),
            gaussian_batches: self.gaussian_batches.load(Ordering::Relaxed),
            cross_eps_batches: self.cross_eps_batches.load(Ordering::Relaxed),
            p50_latency: percentile(&latencies, 0.50),
            p99_latency: percentile(&latencies, 0.99),
        }
    }
}

/// Nearest-rank percentile over an already-sorted micros list.
fn percentile(sorted_us: &[u64], q: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    Duration::from_micros(sorted_us[rank - 1])
}

/// A point-in-time copy of the serving counters, exposed through
/// [`ServerReport`](crate::server::ServerReport).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests that entered the queue.
    pub submitted: u64,
    /// Requests answered with a release.
    pub answered: u64,
    /// Requests refused at admission (unknown tenant / budget).
    pub rejected_admission: u64,
    /// Requests refused at settlement (budget spent concurrently between
    /// admission and release).
    pub rejected_settlement: u64,
    /// Requests failed by a compile/answer error.
    pub failed: u64,
    /// Batches flushed to the worker pool.
    pub batches: u64,
    /// Batches carrying two or more coalesced requests.
    pub coalesced_batches: u64,
    /// Single-request batches (the fallthrough path).
    pub single_batches: u64,
    /// Mean requests per batch.
    pub mean_occupancy: f64,
    /// Largest batch observed.
    pub max_occupancy: u64,
    /// Total workload rows answered across all batches.
    pub batch_rows: u64,
    /// Peak submitted-but-unanswered requests.
    pub peak_queue_depth: u64,
    /// Batches closed by the rank-growth rule (the estimated combined
    /// rank stopped growing) rather than by the cap, the window, or
    /// shutdown.
    pub rank_closed_batches: u64,
    /// Distinct shapes the compile farm observed in the admission stream.
    pub farm_shapes: u64,
    /// Shapes the farm pushed through the engine cache.
    pub farm_precompiled: u64,
    /// Total wall-clock the farm spent compiling (bounded by the
    /// configured compile budget).
    pub farm_compile_time: Duration,
    /// Worker panics contained and recovered from (the worker kept — or
    /// logically respawned into — its pool slot).
    pub worker_respawns: u64,
    /// Distinct workload shapes quarantined after crashing a worker.
    pub quarantined_shapes: u64,
    /// Releases answered by the degraded-mode fallback because the
    /// configured mechanism blew its compile deadline.
    pub degraded_releases: u64,
    /// Requests shed at submission because the queue was at its
    /// configured depth cap.
    pub shed: u64,
    /// Tenant ε-journals replayed when tenants registered (restart
    /// resumes honored by the durable ledgers).
    pub ledger_replays: u64,
    /// Batches answered with Laplace noise (pure ε-DP releases).
    pub laplace_batches: u64,
    /// Batches answered with Gaussian noise ((ε, δ)-DP releases).
    pub gaussian_batches: u64,
    /// Gaussian batches whose members span two or more distinct
    /// per-release ε values — batches that exist *only* because of
    /// cross-ε coalescing (an ε-keyed scheduler would have fragmented
    /// them).
    pub cross_eps_batches: u64,
    /// Median submit→response latency.
    pub p50_latency: Duration,
    /// 99th-percentile submit→response latency.
    pub p99_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up() {
        let m = ServerMetrics::default();
        m.enqueued();
        m.enqueued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 3);
        m.batch_flushed(2, 10, true, 2);
        m.batch_flushed(1, 3, false, 1);
        m.dequeued(Duration::from_millis(4));
        m.dequeued(Duration::from_millis(8));
        m.dequeued(Duration::from_millis(100));
        m.answered.fetch_add(3, Ordering::Relaxed);

        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.answered, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.coalesced_batches, 1);
        assert_eq!(s.single_batches, 1);
        assert_eq!(s.max_occupancy, 2);
        assert_eq!(s.batch_rows, 13);
        assert!((s.mean_occupancy - 1.5).abs() < 1e-12);
        assert_eq!(s.peak_queue_depth, 3);
        assert_eq!(s.gaussian_batches, 1);
        assert_eq!(s.laplace_batches, 1);
        assert_eq!(s.cross_eps_batches, 1);
        assert_eq!(s.p50_latency, Duration::from_millis(8));
        assert_eq!(s.p99_latency, Duration::from_millis(100));
    }

    #[test]
    fn percentiles_on_empty_and_single() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[7], 0.5), Duration::from_micros(7));
        assert_eq!(percentile(&[7], 0.99), Duration::from_micros(7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), Duration::from_micros(50));
        assert_eq!(percentile(&v, 0.99), Duration::from_micros(99));
    }
}
