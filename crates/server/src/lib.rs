#![warn(missing_docs)]
//! `lrm-server` — a concurrent batch-serving runtime for the Low-Rank
//! Mechanism.
//!
//! The paper's whole premise is that batch queries answered *together*
//! through one low-rank strategy beat queries answered alone; this crate
//! is that premise as a runtime. Concurrent clients submit declarative
//! [`QuerySpec`]s; a **sharded coalescing scheduler** (see
//! [`ServerBuilder::shards`](server::ServerBuilder::shards)) collects
//! compatible specs arriving within a bounded window into one combined
//! structured workload (never densified), a work-stealing **worker
//! pool** answers each batch through the
//! shared compiled-strategy [`Engine`](lrm_core::engine::Engine) cache
//! with one noise draw per strategy column, and **per-tenant budget
//! ledgers** ([`lrm_dp::DurableLedger`]) run a two-phase debit around
//! every release — over-spends are typed refusals, never silent, and
//! with a [state directory](server::ServerBuilder::state_dir) the
//! accounting survives crashes and restarts. Worker panics are contained
//! (the offending shape is quarantined, the pool never empties), compile
//! overruns degrade to a guaranteed-fast fallback at the same budget,
//! and a bounded queue sheds load synchronously (see the
//! [server module docs](server) for the failure model).
//!
//! Servers run in one of two noise models, fixed by
//! [`CompileOptions::flavor`](lrm_core::engine::CompileOptions): pure
//! ε-DP (Laplace, the default) or approximate (ε, δ)-DP (Gaussian, via
//! [`Client::submit_budget`]). Gaussian servers additionally coalesce
//! submissions at *different* ε into one batch within a δ-class — one
//! shared base draw plus per-member residual top-ups, each member
//! settled at its own budget (see [`coalesce`]).
//!
//! Completions are delivered through blocking [`Ticket`]s, through an
//! evented [`TicketSet`] completion queue that lets one client thread
//! drive tens of thousands of in-flight submissions, or through
//! per-request callbacks (see [`tickets`]).
//!
//! Built on `std::thread::scope` + `mpsc` channels (like the SpMM kernels
//! in `lrm-linalg`): no async runtime.
//!
//! ```
//! use lrm_core::engine::MechanismKind;
//! use lrm_dp::Epsilon;
//! use lrm_server::{QuerySpec, Server};
//! use lrm_workload::{Attribute, Schema};
//!
//! // A 24-bucket age histogram as the private database.
//! let schema = Schema::single(Attribute::new("age", 0.0, 120.0, 24).unwrap());
//! let data: Vec<f64> = (0..24).map(|i| 100.0 + (i as f64) * 3.0).collect();
//!
//! let server = Server::builder(schema, data)
//!     .mechanism(MechanismKind::Lrm)
//!     .max_batch(4)
//!     .build()
//!     .unwrap();
//! server.register_tenant("acme", Epsilon::new(1.0).unwrap());
//!
//! let eps = Epsilon::new(0.5).unwrap();
//! let (outcome, report) = server.serve(|client| {
//!     let spec = QuerySpec::Ranges { attr: 0, ranges: vec![(0.0, 60.0), (60.0, 120.0)] };
//!     let ticket = client.submit("acme", &spec, eps).unwrap();
//!     ticket.wait()
//! });
//! let release = outcome.unwrap();
//! assert_eq!(release.answers.len(), 2);
//! assert!((release.eps_remaining - 0.5).abs() < 1e-12);
//! assert_eq!(report.metrics.answered, 1);
//! ```

pub mod coalesce;
pub mod exposition;
mod farm;
pub mod metrics;
pub mod server;
pub mod spec;
pub mod tenants;
pub mod tickets;

pub use metrics::MetricsSnapshot;
pub use server::{Client, Release, Server, ServerBuilder, ServerError, ServerReport, Ticket};
pub use spec::{PreparedRows, PreparedSpec, QuerySpec, SpecClass, SpecError};
pub use tenants::{AdmissionError, TenantResume, TenantSpend, TenantTelemetry};
pub use tickets::{Completion, TicketSet};

// Cross-thread sharing audit: the scheduler, every worker, and every
// client thread borrow these concurrently, so their thread-safety is a
// compile-time contract here — a regression (say, a non-Sync cache cell
// inside the engine) fails this crate's build, not a customer's.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<lrm_core::engine::Engine>();
    assert_send_sync::<lrm_core::engine::CompiledMechanism>();
    assert_send_sync::<lrm_workload::Workload>();
    assert_send_sync::<lrm_workload::Schema>();
    assert_send_sync::<lrm_dp::SharedLedger>();
    assert_send_sync::<lrm_dp::DurableLedger>();
    assert_send_sync::<Release>();
    assert_send_sync::<ServerError>();
    // Several driver threads may share one completion queue.
    assert_send_sync::<TicketSet>();
    const fn assert_send<T: Send>() {}
    // Sessions and tickets move across threads but are single-owner.
    assert_send::<lrm_core::engine::Session>();
    assert_send::<Ticket>();
};
