//! The background compile farm: popularity-ranked precompilation of
//! shapes observed in the admission stream.
//!
//! Strategy compilation is the expensive step of the whole runtime —
//! seconds per cold shape against microseconds per answer — and real
//! traffic repeats shapes. The scheduler records every admitted
//! submission's *standalone* shape here; idle farm workers drain the
//! queue most-popular-first and push each shape through the shared
//! [`Engine`](lrm_core::engine::Engine) cache (exact hits, similarity
//! warm starts, and the cross-restart store all apply), so a hot shape is
//! compiled — or at least warm-started — before a tenant waits on it.
//!
//! The farm is bounded two ways: a configurable **compile budget** (total
//! wall-clock the farm may spend compiling per [`serve`] run) and the
//! queue itself (each distinct shape is compiled at most once per run).
//! Farm compiles touch only the strategy cache — they never answer, never
//! draw noise, and never debit a ledger — so the privacy story is
//! untouched: precompiling a workload is data-independent preprocessing.
//!
//! [`serve`]: crate::server::Server::serve

use crate::spec::{PreparedRows, PreparedSpec};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Magic + version of the persisted popularity-queue format.
const FARM_MAGIC: &[u8; 4] = b"LRMF";
const FARM_VERSION: u32 = 1;

/// Shared farm state for one `serve` run: the popularity-ranked shape
/// queue plus the budget and shutdown accounting.
#[derive(Debug)]
pub(crate) struct FarmState {
    /// Total compile wall-clock the farm may spend this run.
    budget: Duration,
    queue: Mutex<FarmQueue>,
    /// Microseconds of compile time spent so far.
    spent_us: AtomicU64,
    /// Set when the admission stream has ended: the farm drains what it
    /// can afford and exits.
    input_done: AtomicBool,
}

#[derive(Debug, Default)]
struct FarmQueue {
    /// Shapes waiting to be compiled, keyed by shape hash.
    pending: HashMap<u64, PendingShape>,
    /// Shapes already claimed this run (compiled or in flight): observing
    /// them again only matters for popularity, which they no longer need.
    claimed: std::collections::HashSet<u64>,
}

#[derive(Debug)]
struct PendingShape {
    spec: PreparedSpec,
    hits: u64,
    /// Arrival order, the tie-breaker under equal popularity (keeps the
    /// drain order deterministic).
    seq: u64,
}

/// What a farm worker gets when it asks for work.
pub(crate) enum Claim {
    /// A shape to compile (the most popular pending one).
    Shape(PreparedSpec),
    /// Nothing pending right now; poll again unless the input is done.
    Empty,
    /// The compile budget is spent — this worker is finished for the run.
    Exhausted,
}

impl FarmState {
    pub fn new(budget: Duration) -> Self {
        Self {
            budget,
            queue: Mutex::new(FarmQueue::default()),
            spent_us: AtomicU64::new(0),
            input_done: AtomicBool::new(false),
        }
    }

    /// Records one admitted submission's shape. Returns `true` when the
    /// shape is new to this run (first observation).
    pub fn observe(&self, spec: &PreparedSpec) -> bool {
        let key = shape_hash(spec);
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.claimed.contains(&key) {
            return false;
        }
        let seq = (q.pending.len() + q.claimed.len()) as u64;
        match q.pending.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().hits += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PendingShape {
                    spec: spec.clone(),
                    hits: 1,
                    seq,
                });
                true
            }
        }
    }

    /// Claims the most popular pending shape for compilation.
    pub fn claim(&self) -> Claim {
        if Duration::from_micros(self.spent_us.load(Ordering::Relaxed)) >= self.budget {
            return Claim::Exhausted;
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let best = q
            .pending
            .iter()
            .max_by_key(|(_, s)| (s.hits, std::cmp::Reverse(s.seq)))
            .map(|(&k, _)| k);
        match best {
            Some(key) => {
                let shape = q.pending.remove(&key).expect("key just listed");
                q.claimed.insert(key);
                Claim::Shape(shape.spec)
            }
            None => Claim::Empty,
        }
    }

    /// Adds one compile's wall-clock to the budget accounting.
    pub fn record_spent(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        self.spent_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Signals that no further observations are coming (the scheduler has
    /// shut down): workers drain the remaining queue under the budget and
    /// exit.
    pub fn finish_input(&self) {
        self.input_done.store(true, Ordering::Release);
    }

    /// Whether the admission stream has ended.
    pub fn input_done(&self) -> bool {
        self.input_done.load(Ordering::Acquire)
    }

    /// Loads a persisted popularity queue (see [`FarmState::save`]).
    /// Entries compiled against a different schema are skipped, and any
    /// damage stops the parse at the last clean entry — the queue is a
    /// performance hint, not privacy state, so best-effort recovery is
    /// correct (a lost entry re-earns its place from live traffic).
    /// Returns the number of shapes enqueued.
    pub fn load(&self, path: &Path, schema_fp: u64) -> usize {
        let Ok(bytes) = std::fs::read(path) else {
            return 0;
        };
        let mut cur = Cursor {
            buf: &bytes,
            pos: 0,
        };
        let Some(magic) = cur.take(4) else { return 0 };
        if magic != FARM_MAGIC {
            return 0;
        }
        if cur.u32() != Some(FARM_VERSION) {
            return 0;
        }
        let Some(count) = cur.u32() else { return 0 };
        let mut loaded = 0;
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..count {
            let Some((hits, spec)) = decode_entry(&mut cur) else {
                break; // damaged tail: keep what parsed cleanly
            };
            if spec.schema_fingerprint() != schema_fp {
                continue;
            }
            let key = shape_hash(&spec);
            if q.claimed.contains(&key) {
                continue;
            }
            let seq = (q.pending.len() + q.claimed.len()) as u64;
            match q.pending.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().hits += hits;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(PendingShape { spec, hits, seq });
                    loaded += 1;
                }
            }
        }
        loaded
    }

    /// Persists the pending popularity queue (most popular first) so a
    /// restarted server resumes precompiling where this run left off.
    /// Claimed shapes are omitted: they already live in the engine's
    /// strategy store.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<&PendingShape> = q.pending.values().collect();
        entries.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.seq.cmp(&b.seq)));
        let mut out = Vec::new();
        out.extend_from_slice(FARM_MAGIC);
        out.extend_from_slice(&FARM_VERSION.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in entries {
            encode_entry(&mut out, e.hits, &e.spec);
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename: a crash mid-save leaves the previous queue
        // intact instead of a torn file.
        let tmp = path.with_extension("lrmf.tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, path)
    }
}

/// Serializes one queue entry: popularity plus the full spec parts.
fn encode_entry(out: &mut Vec<u8>, hits: u64, spec: &PreparedSpec) {
    out.extend_from_slice(&hits.to_le_bytes());
    out.extend_from_slice(&(spec.domain_size() as u64).to_le_bytes());
    out.extend_from_slice(&spec.schema_fingerprint().to_le_bytes());
    match spec.rows() {
        PreparedRows::Intervals(rows) => {
            out.push(0);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for &(lo, hi) in rows {
                out.extend_from_slice(&(lo as u64).to_le_bytes());
                out.extend_from_slice(&(hi as u64).to_le_bytes());
            }
        }
        PreparedRows::Sparse(rows) => {
            out.push(1);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for &(cell, weight) in row {
                    out.extend_from_slice(&(cell as u64).to_le_bytes());
                    out.extend_from_slice(&weight.to_bits().to_le_bytes());
                }
            }
        }
    }
}

/// Parses one queue entry; `None` on any truncation or unknown tag.
fn decode_entry(cur: &mut Cursor<'_>) -> Option<(u64, PreparedSpec)> {
    let hits = cur.u64()?;
    let domain_size = usize::try_from(cur.u64()?).ok()?;
    let schema_fp = cur.u64()?;
    let tag = cur.u8()?;
    let nrows = cur.u32()? as usize;
    let rows = match tag {
        0 => {
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                let lo = usize::try_from(cur.u64()?).ok()?;
                let hi = usize::try_from(cur.u64()?).ok()?;
                rows.push((lo, hi));
            }
            PreparedRows::Intervals(rows)
        }
        1 => {
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                let len = cur.u32()? as usize;
                let mut row = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    let cell = usize::try_from(cur.u64()?).ok()?;
                    let weight = f64::from_bits(cur.u64()?);
                    row.push((cell, weight));
                }
                rows.push(row);
            }
            PreparedRows::Sparse(rows)
        }
        _ => return None,
    };
    Some((hits, PreparedSpec::from_parts(domain_size, schema_fp, rows)))
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// FNV-1a over a prepared spec's domain and rows: the farm's shape
/// identity, also the key of the server's panic-quarantine set. Two
/// specs with identical rows over the same domain are one shape however
/// they were phrased.
pub(crate) fn shape_hash(spec: &PreparedSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    fold(spec.domain_size() as u64);
    match spec.rows() {
        PreparedRows::Intervals(rows) => {
            fold(0);
            for &(lo, hi) in rows {
                fold(lo as u64);
                fold(hi as u64);
            }
        }
        PreparedRows::Sparse(rows) => {
            fold(1);
            for row in rows {
                fold(row.len() as u64);
                for &(cell, weight) in row {
                    fold(cell as u64);
                    fold(weight.to_bits());
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;
    use lrm_workload::{Attribute, Schema};

    fn prep(spec: QuerySpec) -> PreparedSpec {
        let schema = Schema::single(Attribute::new("v", 0.0, 32.0, 32).unwrap());
        spec.compile(&schema).unwrap()
    }

    #[test]
    fn popularity_orders_the_drain() {
        let farm = FarmState::new(Duration::from_secs(10));
        let rare = prep(QuerySpec::Total);
        let hot = prep(QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![8.0, 16.0],
        });
        assert!(farm.observe(&rare));
        assert!(farm.observe(&hot));
        assert!(!farm.observe(&hot)); // popularity bump, not a new shape
        assert!(!farm.observe(&hot));

        match farm.claim() {
            Claim::Shape(s) => assert_eq!(&s, &hot),
            _ => panic!("expected the hot shape first"),
        }
        match farm.claim() {
            Claim::Shape(s) => assert_eq!(&s, &rare),
            _ => panic!("expected the rare shape second"),
        }
        assert!(matches!(farm.claim(), Claim::Empty));

        // A claimed shape observed again is not re-enqueued.
        assert!(!farm.observe(&hot));
        assert!(matches!(farm.claim(), Claim::Empty));
    }

    #[test]
    fn budget_exhaustion_stops_claims() {
        let farm = FarmState::new(Duration::from_millis(5));
        farm.observe(&prep(QuerySpec::Total));
        farm.record_spent(Duration::from_millis(6));
        assert!(matches!(farm.claim(), Claim::Exhausted));
    }

    #[test]
    fn input_done_flag_round_trips() {
        let farm = FarmState::new(Duration::from_secs(1));
        assert!(!farm.input_done());
        farm.finish_input();
        assert!(farm.input_done());
    }

    #[test]
    fn queue_persists_across_instances() {
        let path = std::env::temp_dir().join(format!(
            "lrm_farm_queue_{}_{:?}.lrmf",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let schema = Schema::single(Attribute::new("v", 0.0, 32.0, 32).unwrap());
        let fp = schema.fingerprint();
        let rare = prep(QuerySpec::Total);
        let hot = prep(QuerySpec::Prefixes {
            attr: 0,
            thresholds: vec![8.0, 16.0],
        });
        let sparse2d = {
            let s2 = Schema::product(vec![
                Attribute::new("x", 0.0, 1.0, 4).unwrap(),
                Attribute::new("y", 0.0, 1.0, 3).unwrap(),
            ])
            .unwrap();
            QuerySpec::Marginal { attr: 1 }.compile(&s2).unwrap()
        };

        let farm = FarmState::new(Duration::from_secs(10));
        farm.observe(&rare);
        farm.observe(&hot);
        farm.observe(&hot);
        farm.observe(&sparse2d); // different schema: dropped on reload
        farm.save(&path).unwrap();

        let resumed = FarmState::new(Duration::from_secs(10));
        assert_eq!(resumed.load(&path, fp), 2);
        // Popularity survived: the hot shape drains first.
        match resumed.claim() {
            Claim::Shape(s) => assert_eq!(&s, &hot),
            _ => panic!("expected the hot shape first"),
        }
        match resumed.claim() {
            Claim::Shape(s) => assert_eq!(&s, &rare),
            _ => panic!("expected the rare shape second"),
        }
        assert!(matches!(resumed.claim(), Claim::Empty));

        // A truncated file keeps whatever parsed cleanly — never panics.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let partial = FarmState::new(Duration::from_secs(10));
        assert!(partial.load(&path, fp) <= 2);

        let _ = std::fs::remove_file(&path);
    }
}
