//! Text expositions of a [`ServerReport`]: Prometheus text format and a
//! single JSON document.
//!
//! Both render the full [`MetricsSnapshot`] — every counter, the
//! per-shard gauges, and the **raw latency histogram buckets** (so a
//! scraper can re-derive any percentile, not just the three the
//! snapshot pre-computes) — plus the engine cache counters and the
//! per-tenant budget telemetry ([`TenantTelemetry`]): ε/δ spent and
//! remaining, the trailing-window burn rate, and the estimated
//! time-to-exhaustion.
//!
//! Everything exposed here is data-independent (counts, timings,
//! budget positions); the same rule the trace payloads obey.

use crate::metrics::MetricsSnapshot;
use crate::server::ServerReport;
use crate::tenants::TenantTelemetry;
use lrm_obs::json::{push_f64, push_str};
use std::fmt::Write as _;

/// Renders the report in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`): `# HELP`/`# TYPE` headers, counters
/// and gauges under the `lrm_` prefix, the latency histogram as
/// cumulative `le`-labeled buckets, and one labeled gauge family per
/// tenant-telemetry column.
pub fn prometheus(report: &ServerReport) -> String {
    let mut out = String::with_capacity(4096);
    let m = &report.metrics;
    for (name, help, value) in counter_rows(m) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(
        out,
        "# HELP lrm_batch_mean_occupancy Mean requests per batch."
    );
    let _ = writeln!(out, "# TYPE lrm_batch_mean_occupancy gauge");
    let _ = writeln!(
        out,
        "lrm_batch_mean_occupancy {}",
        fmt_f64(m.mean_occupancy)
    );
    let _ = writeln!(
        out,
        "# HELP lrm_shard_queue_depth Submitted-but-unanswered requests per scheduler shard."
    );
    let _ = writeln!(out, "# TYPE lrm_shard_queue_depth gauge");
    for (shard, depth) in m.shard_depths.iter().enumerate() {
        let _ = writeln!(out, "lrm_shard_queue_depth{{shard=\"{shard}\"}} {depth}");
    }
    let _ = writeln!(
        out,
        "# HELP lrm_shard_peak_queue_depth Peak queue depth each shard ever held."
    );
    let _ = writeln!(out, "# TYPE lrm_shard_peak_queue_depth gauge");
    for (shard, depth) in m.shard_peak_depths.iter().enumerate() {
        let _ = writeln!(
            out,
            "lrm_shard_peak_queue_depth{{shard=\"{shard}\"}} {depth}"
        );
    }
    push_prometheus_histogram(&mut out, m);
    push_prometheus_tenants(&mut out, &report.telemetry);
    out
}

/// The counter families of a [`MetricsSnapshot`], in declaration order.
fn counter_rows(m: &MetricsSnapshot) -> Vec<(&'static str, &'static str, u64)> {
    vec![
        (
            "lrm_requests_submitted_total",
            "Requests that entered the queue.",
            m.submitted,
        ),
        (
            "lrm_requests_answered_total",
            "Requests answered with a release.",
            m.answered,
        ),
        (
            "lrm_requests_rejected_admission_total",
            "Requests refused at admission (unknown tenant / budget).",
            m.rejected_admission,
        ),
        (
            "lrm_requests_rejected_settlement_total",
            "Requests refused at settlement (budget spent concurrently).",
            m.rejected_settlement,
        ),
        (
            "lrm_requests_failed_total",
            "Requests failed by a compile/answer error.",
            m.failed,
        ),
        (
            "lrm_requests_shed_total",
            "Requests shed at the queue-depth cap.",
            m.shed,
        ),
        (
            "lrm_batches_total",
            "Batches flushed to the worker pool.",
            m.batches,
        ),
        (
            "lrm_batches_coalesced_total",
            "Batches with two or more members.",
            m.coalesced_batches,
        ),
        (
            "lrm_batches_single_total",
            "Single-request batches.",
            m.single_batches,
        ),
        (
            "lrm_batch_rows_total",
            "Workload rows answered across all batches.",
            m.batch_rows,
        ),
        (
            "lrm_batch_max_occupancy",
            "Largest batch observed.",
            m.max_occupancy,
        ),
        (
            "lrm_peak_queue_depth",
            "Peak queue depth across all shards.",
            m.peak_queue_depth,
        ),
        (
            "lrm_batches_closed_rank_total",
            "Batches closed by the rank-growth rule.",
            m.rank_closed_batches,
        ),
        (
            "lrm_batches_closed_window_total",
            "Batches closed by the coalescing window.",
            m.window_closed_batches,
        ),
        (
            "lrm_batches_closed_ceiling_total",
            "Batches closed at the max_batch ceiling.",
            m.ceiling_closed_batches,
        ),
        (
            "lrm_batches_closed_drain_total",
            "Batches flushed by the shutdown drain.",
            m.drain_closed_batches,
        ),
        (
            "lrm_batches_laplace_total",
            "Batches answered with Laplace noise.",
            m.laplace_batches,
        ),
        (
            "lrm_batches_gaussian_total",
            "Batches answered with Gaussian noise.",
            m.gaussian_batches,
        ),
        (
            "lrm_batches_cross_eps_total",
            "Gaussian batches spanning distinct per-release eps.",
            m.cross_eps_batches,
        ),
        (
            "lrm_batches_stolen_total",
            "Batches claimed from another shard's flush queue.",
            m.stolen_batches,
        ),
        (
            "lrm_farm_shapes_total",
            "Distinct shapes the compile farm observed.",
            m.farm_shapes,
        ),
        (
            "lrm_farm_precompiled_total",
            "Shapes the farm pushed through the engine cache.",
            m.farm_precompiled,
        ),
        (
            "lrm_farm_compile_seconds_total",
            "Wall-clock seconds the farm spent compiling.",
            m.farm_compile_time.as_secs(),
        ),
        (
            "lrm_worker_respawns_total",
            "Worker panics contained and recovered.",
            m.worker_respawns,
        ),
        (
            "lrm_quarantined_shapes_total",
            "Workload shapes quarantined after crashing a worker.",
            m.quarantined_shapes,
        ),
        (
            "lrm_degraded_releases_total",
            "Releases answered by the degraded-mode fallback.",
            m.degraded_releases,
        ),
        (
            "lrm_ledger_replays_total",
            "Tenant journals replayed at registration.",
            m.ledger_replays,
        ),
    ]
}

/// The submit→response latency histogram as cumulative Prometheus
/// buckets. The snapshot's raw pairs are `(floor_us, count)` per
/// occupied log-scale bucket; the `le` upper bound of each cumulative
/// line is the *next* occupied bucket's floor (every sample in between
/// is below it, the buckets between are empty), and the final bucket is
/// `+Inf` as the format requires.
fn push_prometheus_histogram(out: &mut String, m: &MetricsSnapshot) {
    const NAME: &str = "lrm_request_latency_seconds";
    let _ = writeln!(out, "# HELP {NAME} Submit-to-response latency.");
    let _ = writeln!(out, "# TYPE {NAME} histogram");
    let buckets: Vec<(u64, u64)> = m.histogram_buckets().collect();
    let mut cumulative = 0u64;
    for (i, &(_, count)) in buckets.iter().enumerate() {
        cumulative += count;
        match buckets.get(i + 1) {
            Some(&(next_floor, _)) => {
                let le = next_floor as f64 / 1e6;
                let _ = writeln!(out, "{NAME}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{NAME}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    if buckets.is_empty() {
        let _ = writeln!(out, "{NAME}_bucket{{le=\"+Inf\"}} 0");
    }
    let _ = writeln!(out, "{NAME}_sum {}", fmt_f64(m.latency_sum.as_secs_f64()));
    let _ = writeln!(out, "{NAME}_count {}", m.latency_samples());
}

/// Extracts one gauge column from a tenant's telemetry (`None` = skip).
type TenantGauge = fn(&TenantTelemetry) -> Option<f64>;

/// One labeled gauge family per tenant-telemetry column. Exhaustion
/// gauges are only written for tenants that are actually burning (a
/// missing sample is Prometheus's idiom for "not applicable").
fn push_prometheus_tenants(out: &mut String, telemetry: &[TenantTelemetry]) {
    let families: [(&str, &str, TenantGauge); 8] = [
        ("lrm_tenant_eps_spent", "Cumulative eps granted.", |t| {
            Some(t.eps_spent)
        }),
        ("lrm_tenant_eps_remaining", "Eps still grantable.", |t| {
            Some(t.eps_remaining)
        }),
        ("lrm_tenant_delta_spent", "Cumulative delta granted.", |t| {
            Some(t.delta_spent)
        }),
        (
            "lrm_tenant_delta_remaining",
            "Delta still grantable.",
            |t| Some(t.delta_remaining),
        ),
        (
            "lrm_tenant_eps_burn_per_sec",
            "Eps granted per second over the trailing window.",
            |t| Some(t.eps_burn_per_sec),
        ),
        (
            "lrm_tenant_delta_burn_per_sec",
            "Delta granted per second over the trailing window.",
            |t| Some(t.delta_burn_per_sec),
        ),
        (
            "lrm_tenant_eps_exhaustion_seconds",
            "Estimated seconds until eps runs out at the current burn rate.",
            |t| t.eps_exhaustion.map(|d| d.as_secs_f64()),
        ),
        (
            "lrm_tenant_delta_exhaustion_seconds",
            "Estimated seconds until delta runs out at the current burn rate.",
            |t| t.delta_exhaustion.map(|d| d.as_secs_f64()),
        ),
    ];
    for (name, help, value) in families {
        let rows: Vec<(&TenantTelemetry, f64)> = telemetry
            .iter()
            .filter_map(|t| value(t).map(|v| (t, v)))
            .collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (t, v) in rows {
            let _ = writeln!(
                out,
                "{name}{{tenant=\"{}\"}} {}",
                label_escape(&t.tenant),
                fmt_f64(v)
            );
        }
    }
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A float in Prometheus exposition form (`NaN`/`+Inf`/`-Inf` spelled
/// the way the format wants them).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders the report as one JSON document:
/// `{"metrics":{…,"latency":{…,"buckets":[[floor_us,count],…]}},
/// "cache":{…},"tenants":[{…}]}`. Durations are microseconds
/// (`*_us`) or seconds (`*_seconds`) as named; non-finite floats
/// serialize as `null` (reusing `lrm_obs`'s JSON writer).
pub fn json(report: &ServerReport) -> String {
    let mut out = String::with_capacity(4096);
    let m = &report.metrics;
    out.push_str("{\"metrics\":{");
    for (i, (name, _, value)) in counter_rows(m).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Drop the exposition prefix/suffix: `lrm_batches_total` is the
        // JSON key `batches`.
        let key = name.trim_start_matches("lrm_").trim_end_matches("_total");
        push_str(&mut out, key);
        let _ = write!(out, ":{value}");
    }
    out.push_str(",\"batch_mean_occupancy\":");
    push_f64(&mut out, m.mean_occupancy);
    out.push_str(",\"shard_queue_depths\":");
    push_u64_array(&mut out, &m.shard_depths);
    out.push_str(",\"shard_peak_queue_depths\":");
    push_u64_array(&mut out, &m.shard_peak_depths);
    let _ = write!(
        out,
        ",\"latency\":{{\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"sum_us\":{},\"count\":{},\"buckets\":[",
        m.p50_latency.as_micros(),
        m.p99_latency.as_micros(),
        m.p999_latency.as_micros(),
        m.latency_sum.as_micros(),
        m.latency_samples(),
    );
    for (i, (floor, count)) in m.histogram_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{floor},{count}]");
    }
    out.push_str("]}}");
    let c = &report.cache;
    let _ = write!(
        out,
        ",\"cache\":{{\"memory_hits\":{},\"disk_hits\":{},\"misses\":{},\"warm_hits\":{},\"store_loads\":{},\"evictions\":{},\"entries\":{}}}",
        c.memory_hits, c.disk_hits, c.misses, c.warm_hits, c.store_loads, c.evictions, c.entries,
    );
    out.push_str(",\"tenants\":[");
    for (i, t) in report.telemetry.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"tenant\":");
        push_str(&mut out, &t.tenant);
        for (key, v) in [
            ("eps_spent", t.eps_spent),
            ("eps_remaining", t.eps_remaining),
            ("delta_spent", t.delta_spent),
            ("delta_remaining", t.delta_remaining),
            ("eps_burn_per_sec", t.eps_burn_per_sec),
            ("delta_burn_per_sec", t.delta_burn_per_sec),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_f64(&mut out, v);
        }
        let _ = write!(out, ",\"burn_window_seconds\":");
        push_f64(&mut out, t.window.as_secs_f64());
        for (key, v) in [
            ("eps_exhaustion_seconds", t.eps_exhaustion),
            ("delta_exhaustion_seconds", t.delta_exhaustion),
        ] {
            let _ = write!(out, ",\"{key}\":");
            match v {
                Some(d) => push_f64(&mut out, d.as_secs_f64()),
                None => out.push_str("null"),
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerError};
    use crate::spec::QuerySpec;
    use lrm_dp::Epsilon;
    use lrm_workload::{Attribute, Schema};

    fn sample_report() -> ServerReport {
        let schema = Schema::single(Attribute::new("v", 0.0, 8.0, 8).unwrap());
        let server = Server::builder(schema, vec![1.0; 8])
            .seed(7)
            .workers(1)
            .build()
            .unwrap();
        server.register_tenant("acme \"lab\"", Epsilon::new(2.0).unwrap());
        let (outcome, report) = server.serve(|client| {
            let spec = QuerySpec::Ranges {
                attr: 0,
                ranges: vec![(0.0, 4.0), (4.0, 8.0)],
            };
            client
                .submit("acme \"lab\"", &spec, Epsilon::new(0.5).unwrap())
                .and_then(crate::server::Ticket::wait)
        });
        outcome.unwrap();
        report
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let report = sample_report();
        let text = prometheus(&report);
        assert!(text.contains("lrm_requests_submitted_total 1\n"));
        assert!(text.contains("lrm_requests_answered_total 1\n"));
        assert!(text.contains("# TYPE lrm_request_latency_seconds histogram"));
        assert!(text.contains("lrm_request_latency_seconds_count 1\n"));
        // One sample: the single occupied bucket is the +Inf line, and
        // the cumulative count equals the sample count.
        assert!(text.contains("lrm_request_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        // The tenant label is escaped, and spend shows the 0.5 debit.
        assert!(text.contains("lrm_tenant_eps_spent{tenant=\"acme \\\"lab\\\"\"} 0.5\n"));
        assert!(text.contains("lrm_tenant_eps_remaining{tenant=\"acme \\\"lab\\\"\"} 1.5\n"));
        // Every non-comment line is `name{labels} value` with a finite
        // or Inf/NaN value — the scrape contract.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable sample value in {line:?}"
            );
        }
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_bounded() {
        let report = sample_report();
        let text = prometheus(&report);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text
            .lines()
            .filter(|l| l.starts_with("lrm_request_latency_seconds_bucket"))
        {
            let count: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(count >= last, "cumulative counts must be monotone: {line}");
            last = count;
            bucket_lines += 1;
        }
        assert!(bucket_lines >= 1);
        assert_eq!(last, report.metrics.latency_samples());
    }

    #[test]
    fn json_exposition_matches_the_snapshot() {
        let report = sample_report();
        let doc = json(&report);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"requests_submitted\":1"));
        assert!(doc.contains("\"requests_answered\":1"));
        assert!(doc.contains(&format!("\"count\":{}", report.metrics.latency_samples())));
        assert!(doc.contains(&format!(
            "\"sum_us\":{}",
            report.metrics.latency_sum.as_micros()
        )));
        assert!(doc.contains("\"tenant\":\"acme \\\"lab\\\"\""));
        assert!(doc.contains("\"eps_spent\":0.5"));
        // Raw buckets survive the round trip.
        let (floor, count) = report.metrics.histogram_buckets().next().unwrap();
        assert!(doc.contains(&format!("\"buckets\":[[{floor},{count}]")));
        // Structurally balanced (the writer emits no stray braces; all
        // strings are escaped by the shared JSON helpers).
        let depth = doc.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn report_error_type_is_exported() {
        // Compile-time check that exposition composes with the public
        // API surface (the doc examples call these directly).
        fn _takes(_: &ServerReport) -> Result<(), ServerError> {
            Ok(())
        }
    }
}
