//! Completion-driven ticket delivery.
//!
//! The original front end gave every submission its own mpsc channel and a
//! blocking [`Ticket`](crate::Ticket): one client thread per in-flight
//! request. That shape caps concurrency at the OS thread budget long before
//! the scheduler or the workers saturate. This module adds the evented
//! alternative: a [`TicketSet`] is a shared completion queue that any number
//! of submissions can be routed into, so **one** client thread can drive
//! tens of thousands of in-flight requests — submit until the window is
//! full, then harvest completions with [`TicketSet::poll`] /
//! [`TicketSet::wait_any`] and top the window back up. Per-ticket callbacks
//! ([`Client::submit_budget_with`](crate::Client::submit_budget_with)) cover
//! the remaining shapes: the closure runs on the worker thread that
//! completed the batch, right where the release is produced.
//!
//! All three delivery styles funnel through one internal type,
//! `Responder`: the worker calls `Responder::send` exactly once per
//! submission. A responder that is dropped unfired — a scheduler or worker
//! tearing down with the submission still queued — delivers
//! `Err(ServerError::Shutdown)` from its `Drop` impl, so no ticket, set
//! entry, or callback is ever silently lost: the drop guard is what lets
//! `TicketSet::wait_any` promise it never hangs on a crashed runtime.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::server::{Release, ServerError};

/// The outcome delivered for one submission.
pub type Completion = Result<Release, ServerError>;

/// How a finished submission finds its way back to the caller. Exactly one
/// `send` happens per submission; the `Drop` guard converts an unfired
/// responder into `Err(Shutdown)` so teardown can never strand a waiter.
pub(crate) struct Responder {
    kind: Option<ResponderKind>,
}

enum ResponderKind {
    /// Legacy blocking path: the per-submission channel behind a
    /// [`crate::Ticket`].
    Channel(Sender<Completion>),
    /// Evented path: push `(token, outcome)` onto the owning
    /// [`TicketSet`]'s completion queue.
    Set { shared: Arc<SetShared>, token: u64 },
    /// Callback path: run the closure on the completing worker thread.
    Callback(Box<dyn FnOnce(Completion) + Send + 'static>),
}

impl Responder {
    pub fn channel(tx: Sender<Completion>) -> Self {
        Responder {
            kind: Some(ResponderKind::Channel(tx)),
        }
    }

    pub fn callback(f: impl FnOnce(Completion) + Send + 'static) -> Self {
        Responder {
            kind: Some(ResponderKind::Callback(Box::new(f))),
        }
    }

    /// Deliver the outcome. Consumes the responder; the drop guard is
    /// disarmed by taking `kind` out first.
    pub fn send(mut self, outcome: Completion) {
        if let Some(kind) = self.kind.take() {
            kind.deliver(outcome);
        }
    }

    /// Disarm without delivering anything. Used on the synchronous-error
    /// path in `Client::dispatch`: the caller gets the error as a return
    /// value, so routing a second copy through the completion path would
    /// double-report. For a set responder this also releases the in-flight
    /// slot that registration took.
    pub fn defuse(mut self) {
        if let Some(ResponderKind::Set { shared, token: _ }) = self.kind.take() {
            let mut state = shared.lock();
            state.outstanding -= 1;
            shared.cv.notify_all();
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some(kind) = self.kind.take() {
            kind.deliver(Err(ServerError::Shutdown));
        }
    }
}

impl ResponderKind {
    fn deliver(self, outcome: Completion) {
        match self {
            ResponderKind::Channel(tx) => {
                // The waiter may have dropped its Ticket; nothing to do.
                let _ = tx.send(outcome);
            }
            ResponderKind::Set { shared, token } => {
                let mut state = shared.lock();
                state.ready.push_back((token, outcome));
                state.outstanding -= 1;
                drop(state);
                shared.cv.notify_one();
            }
            ResponderKind::Callback(f) => f(outcome),
        }
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            Some(ResponderKind::Channel(_)) => "Channel",
            Some(ResponderKind::Set { .. }) => "Set",
            Some(ResponderKind::Callback(_)) => "Callback",
            None => "Fired",
        };
        f.debug_struct("Responder").field("kind", &kind).finish()
    }
}

struct SetShared {
    state: Mutex<SetState>,
    cv: Condvar,
}

struct SetState {
    /// Completions delivered but not yet harvested by `poll`/`wait_any`.
    ready: VecDeque<(u64, Completion)>,
    /// Submissions registered but not yet delivered.
    outstanding: usize,
}

impl SetShared {
    fn lock(&self) -> MutexGuard<'_, SetState> {
        // A poisoned completion queue only means some panicking thread held
        // the lock mid-push; the queue itself (counter + VecDeque) is
        // always structurally valid, so keep serving waiters.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A completion queue for driving many in-flight submissions from few
/// threads.
///
/// Submit with [`Client::submit_budget_into`](crate::Client::submit_budget_into),
/// which returns a `u64` token; harvest with [`poll`](TicketSet::poll)
/// (non-blocking) or [`wait_any`](TicketSet::wait_any) (blocks until a
/// completion is ready, returns `None` once the set is fully drained).
/// Tokens are handed out in submission order starting from 0, so a driver
/// can index per-request bookkeeping by token.
///
/// The set is `Send + Sync`: several driver threads may share one set and
/// harvest concurrently — each completion is delivered to exactly one
/// caller. [`in_flight`](TicketSet::in_flight) counts submissions not yet
/// harvested (queued in the server *or* sitting ready), which is the
/// windowing quantity a driver compares against its target depth.
pub struct TicketSet {
    shared: Arc<SetShared>,
    next_token: AtomicU64,
}

impl Default for TicketSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketSet {
    /// An empty completion queue, ready to receive submissions via
    /// [`Client::submit_budget_into`](crate::Client::submit_budget_into).
    pub fn new() -> Self {
        TicketSet {
            shared: Arc::new(SetShared {
                state: Mutex::new(SetState {
                    ready: VecDeque::new(),
                    outstanding: 0,
                }),
                cv: Condvar::new(),
            }),
            next_token: AtomicU64::new(0),
        }
    }

    /// Reserve a token and build the responder that will complete it.
    /// Called by `Client` on the submit path.
    pub(crate) fn register(&self) -> (u64, Responder) {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.shared.lock().outstanding += 1;
        let responder = Responder {
            kind: Some(ResponderKind::Set {
                shared: Arc::clone(&self.shared),
                token,
            }),
        };
        (token, responder)
    }

    /// Non-blocking harvest: the oldest unclaimed completion, or `None` if
    /// nothing is ready right now (there may still be submissions in
    /// flight — check [`in_flight`](TicketSet::in_flight)).
    pub fn poll(&self) -> Option<(u64, Completion)> {
        self.shared.lock().ready.pop_front()
    }

    /// Blocking harvest: waits until a completion is ready and returns it.
    /// Returns `None` only when the set is drained — nothing ready and
    /// nothing in flight — so a driver loop is simply
    /// `while let Some((token, outcome)) = set.wait_any() { … }`.
    pub fn wait_any(&self) -> Option<(u64, Completion)> {
        let mut state = self.shared.lock();
        loop {
            if let Some(done) = state.ready.pop_front() {
                return Some(done);
            }
            if state.outstanding == 0 {
                return None;
            }
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Submissions not yet harvested: still queued or compiling in the
    /// server, plus completions sitting ready. This is the depth an
    /// evented driver windows on.
    pub fn in_flight(&self) -> usize {
        let state = self.shared.lock();
        state.outstanding + state.ready.len()
    }

    /// True when every registered submission has been harvested.
    pub fn is_drained(&self) -> bool {
        self.in_flight() == 0
    }
}

impl std::fmt::Debug for TicketSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("TicketSet")
            .field("ready", &state.ready.len())
            .field("outstanding", &state.outstanding)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn set_delivers_in_completion_order_and_drains() {
        let set = TicketSet::new();
        let (t0, r0) = set.register();
        let (t1, r1) = set.register();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(set.in_flight(), 2);
        assert!(set.poll().is_none(), "nothing completed yet");

        // Complete out of submission order: delivery order wins.
        r1.send(Err(ServerError::Shutdown));
        r0.send(Err(ServerError::Shutdown));

        let (first, _) = set.wait_any().expect("one ready");
        let (second, _) = set.wait_any().expect("two ready");
        assert_eq!((first, second), (1, 0));
        assert!(set.wait_any().is_none(), "drained set returns None");
        assert!(set.is_drained());
    }

    #[test]
    fn dropped_responder_surfaces_shutdown() {
        let set = TicketSet::new();
        let (token, responder) = set.register();
        drop(responder);
        match set.wait_any() {
            Some((t, Err(ServerError::Shutdown))) => assert_eq!(t, token),
            other => panic!("expected shutdown completion, got {other:?}"),
        }
    }

    #[test]
    fn defused_responder_releases_the_slot_silently() {
        let set = TicketSet::new();
        let (_token, responder) = set.register();
        responder.defuse();
        assert!(set.is_drained());
        assert!(set.wait_any().is_none(), "no phantom completion");
    }

    #[test]
    fn wait_any_blocks_until_a_cross_thread_completion() {
        let set = Arc::new(TicketSet::new());
        let (_token, responder) = set.register();
        let waiter = {
            let set = Arc::clone(&set);
            std::thread::spawn(move || set.wait_any())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        responder.send(Err(ServerError::Shutdown));
        let got = waiter.join().expect("waiter thread");
        assert!(matches!(got, Some((0, Err(ServerError::Shutdown)))));
    }

    #[test]
    fn callback_runs_on_send_and_drop_guard_fires_channels() {
        let (tx, rx) = mpsc::channel();
        let responder = Responder::callback(move |outcome| {
            tx.send(outcome).unwrap();
        });
        responder.send(Err(ServerError::Shutdown));
        assert!(matches!(rx.recv(), Ok(Err(ServerError::Shutdown))));

        let (tx, rx) = mpsc::channel();
        drop(Responder::channel(tx));
        assert!(matches!(rx.recv(), Ok(Err(ServerError::Shutdown))));
    }
}
