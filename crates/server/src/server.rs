//! The serving runtime: scheduler, worker pool, sessions-at-scale.
//!
//! Request lifecycle (one batch, end to end):
//!
//! 1. **spec** — a client hands [`Client::submit`] a [`QuerySpec`]; it is
//!    validated and translated against the server's [`Schema`] into
//!    structured rows (never densified) on the client's thread.
//! 2. **route** — the submission is routed to a scheduler shard by its
//!    schema fingerprint × noise class (δ-class for Gaussian, ε for
//!    pure) — a strict coarsening of the batch key, so everything that
//!    could coalesce meets on one shard and a batch never spans shards
//!    (see [`ServerBuilder::shards`]; the default single shard is the
//!    original scheduler). Admission is bounded per shard: past the
//!    depth cap the request is shed synchronously with
//!    [`ServerError::Overloaded`], whose `retry_after` is computed from
//!    the admitting shard's own backlog.
//! 3. **admit** — the owning shard admission-checks the tenant's ledger
//!    (typed [`ServerError::Admission`] on unknown tenant or an
//!    already-insufficient budget; advisory, see step 7).
//! 4. **coalesce** — compatible submissions (same schema and structural
//!    class — see [`coalesce`](crate::coalesce)) arriving within the
//!    bounded window are collected into one open batch. On a pure-DP
//!    server the per-release ε is part of the batch key; on a Gaussian
//!    server only the δ-class is — members at *different* ε coalesce
//!    (see step 5). The batch closes when its estimated combined rank
//!    stops growing (see [`ServerBuilder::rank_close`]), when the window
//!    elapses, or at the `max_batch` ceiling. A lone spec falls through
//!    as a single-request batch. The scheduler also feeds every admitted
//!    shape to the background compile farm (see
//!    [`ServerBuilder::precompile_workers`]), which precompiles popular
//!    shapes through the engine cache while workers are otherwise idle.
//! 5. **compile / cache** — a worker claims the closed batch from its
//!    shard's flush queue (stealing from other shards when its own is
//!    empty), concatenates it into one combined structured workload and
//!    compiles it through the shared [`Engine`]: repeated workloads are
//!    O(1) cache hits, and the whole batch shares a single strategy.
//! 6. **noise** — pure mode: one [`Mechanism::answer`] call for the whole
//!    batch, one Laplace draw per strategy column, not per member.
//!    Gaussian mode: one *base* draw calibrated at the weakest
//!    (largest-ε) member budget, replayed identically for every member
//!    from the batch's lane-0 stream, plus an independent per-member
//!    residual top-up (lane `k + 1`) of variance `σ_member² − σ_base²` —
//!    Gaussian noise is closed under addition, so each member's slice
//!    carries exactly its own (ε, δ) calibration while the whole batch
//!    shares a single strategy and data pass.
//! 7. **slice + settle** — each member's answer is the contiguous slice
//!    of (its copy of) the batch answer its rows occupy. The settlement
//!    is two-phase: an *intent* durably reserves the member's own
//!    (ε, δ) budget **before** any noise is drawn, and the debit settles
//!    immediately before the slice is released. If concurrent traffic
//!    exhausted the tenant between admission and the intent, the slice
//!    is withheld and the request fails with the same typed budget error
//!    — never an over-spend. A crash between intent and settle replays
//!    the intent as spent (wasted budget at worst, never unaccounted
//!    noise).
//!
//! Completion delivery is pluggable: the classic blocking [`Ticket`]
//! (one channel per request), the evented
//! [`TicketSet`] completion queue
//! ([`Client::submit_budget_into`]) that lets one client thread drive
//! tens of thousands of in-flight requests, and per-request callbacks
//! ([`Client::submit_budget_with`]) that run on the completing worker.
//!
//! The runtime is plain `std::thread::scope` + `mpsc` channels (like the
//! SpMM kernels in `lrm-linalg`): no async runtime, no unbounded queues
//! that outlive [`Server::serve`].
//!
//! # Failure containment
//!
//! * **Durable (ε, δ)-ledgers** — with [`ServerBuilder::state_dir`]
//!   configured, every tenant ledger is a fsync'd write-ahead journal
//!   carrying both budget columns; registration resumes the recorded
//!   spend across restarts, and the noise-epoch file keeps batch indices
//!   (the noise-stream labels) disjoint across restarts even under a
//!   pinned seed.
//! * **Worker supervision** — a panic while answering a batch is caught;
//!   the not-yet-responded members fail with
//!   [`ServerError::Quarantined`], their workload shapes enter a
//!   quarantine set refused at admission from then on, and the worker
//!   keeps its pool slot (a logical respawn) until its panic budget is
//!   spent — and even then the last live worker never retires, so the
//!   pool never goes empty.
//! * **Compile deadlines** — with [`ServerBuilder::compile_deadline`]
//!   set, a compile that overruns is abandoned cooperatively and the
//!   batch is answered by the guaranteed-fast noise-on-data baseline in
//!   the server's own noise flavor — Laplace at the same ε on a pure
//!   server, Gaussian at the same (ε, δ) on an approximate one
//!   ([`Release::degraded`] is set); the shape goes to the compile farm
//!   for a background recompile.
//! * **Bounded admission** — with [`ServerBuilder::max_queue_depth`]
//!   set, submissions beyond the per-shard cap are shed synchronously
//!   with [`ServerError::Overloaded`] instead of growing the queue
//!   without bound; `retry_after` scales with the admitting shard's
//!   backlog.

use crate::coalesce::{combine, BatchKey, RankTracker};
use crate::farm::{shape_hash, Claim, FarmState};
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::spec::{PreparedSpec, QuerySpec, SpecError};
use crate::tenants::{
    AdmissionError, BurnTracker, TenantLedgers, TenantResume, TenantSpend, TenantTelemetry,
};
use crate::tickets::{Completion, Responder, TicketSet};
use lrm_core::engine::{
    CacheStats, CompileOptions, CompiledMechanism, Engine, MechanismKind, NoiseFlavor,
};
use lrm_core::error::CoreError;
use lrm_core::mechanism::Mechanism;
use lrm_dp::rng::{derive_rng, substream};
use lrm_dp::{Budget, Epsilon};
use lrm_workload::{Schema, Workload, WorkloadError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Builder for [`Server`].
#[derive(Debug)]
pub struct ServerBuilder {
    schema: Schema,
    data: Vec<f64>,
    engine: Engine,
    mechanism: MechanismKind,
    options: CompileOptions,
    coalesce_window: Duration,
    max_batch: usize,
    rank_close: bool,
    workers: usize,
    shards: usize,
    precompile_workers: usize,
    compile_budget: Duration,
    seed: u64,
    state_dir: Option<PathBuf>,
    compile_deadline: Option<Duration>,
    max_queue_depth: Option<usize>,
    worker_panic_budget: u64,
    coalesce_across_eps: bool,
    burn_window: Duration,
}

impl ServerBuilder {
    /// Starts a builder over the private database `data`, bucketized by
    /// `schema` (row-major flattened; `data.len()` must equal
    /// `schema.domain_size()`).
    ///
    /// The noise seed defaults to fresh OS entropy (see
    /// [`ServerBuilder::seed`]): out of the box every server instance
    /// draws an unpredictable, never-repeating family of noise streams.
    pub fn new(schema: Schema, data: Vec<f64>) -> Self {
        Self {
            schema,
            data,
            engine: Engine::default(),
            mechanism: MechanismKind::Lrm,
            options: CompileOptions::default(),
            coalesce_window: Duration::from_millis(10),
            max_batch: 8,
            rank_close: true,
            workers: 2,
            shards: 1,
            precompile_workers: 0,
            compile_budget: Duration::from_secs(2),
            seed: entropy_seed(),
            state_dir: None,
            compile_deadline: None,
            max_queue_depth: None,
            worker_panic_budget: 8,
            coalesce_across_eps: true,
            burn_window: Duration::from_secs(10),
        }
    }

    /// Uses a pre-configured engine (reference ε, compile defaults, disk
    /// spill). The engine's strategy cache is shared by every batch.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The mechanism every batch compiles to (default
    /// [`MechanismKind::Lrm`]).
    pub fn mechanism(mut self, kind: MechanismKind) -> Self {
        self.mechanism = kind;
        self
    }

    /// Compile options for the batch strategies.
    pub fn compile_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// How long an open batch waits for compatible companions before it
    /// is flushed (default 10 ms). Zero disables coalescing: every
    /// submission flushes immediately as a single-request batch.
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Largest number of requests one batch may coalesce (default 8); a
    /// full batch flushes without waiting out the window. `1` disables
    /// coalescing.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Whether the scheduler closes a batch as soon as its estimated
    /// combined rank stops growing (default `true`).
    ///
    /// An open batch tracks an upper bound on the rank of its combined
    /// workload — distinct interval boundary points, or distinct CSR
    /// rows. A member that adds nothing to that bound cannot change the
    /// strategy the batch compiles to: the batch's shared structure is
    /// saturated, and holding it open only adds window latency and makes
    /// the combined fingerprint less likely to repeat (fewer exact cache
    /// hits). Closing at saturation replaces `max_batch` as the primary
    /// close trigger — the cap stays as a hard ceiling — and fixes the
    /// measured BENCH_5 throughput inversion past `max_batch` 16 at
    /// n = 256.
    pub fn rank_close(mut self, enabled: bool) -> Self {
        self.rank_close = enabled;
        self
    }

    /// Worker threads answering batches (default 2).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Scheduler shards (default 1: the original single coalescing
    /// scheduler). Each shard owns its submission channel, open-batch
    /// map, window timers, and flush queue; submissions are routed by
    /// schema fingerprint × noise class, a strict coarsening of the
    /// batch key — so sharding never splits a coalescible group, it only
    /// partitions *independent* groups onto independent timer loops.
    /// Workers steal across shard flush queues, so a hot shard still
    /// gets the whole pool. Raise this (2–8) when one scheduler thread's
    /// HashMap and timer churn is the ingest bottleneck at 10⁴+
    /// in-flight submissions; with a single noise class all traffic
    /// shares one shard and extra shards idle.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Background compile-farm threads (default 0: farm off). Farm
    /// workers drain a popularity-ranked queue of the standalone shapes
    /// observed in the admission stream and precompile each through the
    /// shared engine cache — exact hits, similarity warm starts, and the
    /// cross-restart strategy store all apply — so hot shapes are warm
    /// before a tenant waits on them. Farm compiles never answer, never
    /// draw noise, and never debit a ledger.
    pub fn precompile_workers(mut self, workers: usize) -> Self {
        self.precompile_workers = workers;
        self
    }

    /// Total compile wall-clock the farm may spend per [`Server::serve`]
    /// run (default 2 s). A soft cap: the compile in flight when the
    /// budget runs out finishes, nothing new starts.
    pub fn compile_budget(mut self, budget: Duration) -> Self {
        self.compile_budget = budget;
        self
    }

    /// Master seed for the per-batch noise streams (batch `i` draws from
    /// `derive_rng(seed, i)`).
    ///
    /// **For reproducible experiments and tests only.** The seed is the
    /// whole secret behind the noise: anyone who knows it (and a
    /// release's [`batch_index`](Release::batch_index)) can regenerate
    /// every Laplace draw and subtract it, voiding the ε-DP guarantee.
    /// Production servers must keep the default (fresh OS entropy per
    /// builder) or supply their own secret, uniformly random value —
    /// never a constant baked into code or config shared with clients.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Directory for the server's durable state: per-tenant ε-budget
    /// journals (`ledgers/`), the noise-epoch file, and the compile
    /// farm's persisted popularity queue. Restarting a server over the
    /// same directory resumes tenant spend (conservatively — unsettled
    /// intents replay as spent), keeps noise-stream labels disjoint, and
    /// resumes the precompile queue. Without it, everything above lives
    /// for the process only (the previous behavior).
    pub fn state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Cooperative per-batch compile deadline (default: none). A compile
    /// that overruns is abandoned at the next solver-iteration check and
    /// the batch is answered by the Laplace baseline at the same ε, with
    /// [`Release::degraded`] set; the shape is handed to the compile
    /// farm so a background recompile (or the next run, via the
    /// persisted queue) can lift the degradation.
    pub fn compile_deadline(mut self, deadline: Duration) -> Self {
        self.compile_deadline = Some(deadline);
        self
    }

    /// Bounds the submitted-but-unanswered queue (default: unbounded).
    /// [`Client::submit`] sheds requests beyond the cap synchronously
    /// with [`ServerError::Overloaded`] — load stays visible to the
    /// client instead of accumulating as unbounded latency. On a
    /// sharded server the cap divides evenly across shards (each shard
    /// sheds at `⌈depth / shards⌉`), and the error's `retry_after` is
    /// computed from the admitting shard's own backlog.
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth.max(1));
        self
    }

    /// How many contained panics one worker absorbs before retiring its
    /// pool slot (default 8). The last live worker never retires,
    /// whatever the budget says: the pool must never go empty.
    pub fn worker_panic_budget(mut self, budget: u64) -> Self {
        self.worker_panic_budget = budget.max(1);
        self
    }

    /// Whether a Gaussian server coalesces submissions at *different* ε
    /// into one batch within a δ-class (default `true`). Disabling it
    /// restores ε to the batch key — the ε-fragmented scheduling a pure
    /// server is stuck with — which exists as the comparison baseline
    /// for the cross-ε throughput claim. No effect on pure servers,
    /// whose Laplace draws are scale-exact and always key on ε.
    pub fn coalesce_across_eps(mut self, enabled: bool) -> Self {
        self.coalesce_across_eps = enabled;
        self
    }

    /// Sliding window over which per-tenant budget burn rates are
    /// measured (default 10 s). The [`ServerReport`]'s
    /// [`telemetry`](ServerReport::telemetry) quotes each tenant's
    /// ε/δ spend per second over this window plus the time-to-exhaustion
    /// that rate implies.
    pub fn burn_window(mut self, window: Duration) -> Self {
        self.burn_window = window;
        self
    }

    /// Validates and finishes the builder.
    pub fn build(self) -> Result<Server, ServerError> {
        if self.data.len() != self.schema.domain_size() {
            return Err(ServerError::Workload(WorkloadError::DomainMismatch {
                expected: self.schema.domain_size(),
                got: self.data.len(),
            }));
        }
        if self.data.iter().any(|v| !v.is_finite()) {
            return Err(ServerError::Workload(WorkloadError::NonFinite));
        }
        if self.max_batch == 0 {
            return Err(ServerError::Core(CoreError::InvalidArgument(
                "max_batch must be at least 1".into(),
            )));
        }
        if self.workers == 0 {
            return Err(ServerError::Core(CoreError::InvalidArgument(
                "the worker pool needs at least one thread".into(),
            )));
        }
        if self.options.flavor == NoiseFlavor::ApproxDp && !self.mechanism.supports_approx() {
            return Err(ServerError::Core(CoreError::InvalidArgument(format!(
                "mechanism {:?} has no Gaussian calibration; an approximate-DP \
                 server needs one of the L2-capable kinds",
                self.mechanism
            ))));
        }
        // With durable state, claim a fresh noise epoch before anything
        // else: batch indices label noise streams (`derive_rng(seed,
        // index)`), and restarting at index 0 under a pinned seed would
        // re-release the exact Laplace draws of the previous process for
        // freshly-debited ε. The epoch file makes every restart's index
        // range disjoint. Refusing to build on epoch-file I/O failure is
        // the conservative choice.
        let batch_start = match &self.state_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| ServerError::State {
                    reason: format!("state dir {}: {e}", dir.display()),
                })?;
                let epoch = next_noise_epoch(dir).map_err(|e| ServerError::State {
                    reason: format!("noise epoch file: {e}"),
                })?;
                // A durable server also arms the flight recorder: a
                // crash dumps the last window of spans/events under
                // `state_dir/flightrec/` next to the ledgers the
                // post-mortem will want to read.
                lrm_obs::flightrec::arm(dir.join("flightrec"));
                epoch << 32
            }
            None => 0,
        };
        Ok(Server {
            schema: self.schema,
            data: self.data,
            engine: self.engine,
            mechanism: self.mechanism,
            options: self.options,
            coalesce_window: self.coalesce_window,
            max_batch: self.max_batch,
            rank_close: self.rank_close,
            workers: self.workers,
            shards: self.shards,
            precompile_workers: self.precompile_workers,
            compile_budget: self.compile_budget,
            seed: self.seed,
            compile_deadline: self.compile_deadline,
            max_queue_depth: self.max_queue_depth,
            worker_panic_budget: self.worker_panic_budget,
            coalesce_across_eps: self.coalesce_across_eps,
            tenants: TenantLedgers::new(self.state_dir.as_ref().map(|d| d.join("ledgers"))),
            burn: BurnTracker::new(self.burn_window),
            state_dir: self.state_dir,
            quarantine: RwLock::new(HashSet::new()),
            batch_counter: AtomicU64::new(batch_start),
        })
    }
}

/// Reads the previous noise epoch under `dir`, durably records the next
/// one, and returns it. Epoch 0 is never returned: the first run of a
/// durable server already starts at epoch 1, so its indices are disjoint
/// from any non-durable run's (which start at 0).
fn next_noise_epoch(dir: &Path) -> std::io::Result<u64> {
    use std::io::Write as _;
    let path = dir.join("noise_epoch");
    let prev = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let next = prev
        .checked_add(1)
        .ok_or_else(|| std::io::Error::other("noise epoch counter overflow"))?;
    let mut file = std::fs::File::create(&path)?;
    write!(file, "{next}")?;
    file.sync_all()?;
    Ok(next)
}

/// The batch-serving runtime. See the [module docs](self) for the request
/// lifecycle; construct via [`Server::builder`], register tenants, then
/// drive traffic through [`Server::serve`].
pub struct Server {
    schema: Schema,
    data: Vec<f64>,
    engine: Engine,
    mechanism: MechanismKind,
    options: CompileOptions,
    coalesce_window: Duration,
    max_batch: usize,
    rank_close: bool,
    workers: usize,
    shards: usize,
    precompile_workers: usize,
    compile_budget: Duration,
    seed: u64,
    compile_deadline: Option<Duration>,
    max_queue_depth: Option<usize>,
    worker_panic_budget: u64,
    coalesce_across_eps: bool,
    state_dir: Option<PathBuf>,
    tenants: TenantLedgers,
    /// Sliding-window ε/δ burn rates per tenant (settled debits only).
    burn: BurnTracker,
    /// Workload shapes that crashed a worker; refused at admission.
    quarantine: RwLock<HashSet<u64>>,
    /// Lifetime batch counter. The batch index labels the noise stream
    /// (`derive_rng(seed, index)`), so it must never reset while the
    /// server lives: tenant ledgers span [`Server::serve`] calls, and a
    /// repeated index would re-release the same Laplace draws for
    /// freshly-debited ε — breaking sequential composition. With a
    /// state directory, the counter starts at `epoch << 32` so indices
    /// stay disjoint across *process* restarts too.
    batch_counter: AtomicU64,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("domain_size", &self.schema.domain_size())
            .field("mechanism", &self.mechanism)
            .field("coalesce_window", &self.coalesce_window)
            .field("max_batch", &self.max_batch)
            .field("workers", &self.workers)
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts a [`ServerBuilder`] over `schema` and the private database
    /// `data`.
    pub fn builder(schema: Schema, data: Vec<f64>) -> ServerBuilder {
        ServerBuilder::new(schema, data)
    }

    /// Registers (or resets) a tenant with a total pure-ε budget.
    ///
    /// With a [state directory](ServerBuilder::state_dir) this opens the
    /// tenant's durable journal and panics on I/O failure; use
    /// [`Server::try_register_tenant`] to handle that case.
    pub fn register_tenant(&self, tenant: &str, total: Epsilon) {
        self.tenants
            .register(tenant, total)
            .expect("tenant budget journal failed to open");
    }

    /// Registers (or resets) a tenant with a total (ε, δ) budget — the
    /// grant a Gaussian server debits both columns of per release.
    /// Panics on journal I/O failure; use
    /// [`Server::try_register_tenant_budget`] to handle that case.
    pub fn register_tenant_budget(&self, tenant: &str, total: Budget) {
        self.tenants
            .register_budget(tenant, total)
            .expect("tenant budget journal failed to open");
    }

    /// Registers (or resets) a tenant, reporting what its durable
    /// journal (if any) recorded: whether a prior spend was resumed,
    /// whether the journal was damaged (the ledger opens fully
    /// exhausted), and how much ε unsettled intents recovered as spent.
    pub fn try_register_tenant(
        &self,
        tenant: &str,
        total: Epsilon,
    ) -> Result<TenantResume, ServerError> {
        self.try_register_tenant_budget(tenant, Budget::pure(total))
    }

    /// [`Server::try_register_tenant`] for an (ε, δ) grant: the resume
    /// report additionally carries the recovered δ columns.
    pub fn try_register_tenant_budget(
        &self,
        tenant: &str,
        total: Budget,
    ) -> Result<TenantResume, ServerError> {
        self.tenants
            .register_budget(tenant, total)
            .map_err(ServerError::Admission)
    }

    /// The schema requests are translated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared engine (e.g. for cache statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Point-in-time budget positions of every registered tenant.
    pub fn tenant_spend(&self) -> Vec<TenantSpend> {
        self.tenants.snapshot()
    }

    /// Runs the runtime: spawns the coalescing scheduler and the worker
    /// pool, hands `f` a [`Client`] to drive traffic through, and shuts
    /// everything down (draining every in-flight batch) when `f` returns.
    /// Returns `f`'s result plus the [`ServerReport`] for the run.
    pub fn serve<R>(&self, f: impl FnOnce(&Client<'_>) -> R) -> (R, ServerReport) {
        let metrics = ServerMetrics::new(self.shards);
        let farm = FarmState::new(self.compile_budget);
        // Resume the persisted popularity queue, if a prior run (over
        // the same state or spill directory) left one behind.
        let farm_path = self.farm_queue_path();
        if let Some(path) = &farm_path {
            let loaded = farm.load(path, self.schema.fingerprint());
            metrics
                .farm_shapes
                .fetch_add(loaded as u64, Ordering::Relaxed);
        }
        let live_workers = AtomicUsize::new(self.workers);
        let pool = WorkPool::new(self.shards);
        let mut sub_txs = Vec::with_capacity(self.shards);
        let mut sub_rxs = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = mpsc::channel::<Submission>();
            sub_txs.push(tx);
            sub_rxs.push(rx);
        }

        let result = std::thread::scope(|s| {
            let m = &metrics;
            let farm = &farm;
            let live = &live_workers;
            let pool = &pool;
            for (shard, rx) in sub_rxs.into_iter().enumerate() {
                s.spawn(move || self.scheduler_loop(shard, m, farm, rx, pool));
            }
            for w in 0..self.workers {
                s.spawn(move || self.worker_loop(w, m, pool, farm, live));
            }
            for _ in 0..self.precompile_workers {
                s.spawn(|| self.farm_loop(m, farm));
            }
            let client = Client {
                server: self,
                metrics: m,
                txs: sub_txs,
            };
            f(&client)
            // `client` (the last submission sender for every shard)
            // drops here: each shard flushes its open batches and exits;
            // the last shard out signals the farm that the admission
            // stream is over; the workers drain the flush queues, the
            // farm drains what its budget affords, and the scope joins
            // them all.
        });

        if let Some(path) = &farm_path {
            // Best effort: a lost queue is a cold start, not an error.
            let _ = farm.save(path);
        }
        metrics
            .ledger_replays
            .store(self.tenants.replays(), Ordering::Relaxed);
        let tenants = self.tenants.snapshot();
        let report = ServerReport {
            metrics: metrics.snapshot(),
            cache: self.engine.cache_stats(),
            telemetry: self.burn.report(&tenants),
            tenants,
        };
        (result, report)
    }

    /// Where the farm's popularity queue persists: the state directory
    /// if configured, else alongside the engine's strategy store.
    fn farm_queue_path(&self) -> Option<PathBuf> {
        self.state_dir
            .clone()
            .or_else(|| self.engine.spill_dir().map(Path::to_path_buf))
            .map(|d| d.join("farm_queue.lrmf"))
    }

    /// One coalescing scheduler shard: groups admissible submissions by
    /// [`BatchKey`] within the bounded window. Every shard runs this
    /// same loop over its own submission channel, open-batch map, and
    /// window timers; closed batches go to the shard's flush queue in
    /// the shared [`WorkPool`]. The shard that drains last signals the
    /// farm and the workers that the admission stream is over.
    fn scheduler_loop(
        &self,
        shard: usize,
        metrics: &ServerMetrics,
        farm: &FarmState,
        rx: Receiver<Submission>,
        pool: &WorkPool,
    ) {
        let mut open: HashMap<BatchKey, OpenBatch> = HashMap::new();
        let mut next_seq: u64 = 0;
        loop {
            let now = Instant::now();
            let due = Self::due_batches(&mut open, now);
            for batch in due {
                self.flush(metrics, pool, shard, batch, CloseReason::Window);
            }
            let msg = match open.values().map(|b| b.deadline).min() {
                Some(deadline) => rx.recv_timeout(deadline.saturating_duration_since(now)),
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            match msg {
                Ok(sub) => {
                    if let Err(e) = self.tenants.check_budget(&sub.tenant, sub.budget) {
                        metrics
                            .rejected_admission
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        respond(metrics, sub, Err(ServerError::Admission(e)));
                        continue;
                    }
                    let shape = shape_hash(&sub.prepared);
                    if self
                        .quarantine
                        .read()
                        .unwrap_or_else(|e| e.into_inner())
                        .contains(&shape)
                    {
                        metrics
                            .failed
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        respond(metrics, sub, Err(ServerError::Quarantined { shape }));
                        continue;
                    }
                    if self.precompile_workers > 0 && farm.observe(&sub.prepared) {
                        metrics
                            .farm_shapes
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    // The key was computed on the submit path (it routed
                    // the submission to this shard).
                    let key = sub.key;
                    let batch = open.entry(key).or_insert_with(|| {
                        let seq = next_seq;
                        next_seq += 1;
                        OpenBatch {
                            seq,
                            deadline: Instant::now() + self.coalesce_window,
                            rank: RankTracker::default(),
                            submissions: Vec::new(),
                        }
                    });
                    let rank_grew = batch.rank.admit(&sub.prepared);
                    batch.submissions.push(sub);
                    // Rank-growth close: a member that adds no new rank
                    // element means the batch's shared structure is
                    // saturated — flush now (the member still rides along
                    // and shares the noise draw). The cap stays as a hard
                    // ceiling.
                    let saturated = self.rank_close && !rank_grew && batch.submissions.len() > 1;
                    let at_ceiling = batch.submissions.len() >= self.max_batch;
                    if at_ceiling || saturated || self.coalesce_window.is_zero() {
                        // With a zero window `saturated` is impossible
                        // (every batch flushes at length 1), so the
                        // remaining immediate flush is a Window close.
                        let reason = if at_ceiling {
                            CloseReason::MaxBatch
                        } else if saturated {
                            CloseReason::RankGrowth
                        } else {
                            CloseReason::Window
                        };
                        let batch = open.remove(&key).expect("batch just touched");
                        self.flush(metrics, pool, shard, batch, reason);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Shutdown: flush every open batch (in opening order)
                    // so no accepted request is ever dropped.
                    let mut rest: Vec<OpenBatch> = open.drain().map(|(_, b)| b).collect();
                    rest.sort_by_key(|b| b.seq);
                    for batch in rest {
                        self.flush(metrics, pool, shard, batch, CloseReason::ShutdownDrain);
                    }
                    // The flushes above happen-before this decrement, so
                    // a worker that observes zero live shards and empty
                    // queues can safely exit. Only the last shard out
                    // ends the farm's input: other shards may still be
                    // observing shapes.
                    if pool.scheduler_done() == 0 {
                        farm.finish_input();
                    }
                    break;
                }
            }
        }
    }

    /// Removes and returns the open batches whose window has elapsed, in
    /// opening order (so batch indices stay deterministic).
    fn due_batches(open: &mut HashMap<BatchKey, OpenBatch>, now: Instant) -> Vec<OpenBatch> {
        let due_keys: Vec<BatchKey> = open
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(k, _)| *k)
            .collect();
        let mut due: Vec<OpenBatch> = due_keys
            .into_iter()
            .map(|k| open.remove(&k).expect("key just listed"))
            .collect();
        due.sort_by_key(|b| b.seq);
        due
    }

    /// Hands a closed batch to the worker pool via its shard's flush
    /// queue. The index comes from the server-lifetime
    /// [`Server::batch_counter`] — shared by every shard — so no noise
    /// stream is ever repeated, however many shards or `serve` runs this
    /// server hosts.
    fn flush(
        &self,
        metrics: &ServerMetrics,
        pool: &WorkPool,
        shard: usize,
        batch: OpenBatch,
        reason: CloseReason,
    ) {
        let requests = batch.submissions.len() as u64;
        let rows: usize = batch
            .submissions
            .iter()
            .map(|s| s.prepared.num_queries())
            .sum();
        // The batch key fixes the flavor (δ bits are in the key), so the
        // first member speaks for the batch; the distinct-ε count is what
        // tells a cross-ε Gaussian batch from an ordinary coalesced one.
        let gaussian = !batch.submissions[0].budget.is_pure();
        let distinct_eps = batch
            .submissions
            .iter()
            .map(|s| s.budget.eps().value().to_bits())
            .collect::<HashSet<u64>>()
            .len() as u64;
        metrics.batch_flushed(requests, rows as u64, gaussian, distinct_eps);
        let closed = match reason {
            CloseReason::RankGrowth => &metrics.rank_closed_batches,
            CloseReason::Window => &metrics.window_closed_batches,
            CloseReason::MaxBatch => &metrics.ceiling_closed_batches,
            CloseReason::ShutdownDrain => &metrics.drain_closed_batches,
        };
        closed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let index = self
            .batch_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // The batch gets its own trace: members keep their request
        // traces, and the close event records why the batch stopped
        // coalescing plus its composition.
        let trace = lrm_obs::next_trace_id();
        lrm_obs::event!(in trace; "batch.close",
            batch = index,
            shard = shard,
            reason = reason.label(),
            requests = requests,
            rows = rows,
            gaussian = gaussian,
            distinct_eps = distinct_eps,
        );
        let job = BatchJob {
            index,
            trace,
            flushed_at: Instant::now(),
            submissions: batch.submissions,
        };
        // The pool is a queue, not a channel: workers only exit after
        // every shard is done *and* every queue is drained, so a pushed
        // job is always claimed — no orphaned tickets.
        pool.push(shard, job);
    }

    /// A supervised worker: answer batches until the scheduler hangs up,
    /// containing panics. A panic while answering fails the batch's
    /// not-yet-responded members with [`ServerError::Quarantined`],
    /// quarantines their workload shapes (refused at admission from then
    /// on — the shape, not the tenant, is what crashed the worker), and
    /// keeps this pool slot running (a logical respawn). A worker that
    /// spends its panic budget retires — unless it is the last live
    /// worker, which soldiers on: the pool must never go empty while the
    /// scheduler can still flush batches at it.
    fn worker_loop(
        &self,
        worker: usize,
        metrics: &ServerMetrics,
        pool: &WorkPool,
        farm: &FarmState,
        live_workers: &AtomicUsize,
    ) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut panics: u64 = 0;
        // Each worker prefers one home shard (spreading the pool across
        // shards) and steals from the others when its own queue is dry.
        let home = worker % self.shards;
        loop {
            let Some((from, mut job)) = pool.pop(home) else {
                break;
            };
            if from != home {
                metrics.stolen_batches.fetch_add(1, Ordering::Relaxed);
            }
            // AssertUnwindSafe: on panic we only touch `job.submissions`
            // (a plain Vec the answer loop shrinks with `remove(0)`, so
            // exactly the unresponded members remain) and shared state
            // whose own locks handle poisoning.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.answer_batch(metrics, farm, &mut job)
            }));
            if outcome.is_ok() {
                continue;
            }
            panics += 1;
            metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
            while !job.submissions.is_empty() {
                let sub = job.submissions.remove(0);
                let shape = shape_hash(&sub.prepared);
                if self
                    .quarantine
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(shape)
                {
                    metrics.quarantined_shapes.fetch_add(1, Ordering::Relaxed);
                }
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                respond(metrics, sub, Err(ServerError::Quarantined { shape }));
            }
            if panics >= self.worker_panic_budget {
                let retired = live_workers
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n > 1).then(|| n - 1)
                    })
                    .is_ok();
                if retired {
                    break;
                }
                // Last worker standing: reset the budget and keep going.
                panics = 0;
            }
        }
    }

    /// A farm worker: precompile popularity-ranked shapes through the
    /// engine cache until the queue is drained (after the admission
    /// stream ends) or the compile budget is spent. Best-effort by
    /// design: a failed compile is dropped — the serving path will
    /// surface the same error to the tenant that actually asks.
    fn farm_loop(&self, metrics: &ServerMetrics, farm: &FarmState) {
        loop {
            match farm.claim() {
                Claim::Shape(prepared) => {
                    let t0 = Instant::now();
                    if let Ok(workload) = prepared.to_workload() {
                        let _ = self
                            .engine
                            .compile(&workload, self.mechanism, &self.options);
                    }
                    let elapsed = t0.elapsed();
                    farm.record_spent(elapsed);
                    metrics.farm_precompiled.fetch_add(1, Ordering::Relaxed);
                    metrics.farm_compile_us.fetch_add(
                        elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        Ordering::Relaxed,
                    );
                }
                Claim::Empty if farm.input_done() => break,
                Claim::Empty => std::thread::sleep(Duration::from_micros(500)),
                Claim::Exhausted => break,
            }
        }
    }

    /// Compile → intents → one noisy release → slice → settle, for one
    /// batch. Takes the job by `&mut` so that if this method panics (a
    /// worker fault), the supervisor in [`Server::worker_loop`] finds
    /// exactly the not-yet-responded members still in
    /// `job.submissions`.
    fn answer_batch(&self, metrics: &ServerMetrics, farm: &FarmState, job: &mut BatchJob) {
        let claimed_at = Instant::now();
        let trace = job.trace;
        let _serve_span = lrm_obs::span!(in trace; "batch.serve",
            batch = job.index,
            requests = job.submissions.len(),
        );
        lrm_testing::failpoint!("server::worker::panic");
        let combined = {
            let specs: Vec<&PreparedSpec> = job.submissions.iter().map(|s| &s.prepared).collect();
            combine(self.schema.domain_size(), &specs)
        };
        let (workload, spans) = match combined {
            Ok(v) => v,
            Err(e) => return self.fail_batch(metrics, job, ServerError::Workload(e)),
        };
        let mut compile_span = lrm_obs::span!(in trace; "batch.compile",
            batch = job.index,
            rows = workload.num_queries(),
        );
        // While tracing is on, the ALM outer loop reports each
        // iteration's (τ, β) through the solver-telemetry observer —
        // data-independent by construction (τ is a workload property).
        let compiled = if lrm_obs::enabled() {
            lrm_opt::telemetry::with_observer(
                std::rc::Rc::new(move |it: lrm_opt::AlmIteration| {
                    lrm_obs::event!(in trace; "alm.iteration",
                        outer = it.outer,
                        tau = it.residual,
                        beta = it.beta,
                    );
                }),
                || self.compile_batch(&workload),
            )
        } else {
            self.compile_batch(&workload)
        };
        let compiled = match compiled {
            Ok(c) => c,
            Err(e) => return self.fail_batch(metrics, job, e),
        };
        {
            let meta = compiled.meta();
            compile_span.record("cache", cache_label(meta.cache));
            compile_span.record("mechanism", meta.label);
            compile_span.record("compile_seconds", meta.compile_seconds);
            compile_span.record("degraded", meta.degraded);
            if let Some(rank) = meta.strategy_rank {
                compile_span.record("strategy_rank", rank);
            }
            if let Some(iters) = meta.alm_iterations {
                compile_span.record("alm_iterations", iters);
            }
            if let Some(warm) = &meta.warm_start {
                compile_span.record("warm_seed_fingerprint", warm.seed_fingerprint);
                compile_span.record("warm_profile_distance", warm.profile_distance);
                compile_span.record("warm_iterations_saved", warm.iterations_saved());
                compile_span.record("warm_cross_flavor", warm.cross_flavor);
            }
        }
        drop(compile_span);
        let compile_done = Instant::now();
        let degraded = compiled.meta().degraded;
        if degraded {
            // The configured mechanism blew its deadline; hand every
            // member's standalone shape to the farm so a background
            // recompile (or the next run, via the persisted queue) can
            // answer it undegraded.
            for sub in &job.submissions {
                if farm.observe(&sub.prepared) {
                    metrics.farm_shapes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Phase one: durably reserve every member's own (ε, δ) budget
        // BEFORE any noise is drawn. From here on a crash can only waste
        // reserved budget (the intent replays as spent) — never release
        // unaccounted noise. In a cross-ε batch this is where the
        // shared base draw stops mattering for accounting: each member
        // pays exactly what it asked for.
        let intents: Vec<Result<u64, AdmissionError>> = job
            .submissions
            .iter()
            .map(|sub| self.tenants.begin_budget(&sub.tenant, sub.budget))
            .collect();
        // Noise for the whole batch, from the batch's own deterministic
        // streams — skipped entirely if no intent was granted (no
        // release will happen, so no noise may exist).
        let noise_started = Instant::now();
        let noise = if intents.iter().any(Result::is_ok) {
            let _noise_span = lrm_obs::span!(in trace; "batch.noise", batch = job.index);
            match self.draw_batch_noise(&compiled, job, &intents) {
                Ok(n) => Some(n),
                Err(e) => {
                    // The noise never leaves the process: refund every
                    // reservation (durably, or keep it — conservative).
                    for (sub, intent) in job.submissions.iter().zip(&intents) {
                        if let Ok(id) = intent {
                            self.tenants.abort(&sub.tenant, *id);
                        }
                    }
                    return self.fail_batch(metrics, job, ServerError::Core(e));
                }
            }
        } else {
            None
        };
        let noise_done = Instant::now();
        let batch_size = job.submissions.len();
        // The crash window the fault harness aims at: noise exists,
        // settlements have not landed. The durable intents above are
        // what make a kill here safe.
        lrm_testing::failpoint!("server::settle::crash");
        let mut spans = spans.into_iter();
        let mut intents = intents.into_iter();
        let mut member = 0usize;
        while !job.submissions.is_empty() {
            // `remove(0)`, not `drain(..)`: a panic mid-loop must leave
            // the unresponded members in the job for the supervisor
            // (Drain's drop would discard them, hanging their tickets).
            let sub = job.submissions.remove(0);
            let span = spans.next().expect("one span per member");
            let k = member;
            member += 1;
            match intents.next().expect("one intent per member") {
                Ok(id) => {
                    let (eps_remaining, delta_remaining) = self.tenants.settle(&sub.tenant, id);
                    self.burn.record(&sub.tenant, sub.budget);
                    metrics.answered.fetch_add(1, Ordering::Relaxed);
                    if degraded {
                        metrics.degraded_releases.fetch_add(1, Ordering::Relaxed);
                    }
                    let noise = noise
                        .as_ref()
                        .expect("noise was drawn: this member's intent was granted");
                    let answers = match noise {
                        BatchNoise::Shared(a) => a[span].to_vec(),
                        BatchNoise::PerMember(per) => per[k]
                            .as_ref()
                            .expect("per-member noise exists for every granted intent")[span]
                            .to_vec(),
                    };
                    // Data-independent error bound only (`x = None`): the
                    // structural residual ‖(W − BL)x‖² is an exact,
                    // un-noised statistic of the private database, and
                    // this number goes out to tenants without any budget
                    // debit — it must never depend on the data. Computed
                    // per member: in a cross-ε batch each member's noise
                    // is calibrated to its own budget.
                    let expected_avg_error =
                        compiled.expected_average_error_budget(sub.budget, None);
                    let release = Release {
                        answers,
                        eps_spent: sub.budget.eps(),
                        eps_remaining,
                        delta_spent: sub.budget.delta(),
                        delta_remaining,
                        mechanism: compiled.meta().label,
                        expected_avg_error,
                        batch_index: job.index,
                        batch_size,
                        degraded,
                    };
                    let request_trace = sub.trace;
                    let shard = sub.shard;
                    let submitted_at = sub.submitted_at;
                    let budget = sub.budget;
                    respond(metrics, sub, Ok(release));
                    if lrm_obs::enabled() {
                        // The client-observed latency, decomposed into
                        // the pipeline's phases. `total_ns` is the sum
                        // of the five components by construction;
                        // settle covers the two gaps around the noise
                        // draw (intents + slicing + settlement).
                        let responded_at = Instant::now();
                        let coalesce_ns = ns_between(submitted_at, job.flushed_at);
                        let queue_ns = ns_between(job.flushed_at, claimed_at);
                        let compile_ns = ns_between(claimed_at, compile_done);
                        let noise_ns = ns_between(noise_started, noise_done);
                        let settle_ns = ns_between(compile_done, noise_started)
                            + ns_between(noise_done, responded_at);
                        lrm_obs::event!(in request_trace; "request.complete",
                            batch = job.index,
                            shard = shard,
                            coalesce_ns = coalesce_ns,
                            queue_ns = queue_ns,
                            compile_ns = compile_ns,
                            noise_ns = noise_ns,
                            settle_ns = settle_ns,
                            total_ns =
                                coalesce_ns + queue_ns + compile_ns + noise_ns + settle_ns,
                            eps = budget.eps().value(),
                            delta = budget.delta(),
                            degraded = degraded,
                        );
                    }
                }
                Err(e) => {
                    metrics.rejected_settlement.fetch_add(1, Ordering::Relaxed);
                    respond(metrics, sub, Err(ServerError::Admission(e)));
                }
            }
        }
    }

    /// Draws the batch's noise from its deterministic streams.
    ///
    /// Pure batches keep the original single-draw discipline: one
    /// [`Mechanism::answer`] call on stream `job.index` — every member's
    /// ε is bit-identical (it is in the batch key), so the one Laplace
    /// draw is correctly scaled for all of them.
    ///
    /// Gaussian batches share one *base* draw calibrated at the weakest
    /// (largest-ε) member budget and give each member an independent
    /// residual top-up: member `k` re-derives the identical base stream
    /// (lane 0 of `job.index`) and adds its own top-up stream (lane
    /// `k + 1`), so its slice carries exactly the variance its own
    /// (ε, δ) demands. Members whose intent was refused draw nothing —
    /// no noise may exist for a release that will not happen.
    fn draw_batch_noise(
        &self,
        compiled: &CompiledMechanism,
        job: &BatchJob,
        intents: &[Result<u64, AdmissionError>],
    ) -> Result<BatchNoise, CoreError> {
        let first = job.submissions[0].budget;
        if first.is_pure() {
            let mut rng = derive_rng(self.seed, job.index);
            return compiled
                .answer(&self.data, first.eps(), &mut rng)
                .map(BatchNoise::Shared);
        }
        let base = job
            .submissions
            .iter()
            .map(|s| s.budget)
            .max_by(|a, b| a.eps().value().total_cmp(&b.eps().value()))
            .expect("batches are never empty");
        let mut per_member = Vec::with_capacity(job.submissions.len());
        for (k, (sub, intent)) in job.submissions.iter().zip(intents).enumerate() {
            if intent.is_err() {
                per_member.push(None);
                continue;
            }
            // Fresh lane-0 rng per member: every member replays the
            // *identical* base draw, which is what lets their slices
            // share one data pass without sharing a calibration.
            let mut base_rng = derive_rng(self.seed, substream(job.index, 0));
            let mut topup_rng = derive_rng(self.seed, substream(job.index, k as u64 + 1));
            let answers = compiled.answer_with_topup(
                &self.data,
                base,
                sub.budget,
                &mut base_rng,
                &mut topup_rng,
            )?;
            per_member.push(Some(answers));
        }
        Ok(BatchNoise::PerMember(per_member))
    }

    /// Compiles the combined workload, under the configured deadline if
    /// any. A deadline overrun abandons the compile (nothing is cached)
    /// and answers with the guaranteed-fast noise-on-data baseline at
    /// the same budget, marked degraded — availability degrades to a
    /// worse error bound, never to a privacy change. The fallback
    /// compiles under the server's own noise flavor, so a Gaussian
    /// server degrades to Gaussian count noise, never to Laplace.
    fn compile_batch(&self, workload: &Workload) -> Result<CompiledMechanism, ServerError> {
        match self.compile_deadline {
            None => self
                .engine
                .compile(workload, self.mechanism, &self.options)
                .map_err(ServerError::Core),
            Some(budget) => match self.engine.compile_with_deadline(
                workload,
                self.mechanism,
                &self.options,
                budget,
            ) {
                Ok(c) => Ok(c),
                Err(CoreError::DeadlineExceeded) => self
                    .engine
                    .compile(workload, MechanismKind::Laplace, &self.options)
                    .map(CompiledMechanism::mark_degraded)
                    .map_err(ServerError::Core),
                Err(e) => Err(ServerError::Core(e)),
            },
        }
    }

    /// Fails every member of a batch with the same error.
    fn fail_batch(&self, metrics: &ServerMetrics, job: &mut BatchJob, error: ServerError) {
        for sub in job.submissions.drain(..) {
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            respond(metrics, sub, Err(error.clone()));
        }
    }
}

/// A fresh unpredictable seed from OS entropy.
///
/// The vendored `rand` has no `OsRng`, so this taps the standard
/// library's SipHash keys: each [`RandomState`] is derived from
/// per-thread keys initialized from operating-system randomness, which
/// is exactly the "secret, uniformly random" requirement the noise seed
/// carries (see [`ServerBuilder::seed`]).
///
/// [`RandomState`]: std::collections::hash_map::RandomState
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

/// Records the request's exit from its shard's queue and delivers its
/// outcome through whatever responder the submission carries (blocking
/// ticket, ticket-set completion queue, or callback). Rejections emit a
/// `request.reject` trace event here — the one place every asynchronous
/// failure path funnels through.
fn respond(metrics: &ServerMetrics, sub: Submission, outcome: Result<Release, ServerError>) {
    if let Err(e) = &outcome {
        let trace = sub.trace;
        lrm_obs::event!(in trace; "request.reject",
            shard = sub.shard,
            reason = error_label(e),
        );
    }
    metrics.dequeued(sub.shard, sub.submitted_at.elapsed());
    sub.responder.send(outcome);
}

/// Nanoseconds from `a` to `b` (0 if `b` is not after `a`) — the unit
/// every phase field of a `request.complete` event is quoted in.
fn ns_between(a: Instant, b: Instant) -> u64 {
    b.saturating_duration_since(a).as_nanos() as u64
}

/// Static label of a cache outcome for span payloads.
fn cache_label(outcome: lrm_core::engine::CacheOutcome) -> &'static str {
    match outcome {
        lrm_core::engine::CacheOutcome::Miss => "miss",
        lrm_core::engine::CacheOutcome::WarmStart => "warm_start",
        lrm_core::engine::CacheOutcome::MemoryHit => "memory_hit",
        lrm_core::engine::CacheOutcome::DiskHit => "disk_hit",
    }
}

/// Static label of an error variant for `request.reject` events — the
/// variant only, never its payload (a payload can carry tenant-chosen
/// strings).
fn error_label(e: &ServerError) -> &'static str {
    match e {
        ServerError::Spec(_) => "spec",
        ServerError::Admission(_) => "admission",
        ServerError::Workload(_) => "workload",
        ServerError::Core(_) => "core",
        ServerError::Shutdown => "shutdown",
        ServerError::Quarantined { .. } => "quarantined",
        ServerError::Overloaded { .. } => "overloaded",
        ServerError::State { .. } => "state",
        ServerError::NoiseModel { .. } => "noise_model",
    }
}

/// Why the scheduler closed a batch; recorded on the `batch.close`
/// event and in the per-reason [`MetricsSnapshot`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// The estimated combined rank stopped growing (see
    /// [`ServerBuilder::rank_close`]).
    RankGrowth,
    /// The coalescing window elapsed (or was zero).
    Window,
    /// The batch hit the `max_batch` ceiling.
    MaxBatch,
    /// Shutdown: the scheduler drained its open batches.
    ShutdownDrain,
}

impl CloseReason {
    fn label(self) -> &'static str {
        match self {
            CloseReason::RankGrowth => "rank_growth",
            CloseReason::Window => "window",
            CloseReason::MaxBatch => "max_batch",
            CloseReason::ShutdownDrain => "shutdown_drain",
        }
    }
}

/// The shared batch hand-off between scheduler shards and the worker
/// pool: one flush queue per shard, workers pop their home shard first
/// and steal from the rest. A queue (not a channel) so that a job, once
/// pushed, is always claimed: workers only exit once every scheduler
/// shard has signalled done *and* every queue has drained.
struct WorkPool {
    queues: Vec<Mutex<VecDeque<BatchJob>>>,
    /// Total jobs across all queues — the fast "anything to do?" check.
    queued: AtomicUsize,
    /// Scheduler shards still running; pushed jobs strictly precede the
    /// owner's decrement.
    live_schedulers: AtomicUsize,
    /// Sleeping workers park here; pushes and shard exits notify under
    /// the gate so wakeups are never lost.
    gate: Mutex<()>,
    available: Condvar,
}

impl WorkPool {
    fn new(shards: usize) -> Self {
        WorkPool {
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            live_schedulers: AtomicUsize::new(shards),
            gate: Mutex::new(()),
            available: Condvar::new(),
        }
    }

    fn push(&self, shard: usize, job: BatchJob) {
        self.queues[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.queued.fetch_add(1, Ordering::SeqCst);
        // Take the gate before notifying: a worker that just checked
        // `queued` and is about to wait holds it, so the notification
        // cannot slip into that gap.
        drop(self.gate.lock().unwrap_or_else(|e| e.into_inner()));
        self.available.notify_one();
    }

    /// Claims the globally oldest flushed batch. Each shard's queue is
    /// FIFO, so its head is that shard's oldest job; taking the minimum
    /// batch index across heads keeps cross-shard service order fair —
    /// with a fixed scan order, a hot shard that keeps refilling would
    /// starve a quiet shard's backlog indefinitely. Blocks while
    /// everything is empty but a scheduler shard could still flush;
    /// returns `None` only at final drain.
    fn pop(&self, _home: usize) -> Option<(usize, BatchJob)> {
        let shards = self.queues.len();
        loop {
            while self.queued.load(Ordering::SeqCst) > 0 {
                let mut oldest: Option<(usize, u64)> = None;
                for i in 0..shards {
                    let queue = self.queues[i].lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(job) = queue.front() {
                        if oldest.is_none_or(|(_, index)| job.index < index) {
                            oldest = Some((i, job.index));
                        }
                    }
                }
                // Every queue drained between the `queued` check and the
                // scan: fall through to the gate.
                let Some((i, index)) = oldest else { break };
                let mut queue = self.queues[i].lock().unwrap_or_else(|e| e.into_inner());
                // Another worker may have claimed the head since the
                // scan; only pop if it is still the job we chose.
                if queue.front().is_some_and(|job| job.index == index) {
                    let job = queue.pop_front().expect("head just checked");
                    drop(queue);
                    self.queued.fetch_sub(1, Ordering::SeqCst);
                    return Some((i, job));
                }
            }
            let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            // Order matters: read `live` before re-reading `queued`. A
            // shard's flushes precede its exit, so live == 0 means every
            // push already happened — a zero `queued` after that is
            // final, while the reverse order could miss a last-instant
            // flush and orphan its tickets.
            let live = self.live_schedulers.load(Ordering::SeqCst);
            if self.queued.load(Ordering::SeqCst) > 0 {
                continue;
            }
            if live == 0 {
                return None;
            }
            // The timeout is belt-and-braces against any missed wakeup;
            // the gate discipline above should make it unnecessary.
            match self.available.wait_timeout(gate, Duration::from_millis(50)) {
                Ok((guard, _)) => drop(guard),
                Err(poisoned) => drop(poisoned.into_inner()),
            }
        }
    }

    /// Marks one scheduler shard as exited (all its batches flushed);
    /// returns how many are still live.
    fn scheduler_done(&self) -> usize {
        let remaining = self.live_schedulers.fetch_sub(1, Ordering::SeqCst) - 1;
        drop(self.gate.lock().unwrap_or_else(|e| e.into_inner()));
        self.available.notify_all();
        remaining
    }
}

/// One admitted request traveling through the runtime.
struct Submission {
    tenant: String,
    prepared: PreparedSpec,
    budget: Budget,
    /// The batch key, computed once on the submit path; it also chose
    /// `shard`.
    key: BatchKey,
    /// The scheduler shard that admitted this request (for the per-shard
    /// queue gauges).
    shard: usize,
    /// The request's trace id, allocated at dispatch; every event this
    /// request produces (`request.submit` / `.reject` / `.complete`)
    /// carries it.
    trace: u64,
    submitted_at: Instant,
    responder: Responder,
}

/// A closed batch on its way to a worker. Per-member budgets live on the
/// submissions; the batch key guarantees they agree wherever the noise
/// model requires it (ε for pure batches, δ for Gaussian ones).
struct BatchJob {
    index: u64,
    /// The batch's own trace id (members keep their request traces);
    /// `batch.close` and the worker-side spans attach here.
    trace: u64,
    /// When the scheduler closed the batch — the coalesce/queue phase
    /// boundary in every member's latency decomposition.
    flushed_at: Instant,
    submissions: Vec<Submission>,
}

/// The drawn noise of one batch, shaped by its noise model.
enum BatchNoise {
    /// Pure batch: one Laplace release of the combined workload; every
    /// member slices the same vector.
    Shared(Vec<f64>),
    /// Gaussian batch: member `k`'s own full-batch release (the shared
    /// base draw plus `k`'s residual top-up); `None` for members whose
    /// intent was refused.
    PerMember(Vec<Option<Vec<f64>>>),
}

/// A batch still collecting companions in the scheduler.
struct OpenBatch {
    seq: u64,
    deadline: Instant,
    /// Running combined-rank estimate for the rank-growth close.
    rank: RankTracker,
    submissions: Vec<Submission>,
}

/// The submission handle [`Server::serve`] passes to its closure. Clone
/// it freely — one per client thread — every clone feeds the same
/// scheduler.
pub struct Client<'a> {
    server: &'a Server,
    metrics: &'a ServerMetrics,
    /// One submission channel per scheduler shard.
    txs: Vec<Sender<Submission>>,
}

impl Clone for Client<'_> {
    fn clone(&self) -> Self {
        Self {
            server: self.server,
            metrics: self.metrics,
            txs: self.txs.clone(),
        }
    }
}

impl fmt::Debug for Client<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client<'_> {
    /// Submits a spec on behalf of `tenant`, requesting one release at
    /// pure ε. Shorthand for [`Client::submit_budget`] with
    /// [`Budget::pure`] — only valid against a pure-DP server.
    pub fn submit(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        eps: Epsilon,
    ) -> Result<Ticket, ServerError> {
        self.submit_budget(tenant, spec, Budget::pure(eps))
    }

    /// Submits a spec on behalf of `tenant`, requesting one release at
    /// `budget`. Spec translation, tenant lookup, and the noise-model
    /// check fail synchronously; everything later (budget, compile,
    /// answer) arrives through the returned [`Ticket`].
    ///
    /// The budget's flavor must match the server's: a Gaussian server
    /// only grants (ε, δ) releases with δ > 0, a pure server only
    /// δ = 0 ones. Mismatches fail with [`ServerError::NoiseModel`]
    /// before anything is enqueued.
    pub fn submit_budget(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        budget: Budget,
    ) -> Result<Ticket, ServerError> {
        let (prepared, key, shard) = self.admit(tenant, spec, budget)?;
        let (tx, rx) = mpsc::channel();
        self.dispatch(tenant, prepared, key, shard, budget, Responder::channel(tx))?;
        Ok(Ticket { rx })
    }

    /// Submits a spec whose completion is delivered into `set` — the
    /// evented path: one driver thread submits until its in-flight
    /// window is full, then harvests with [`TicketSet::wait_any`] /
    /// [`TicketSet::poll`]. Returns the set token identifying this
    /// submission's completion. Synchronous failures (spec, tenant,
    /// overload, shutdown) are returned here and never enter the set.
    pub fn submit_budget_into(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        budget: Budget,
        set: &TicketSet,
    ) -> Result<u64, ServerError> {
        let (prepared, key, shard) = self.admit(tenant, spec, budget)?;
        let (token, responder) = set.register();
        self.dispatch(tenant, prepared, key, shard, budget, responder)?;
        Ok(token)
    }

    /// Pure-ε shorthand for [`Client::submit_budget_into`].
    pub fn submit_into(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        eps: Epsilon,
        set: &TicketSet,
    ) -> Result<u64, ServerError> {
        self.submit_budget_into(tenant, spec, Budget::pure(eps), set)
    }

    /// Submits a spec whose completion invokes `callback` on the worker
    /// thread that finished the batch (or the thread that rejected the
    /// request). Keep callbacks short — they run inside the serving
    /// pipeline. Synchronous failures are returned here; the callback
    /// then never runs.
    pub fn submit_budget_with(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        budget: Budget,
        callback: impl FnOnce(Completion) + Send + 'static,
    ) -> Result<(), ServerError> {
        let (prepared, key, shard) = self.admit(tenant, spec, budget)?;
        self.dispatch(
            tenant,
            prepared,
            key,
            shard,
            budget,
            Responder::callback(callback),
        )
    }

    /// The synchronous half of every submit flavor: noise-model check,
    /// spec translation, tenant existence, shard routing, and bounded
    /// admission against the admitting shard's queue.
    fn admit(
        &self,
        tenant: &str,
        spec: &QuerySpec,
        budget: Budget,
    ) -> Result<(PreparedSpec, BatchKey, usize), ServerError> {
        let flavor = self.server.options.flavor;
        let mismatched = match flavor {
            NoiseFlavor::PureDp => !budget.is_pure(),
            NoiseFlavor::ApproxDp => budget.is_pure(),
        };
        if mismatched {
            return Err(ServerError::NoiseModel {
                flavor,
                delta: budget.delta(),
            });
        }
        let prepared = spec
            .compile(&self.server.schema)
            .map_err(ServerError::Spec)?;
        if self.server.tenants.get(tenant).is_none() {
            return Err(ServerError::Admission(AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            }));
        }
        let key = BatchKey::of(&prepared, budget, self.server.coalesce_across_eps);
        let shard = key.shard(self.server.shards);
        if let Some(cap) = self.server.max_queue_depth {
            // Bounded admission: shed synchronously at the cap instead
            // of growing the queue without bound. The cap divides evenly
            // across shards (so total capacity is preserved and a hot
            // shard sheds before it starves the rest); the shed request
            // never enters the queue accounting (no submit, no latency
            // sample). `retry_after` comes from the admitting shard's
            // own backlog: one coalescing window per `max_batch`-sized
            // batch already ahead in that queue.
            let shard_cap = cap.div_ceil(self.server.shards);
            let depth = self.metrics.shard_depth(shard);
            if depth as usize >= shard_cap {
                self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                let batches_ahead = (depth / self.server.max_batch as u64).clamp(1, 64);
                let window = self.server.coalesce_window.max(Duration::from_millis(1));
                return Err(ServerError::Overloaded {
                    retry_after: window * batches_ahead as u32,
                });
            }
        }
        Ok((prepared, key, shard))
    }

    /// The enqueue half: queue accounting, then hand the submission to
    /// its shard. On a dead shard (shutdown) the accounting is rolled
    /// back and the responder defused — the caller gets the error
    /// synchronously, so nothing flows through the completion path.
    fn dispatch(
        &self,
        tenant: &str,
        prepared: PreparedSpec,
        key: BatchKey,
        shard: usize,
        budget: Budget,
        responder: Responder,
    ) -> Result<(), ServerError> {
        self.metrics.enqueued(shard);
        let trace = lrm_obs::next_trace_id();
        lrm_obs::event!(in trace; "request.submit",
            tenant = tenant.to_string(),
            shard = shard,
            rows = prepared.num_queries(),
            eps = budget.eps().value(),
            delta = budget.delta(),
        );
        let sub = Submission {
            tenant: tenant.to_string(),
            prepared,
            budget,
            key,
            shard,
            trace,
            submitted_at: Instant::now(),
            responder,
        };
        if let Err(mpsc::SendError(sub)) = self.txs[shard].send(sub) {
            // Shard gone (shutdown mid-submit); roll the queue
            // accounting back without recording a latency sample — the
            // request never entered the queue, and a synthetic zero
            // would drag p50/p99 down.
            self.metrics.enqueue_rolled_back(shard);
            let trace = sub.trace;
            lrm_obs::event!(in trace; "request.reject", shard = shard, reason = "shutdown");
            sub.responder.defuse();
            return Err(ServerError::Shutdown);
        }
        Ok(())
    }
}

/// A pending response. [`Ticket::wait`] blocks until the batch containing
/// the request is answered (or the request is rejected).
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Release, ServerError>>,
}

impl Ticket {
    /// Blocks for the outcome.
    pub fn wait(self) -> Result<Release, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Non-blocking poll: `None` while the request is still in flight;
    /// `Some(Err(ServerError::Shutdown))` if the runtime went away
    /// without responding (so a polling client terminates, like
    /// [`Ticket::wait`] does, instead of spinning forever).
    pub fn try_wait(&self) -> Option<Result<Release, ServerError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServerError::Shutdown)),
        }
    }

    /// Bounded wait: blocks up to `timeout` for the outcome. `None`
    /// means the request is *still in flight* (the ticket stays valid —
    /// wait again); `Some(Err(ServerError::Shutdown))` means the runtime
    /// went away without responding.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Release, ServerError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServerError::Shutdown)),
        }
    }
}

/// One granted release: the tenant's slice of a batch answer plus the
/// accounting that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// Noisy answers for exactly the queries this tenant's spec asked.
    pub answers: Vec<f64>,
    /// The ε debited from the tenant for this release.
    pub eps_spent: Epsilon,
    /// The tenant's remaining ε after the debit.
    pub eps_remaining: f64,
    /// The δ debited from the tenant for this release (`0` for pure
    /// releases).
    pub delta_spent: f64,
    /// The tenant's remaining δ after the debit (`0` on pure servers).
    pub delta_remaining: f64,
    /// Label of the strategy that answered the batch.
    pub mechanism: &'static str,
    /// Closed-form expected average squared *noise* error of this
    /// member's release at its own budget (members of a cross-ε batch
    /// carry different bounds). Deliberately data-independent: it omits
    /// the structural residual `‖(W − BL)x‖²`, which is an exact
    /// statistic of the private database and cannot be published without
    /// spending budget.
    pub expected_avg_error: f64,
    /// Index of the batch this release was sliced from (also the noise
    /// stream label: a pure batch drew from `derive_rng(seed,
    /// batch_index)`, a Gaussian batch from that index's substream
    /// lanes). Harmless on its own — reconstructing the noise
    /// additionally requires the master seed, which is secret OS entropy
    /// unless an experiment pinned it (see [`ServerBuilder::seed`]).
    pub batch_index: u64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Whether this release came from the degraded-mode fallback: the
    /// configured mechanism blew its compile deadline, so the batch was
    /// answered by the Laplace baseline at the same ε. The privacy
    /// accounting is identical — only the expected error is worse.
    pub degraded: bool,
}

impl Release {
    /// Whether this release shared its batch with other requests.
    pub fn coalesced(&self) -> bool {
        self.batch_size > 1
    }
}

/// Everything a [`Server::serve`] run can report about itself.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Scheduler/worker counters and latency percentiles.
    pub metrics: MetricsSnapshot,
    /// The shared engine's compiled-strategy cache counters.
    pub cache: CacheStats,
    /// Per-tenant burn-rate telemetry: ε/δ spend per second over the
    /// [burn window](ServerBuilder::burn_window) and the estimated
    /// time-to-exhaustion that rate implies.
    pub telemetry: Vec<TenantTelemetry>,
    /// Per-tenant budget positions at shutdown.
    pub tenants: Vec<TenantSpend>,
}

/// Typed failure of a serving request (or of server construction).
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The spec failed translation against the schema.
    Spec(SpecError),
    /// Admission or settlement refused the request (unknown tenant /
    /// budget exhausted).
    Admission(AdmissionError),
    /// Workload assembly rejected the batch.
    Workload(WorkloadError),
    /// Strategy compilation or answering failed.
    Core(CoreError),
    /// The runtime shut down before the request completed.
    Shutdown,
    /// The request's workload shape previously crashed a worker and is
    /// quarantined: the server refuses it at admission rather than
    /// letting it take down another pool slot.
    Quarantined {
        /// The quarantined shape's identity hash.
        shape: u64,
    },
    /// The request was shed at submission: the admitting scheduler
    /// shard's queue is at its depth cap (see
    /// [`ServerBuilder::max_queue_depth`]). Nothing was admitted and no
    /// budget was touched.
    Overloaded {
        /// A resubmission hint scaled to the admitting shard's backlog:
        /// one coalescing window per `max_batch`-sized batch already
        /// queued ahead (at least one window, at most 64).
        retry_after: Duration,
    },
    /// The server's durable state (noise-epoch file or state directory)
    /// failed an I/O operation at build time.
    State {
        /// What failed.
        reason: String,
    },
    /// The request's budget flavor does not match the server's noise
    /// model: a Gaussian server needs δ > 0 on every release, a pure
    /// server refuses any δ. Refused synchronously at submission —
    /// nothing was enqueued and no budget was touched.
    NoiseModel {
        /// The server's configured noise flavor.
        flavor: NoiseFlavor,
        /// The δ the refused request carried.
        delta: f64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Spec(e) => write!(f, "{e}"),
            ServerError::Admission(e) => write!(f, "{e}"),
            ServerError::Workload(e) => write!(f, "{e}"),
            ServerError::Core(e) => write!(f, "{e}"),
            ServerError::Shutdown => write!(f, "the serving runtime shut down"),
            ServerError::Quarantined { shape } => {
                write!(
                    f,
                    "workload shape {shape:#018x} is quarantined after crashing a worker"
                )
            }
            ServerError::Overloaded { retry_after } => {
                write!(f, "server overloaded: retry after {retry_after:?}")
            }
            ServerError::State { reason } => {
                write!(f, "durable server state failed: {reason}")
            }
            ServerError::NoiseModel { flavor, delta } => match flavor {
                NoiseFlavor::ApproxDp => write!(
                    f,
                    "this server serves approximate-DP (Gaussian) releases: \
                     submit an (ε, δ) budget with δ > 0, not δ = {delta}"
                ),
                NoiseFlavor::PureDp => write!(
                    f,
                    "this server serves pure-DP (Laplace) releases and cannot \
                     debit δ = {delta}: submit a pure ε budget"
                ),
            },
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Spec(e) => Some(e),
            ServerError::Admission(e) => Some(e),
            ServerError::Workload(e) => Some(e),
            ServerError::Core(e) => Some(e),
            ServerError::Shutdown
            | ServerError::Quarantined { .. }
            | ServerError::Overloaded { .. }
            | ServerError::State { .. }
            | ServerError::NoiseModel { .. } => None,
        }
    }
}

impl From<SpecError> for ServerError {
    fn from(e: SpecError) -> Self {
        ServerError::Spec(e)
    }
}

impl From<AdmissionError> for ServerError {
    fn from(e: AdmissionError) -> Self {
        ServerError::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrm_workload::Attribute;

    #[test]
    fn try_wait_distinguishes_in_flight_from_shutdown() {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        assert_eq!(ticket.try_wait(), None); // still in flight
        tx.send(Ok(Release {
            answers: vec![1.0],
            eps_spent: Epsilon::new(0.5).unwrap(),
            eps_remaining: 0.5,
            delta_spent: 0.0,
            delta_remaining: 0.0,
            mechanism: "test",
            expected_avg_error: 0.0,
            batch_index: 0,
            batch_size: 1,
            degraded: false,
        }))
        .unwrap();
        assert!(matches!(ticket.try_wait(), Some(Ok(_))));

        let (tx, rx) = mpsc::channel::<Result<Release, ServerError>>();
        let ticket = Ticket { rx };
        drop(tx); // runtime gone without responding
        assert_eq!(ticket.try_wait(), Some(Err(ServerError::Shutdown)));
    }

    #[test]
    fn default_seed_is_fresh_entropy_per_builder() {
        let schema = || Schema::single(Attribute::new("v", 0.0, 4.0, 4).unwrap());
        let a = ServerBuilder::new(schema(), vec![0.0; 4]);
        let b = ServerBuilder::new(schema(), vec![0.0; 4]);
        // Not the old hard-coded constant, and not shared across
        // instances: a client cannot predict the noise stream.
        assert_ne!(a.seed, 0xC0A1_E5CE);
        assert_ne!(a.seed, b.seed);
    }
}
