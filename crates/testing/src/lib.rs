#![warn(missing_docs)]

//! Deterministic fault-injection sites for the LRM workspace.
//!
//! Production crates mark interesting failure points with the
//! [`failpoint!`] macro:
//!
//! ```ignore
//! lrm_testing::failpoint!("server::worker::panic");
//! ```
//!
//! In release builds (`debug_assertions` off) the macro expands to
//! nothing, so shipping code pays zero cost. In dev/test builds every
//! hit consults a process-global registry: an *armed* site can panic or
//! stall the calling thread, letting the chaos harness (`lrm-eval`'s
//! `chaos` bin) inject worker panics, compile stalls, and torn journal
//! writes at named places without conditional compilation in the
//! production crates themselves.
//!
//! Determinism lives in the *caller*: the registry itself has no clock
//! and no RNG. A harness derives its arming choices (which site, which
//! hit ordinal, which action) from its seed, arms before a run, and
//! calls [`reset`] between runs.
//!
//! Sites that need custom behavior (e.g. a torn journal write, which
//! must corrupt bytes rather than panic) call [`triggered`] instead of
//! the macro and implement the fault themselves.
//!
//! Because the registry is process-global, tests that arm sites must
//! serialize themselves (the workspace keeps such tests in dedicated
//! integration-test binaries, one process each, guarded by a mutex).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What an armed site does to the thread that hits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site (the message always
    /// contains the substring `failpoint`, so harnesses can filter
    /// expected panics out of their panic hook).
    Panic,
    /// Sleep the calling thread for this many milliseconds — models a
    /// compile stall that a cooperative deadline must catch.
    SleepMs(u64),
    /// Perform no built-in action; only meaningful for sites that call
    /// [`triggered`] and implement the fault themselves.
    Custom,
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireRule {
    /// Fire on every hit.
    Always,
    /// Fire exactly once, on the `at`-th hit (1-based) counted from
    /// arming.
    Once {
        /// 1-based hit ordinal at which the site fires.
        at: u64,
    },
}

#[derive(Debug, Default)]
struct SiteState {
    armed: Option<(FailAction, FireRule)>,
    hits: u64,
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `site` with `action` under `rule`, resetting its hit counter.
pub fn arm(site: &str, action: FailAction, rule: FireRule) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let state = reg.entry(site.to_string()).or_default();
    state.armed = Some((action, rule));
    state.hits = 0;
    state.fired = 0;
}

/// Disarms `site` (hit counting continues).
pub fn disarm(site: &str) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = reg.get_mut(site) {
        state.armed = None;
    }
}

/// Disarms every site and clears all counters.
pub fn reset() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Number of times `site` has been hit since it was last armed (or
/// since [`reset`], whichever is later).
pub fn hits(site: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(site).map_or(0, |s| s.hits)
}

/// Number of times `site` has actually fired.
pub fn fired(site: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(site).map_or(0, |s| s.fired)
}

/// Records a hit and decides whether the site fires; returns the action
/// to perform. Shared by [`hit`] and [`triggered`].
fn evaluate(site: &str) -> Option<FailAction> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let state = reg.entry(site.to_string()).or_default();
    state.hits += 1;
    let (action, rule) = state.armed?;
    let fires = match rule {
        FireRule::Always => true,
        FireRule::Once { at } => state.hits == at,
    };
    if fires {
        state.fired += 1;
        Some(action)
    } else {
        None
    }
}

/// Records a hit on `site` and performs the armed action if it fires.
/// Called through the [`failpoint!`] macro — production code should not
/// call this directly so the release no-op gating stays in one place.
pub fn hit(site: &str) {
    match evaluate(site) {
        Some(FailAction::Panic) => panic!("failpoint '{site}' fired"),
        Some(FailAction::SleepMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(FailAction::Custom) | None => {}
    }
}

/// Records a hit on `site` and returns whether it fired, performing no
/// built-in action. For sites whose fault needs custom behavior (torn
/// writes, truncation) that the call site implements itself.
///
/// In release builds this always returns `false` without touching the
/// registry.
pub fn triggered(site: &str) -> bool {
    if cfg!(debug_assertions) {
        evaluate(site).is_some()
    } else {
        false
    }
}

/// Marks a named fault-injection site. Expands to nothing in release
/// builds; in dev/test builds, records a hit and performs the armed
/// action (panic or sleep), if any.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {{
        #[cfg(debug_assertions)]
        $crate::hit($site);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize the tests in this
    // binary so their arming choices do not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_site_is_a_counted_noop() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        failpoint!("test::noop");
        failpoint!("test::noop");
        assert_eq!(hits("test::noop"), 2);
        assert_eq!(fired("test::noop"), 0);
    }

    #[test]
    fn once_rule_fires_on_the_nth_hit_only() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("test::nth", FailAction::Custom, FireRule::Once { at: 3 });
        assert!(!triggered("test::nth"));
        assert!(!triggered("test::nth"));
        assert!(triggered("test::nth"));
        assert!(!triggered("test::nth"));
        assert_eq!(fired("test::nth"), 1);
    }

    #[test]
    fn panic_action_panics_with_filterable_message() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("test::boom", FailAction::Panic, FireRule::Always);
        let caught = std::panic::catch_unwind(|| hit("test::boom"));
        let err = caught.expect_err("armed panic site must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failpoint"), "message was {msg:?}");
        reset();
    }

    #[test]
    fn disarm_stops_firing_but_keeps_counting() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("test::off", FailAction::Custom, FireRule::Always);
        assert!(triggered("test::off"));
        disarm("test::off");
        assert!(!triggered("test::off"));
        assert_eq!(hits("test::off"), 2);
    }
}
