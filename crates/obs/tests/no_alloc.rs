//! With no subscriber installed and the flight recorder disarmed, the
//! `span!`/`event!` macros must cost one relaxed atomic load — zero
//! allocations, no field evaluation. A counting global allocator pins
//! this down; the test runs in its own binary so nothing else races
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter has no
// effect on layout or pointers.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

#[test]
fn disabled_fast_path_does_not_allocate() {
    assert!(!lrm_obs::enabled());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..1_000u64 {
        let mut guard = lrm_obs::span!("dead.span", round = round, eps = 0.5f64);
        guard.record("late", "field");
        lrm_obs::event!("dead.event", shard = 3usize, label = "x");
        lrm_obs::event!(in round; "dead.pinned", n = round);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the disabled fast path must not allocate"
    );
}
