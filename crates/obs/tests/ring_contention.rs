//! The flight-recorder ring under multi-thread contention: wraparound
//! must lose only *old* lines, never duplicate, corrupt, or leak one.

use lrm_obs::ring::Ring;
use std::collections::HashSet;
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: usize = 10_000;

fn parse(line: &str) -> (usize, usize) {
    let (t, i) = line.split_once('-').expect("well-formed line");
    (t.parse().unwrap(), i.parse().unwrap())
}

#[test]
fn contended_wraparound_keeps_lines_intact_and_unique() {
    let ring = Arc::new(Ring::new(64));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    ring.push(format!("{t}-{i}"));
                }
            });
        }
    });
    assert_eq!(ring.pushed(), (THREADS * PER_THREAD) as u64);
    let drained = ring.drain();
    assert!(!drained.is_empty(), "a full ring drains something");
    assert!(drained.len() <= ring.capacity());
    let mut seen = HashSet::new();
    for line in &drained {
        let (t, i) = parse(line);
        assert!(t < THREADS && i < PER_THREAD, "corrupt line {line:?}");
        assert!(seen.insert(line.clone()), "duplicated line {line:?}");
    }
    assert!(ring.drain().is_empty(), "drain leaves the ring empty");
}

#[test]
fn draining_while_writers_race_never_duplicates() {
    let ring = Arc::new(Ring::new(32));
    let mut collected: Vec<String> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..5_000 {
                        ring.push(format!("{t}-{i}"));
                    }
                })
            })
            .collect();
        // Drain concurrently until every writer is done.
        while !handles.iter().all(|h| h.is_finished()) {
            collected.extend(ring.drain());
        }
    });
    collected.extend(ring.drain());
    let mut seen = HashSet::new();
    for line in &collected {
        let (t, i) = parse(line);
        assert!(t < 4 && i < 5_000, "corrupt line {line:?}");
        assert!(seen.insert(line.clone()), "duplicated line {line:?}");
    }
    assert!(collected.len() as u64 <= ring.pushed());
}
