//! Flight-recorder end-to-end: arming fills the ring from the normal
//! emit path, a panic (even one contained by `catch_unwind`) dumps a
//! non-empty, parseable post-mortem, and explicit dumps drain the ring.
//! Runs in its own binary: the recorder and panic hook are process
//! globals.

use lrm_obs::flightrec;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lrm-obs-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn postmortems(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    files
}

/// Every line of a dump must be a single JSON object with a name.
fn assert_parseable(path: &Path) {
    let body = std::fs::read_to_string(path).expect("readable dump");
    assert!(!body.trim().is_empty(), "dump must be non-empty");
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"name\":"),
            "unparseable dump line: {line:?}"
        );
    }
}

#[test]
fn panics_and_explicit_dumps_leave_parseable_artifacts() {
    let dir = scratch_dir("flightrec");
    flightrec::arm(dir.clone());
    assert!(flightrec::armed());

    // Normal emission lands in the ring...
    lrm_obs::event!("lifecycle.step", stage = "submit", shard = 1usize);
    let explicit = flightrec::dump("manual").expect("armed ring with content dumps");
    assert_parseable(&explicit);
    assert_eq!(postmortems(&dir).len(), 1);

    // ...the dump drained it...
    assert!(
        flightrec::dump("empty").is_none(),
        "an empty ring must not produce an artifact"
    );

    // ...and a contained panic dumps what led up to it plus the panic
    // note itself, through the chained hook.
    lrm_obs::event!("lifecycle.step", stage = "before-crash");
    let result = std::panic::catch_unwind(|| panic!("boom for the recorder"));
    assert!(result.is_err());
    let dumps = postmortems(&dir);
    assert_eq!(dumps.len(), 2, "the panic hook must write a dump");
    let panic_dump = dumps
        .iter()
        .find(|p| p.to_string_lossy().ends_with("-panic.jsonl"))
        .expect("panic-reason artifact");
    assert_parseable(panic_dump);
    let body = std::fs::read_to_string(panic_dump).unwrap();
    assert!(
        body.contains("\"name\":\"panic\"") && body.contains("boom for the recorder"),
        "panic note must carry the message: {body}"
    );
    assert!(
        body.contains("before-crash"),
        "records emitted before the crash must survive into the dump"
    );

    // Disarmed, the ring stops accumulating and dumps refuse.
    flightrec::disarm();
    lrm_obs::event!("lifecycle.step", stage = "after-disarm");
    assert!(flightrec::dump("disarmed").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
