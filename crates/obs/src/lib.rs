//! Hand-rolled observability core for the LRM serving stack.
//!
//! The environment has no registry access, so this crate plays the role
//! `tracing` would: a [`span!`]/[`event!`] macro pair over a per-thread
//! span stack, pluggable [`Subscriber`]s (JSON-lines writer, in-memory
//! collector, null), and a lock-free bounded flight-recorder ring that a
//! panic hook dumps to `state_dir/flightrec/` so every crash leaves a
//! post-mortem artifact ([`flightrec`]).
//!
//! # Cost model
//!
//! When nothing is installed, both macros compile down to **one relaxed
//! atomic load** ([`enabled`]) and evaluate none of their field
//! expressions — no allocation, no thread-local access, no branch on
//! the emit path. The `tests/no_alloc.rs` integration test pins this
//! down with a counting global allocator.
//!
//! # The data-independence rule
//!
//! Span and event payloads must carry only **data-independent** values:
//! shapes, ranks, ε/δ, timings, counts, labels. Query answers,
//! residual vectors, and noise draws are data-dependent and publishing
//! them outside a budgeted release silently breaks the DP guarantee.
//! The [`Value`] type enforces the cheap half of this by construction —
//! there is deliberately no vector/slice variant and no `From` impl for
//! collections, so a whole answer vector *cannot* enter a payload. The
//! scalar half (don't log `residual_norm(x)`) is enforced by the
//! payload-audit test in `lrm-server`, which greps an end-to-end trace
//! for forbidden field names and any array-valued JSON.

pub mod flightrec;
pub mod json;
pub mod ring;
pub mod subscriber;

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use subscriber::{install, uninstall, JsonLines, Memory, Null, Subscriber};

/// Bit set in [`FLAGS`] while a subscriber is installed.
pub(crate) const FLAG_SUBSCRIBER: u32 = 1;
/// Bit set in [`FLAGS`] while the flight recorder is armed.
pub(crate) const FLAG_FLIGHTREC: u32 = 2;

/// The one word the disabled fast path reads. Zero means "emit nothing":
/// the macros evaluate no field expression and touch no thread-local.
pub(crate) static FLAGS: AtomicU32 = AtomicU32::new(0);

/// Whether any sink (subscriber or flight recorder) is active.
///
/// This is the single relaxed atomic check the macros gate on; callers
/// can use it to skip building expensive field values by hand.
#[inline]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// Process-wide monotonic epoch; all timestamps are nanoseconds since
/// the first observation in this process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process epoch (monotonic, never wall clock).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One counter feeds both trace and span ids so the two namespaces can
/// never collide; 0 is reserved for "no parent" / "no span".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh trace id (stable for the lifetime of a request or
/// batch; one relaxed `fetch_add`).
#[inline]
pub fn next_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A single scalar payload value.
///
/// Deliberately scalar-only: there is no array/vector variant and no
/// `From` impl for slices or `Vec`s, so data-dependent bulk values
/// (query answers, noise draws, residual vectors) cannot be logged.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter, id, size, or duration in integer units.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (ε, δ, τ, seconds); NaN/±∞ serialize as JSON `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label; static where possible to avoid allocation.
    Str(Cow<'static, str>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}
impl From<Cow<'static, str>> for Value {
    fn from(v: Cow<'static, str>) -> Self {
        Value::Str(v)
    }
}

/// A point-in-time observation inside (or outside) a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// Trace this event belongs to (0 = unattached).
    pub trace: u64,
    /// Enclosing span id (0 = none).
    pub span: u64,
    /// Static event name, dot-separated (`"batch.close"`).
    pub name: &'static str,
    /// Data-independent payload.
    pub fields: Vec<(&'static str, Value)>,
}

/// A completed span: a named interval with a parent and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Start, nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id (0 = root of its trace).
    pub parent: u64,
    /// Static span name, dot-separated (`"batch.compile"`).
    pub name: &'static str,
    /// Data-independent payload (start-time fields plus any added via
    /// [`SpanGuard::record`]).
    pub fields: Vec<(&'static str, Value)>,
}

/// What subscribers receive: either a completed span or an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span (emitted when its guard drops).
    Span(SpanRecord),
    /// A point-in-time event.
    Event(Event),
}

impl Record {
    /// The span or event name.
    pub fn name(&self) -> &'static str {
        match self {
            Record::Span(s) => s.name,
            Record::Event(e) => e.name,
        }
    }

    /// The trace id.
    pub fn trace(&self) -> u64 {
        match self {
            Record::Span(s) => s.trace,
            Record::Event(e) => e.trace,
        }
    }

    /// The payload fields.
    pub fn fields(&self) -> &[(&'static str, Value)] {
        match self {
            Record::Span(s) => &s.fields,
            Record::Event(e) => &e.fields,
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

thread_local! {
    /// Per-thread stack of `(trace, span)` for parent inheritance.
    /// Only touched while [`enabled`] — the disabled fast path never
    /// initializes it.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// An open span in flight on this thread.
#[derive(Debug)]
struct ActiveSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, Value)>,
}

/// RAII guard for an open span; emits the [`SpanRecord`] on drop.
///
/// A disabled guard (created while [`enabled`] was false) is inert: it
/// holds nothing, records nothing, and drops for free.
#[derive(Debug)]
#[must_use = "dropping a span guard immediately closes the span"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The inert guard the macros return on the disabled fast path.
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }

    /// Adds a field discovered after the span opened (e.g. a compile's
    /// cache outcome). No-op on a disabled guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(active) = &mut self.0 {
            active.fields.push((key, value.into()));
        }
    }

    /// The trace id this span belongs to, if the guard is live.
    pub fn trace(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.trace)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        // Pop this span (and anything leaked above it) off the stack.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&e| e == (active.trace, active.span)) {
                s.truncate(pos);
            }
        });
        let record = Record::Span(SpanRecord {
            ts_ns: active.start_ns,
            dur_ns: now_ns().saturating_sub(active.start_ns),
            trace: active.trace,
            span: active.span,
            parent: active.parent,
            name: active.name,
            fields: active.fields,
        });
        dispatch(&record);
    }
}

/// Opens a span. Prefer the [`span!`] macro, which skips field
/// evaluation entirely when disabled.
///
/// `trace`: `Some(id)` pins the span to an existing trace (parenting to
/// the thread's current span only if that span shares the trace);
/// `None` inherits the thread's current trace/span, or starts a fresh
/// trace at the root.
pub fn start_span(
    name: &'static str,
    trace: Option<u64>,
    fields: Vec<(&'static str, Value)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let top = STACK.with(|s| s.borrow().last().copied());
    let (trace, parent) = match trace {
        Some(t) => match top {
            Some((tt, ts)) if tt == t => (t, ts),
            _ => (t, 0),
        },
        None => match top {
            Some((tt, ts)) => (tt, ts),
            None => (next_trace_id(), 0),
        },
    };
    let span = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push((trace, span)));
    SpanGuard(Some(ActiveSpan {
        trace,
        span,
        parent,
        name,
        start_ns: now_ns(),
        fields,
    }))
}

/// Emits an event. Prefer the [`event!`] macro, which skips field
/// evaluation entirely when disabled.
///
/// `trace` semantics match [`start_span`]: `Some(id)` attaches to that
/// trace (with the thread's current span as context only if it shares
/// the trace), `None` inherits the thread's current position.
pub fn emit_event(name: &'static str, trace: Option<u64>, fields: Vec<(&'static str, Value)>) {
    if !enabled() {
        return;
    }
    let top = STACK.with(|s| s.borrow().last().copied());
    let (trace, span) = match trace {
        Some(t) => match top {
            Some((tt, ts)) if tt == t => (t, ts),
            _ => (t, 0),
        },
        None => match top {
            Some((tt, ts)) => (tt, ts),
            None => (0, 0),
        },
    };
    let record = Record::Event(Event {
        ts_ns: now_ns(),
        trace,
        span,
        name,
        fields,
    });
    dispatch(&record);
}

/// Routes a finished record to the flight recorder (first — it must see
/// everything the subscriber sees, so panic dumps are complete) and
/// then the installed subscriber, if any.
pub(crate) fn dispatch(record: &Record) {
    flightrec::record(record);
    subscriber::dispatch(record);
}

/// Opens a span and returns its [`SpanGuard`].
///
/// ```
/// let mut g = lrm_obs::span!("batch.compile", shard = 3usize, rows = 128u64);
/// g.record("cache", "miss");
/// drop(g);
/// ```
///
/// `span!(in trace_id; "name", k = v, ...)` pins the span to an
/// existing trace. When nothing is installed this is one relaxed load;
/// field expressions are not evaluated.
#[macro_export]
macro_rules! span {
    (in $trace:expr; $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::start_span(
                $name,
                Some($trace),
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::start_span(
                $name,
                None,
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Emits a point-in-time event.
///
/// ```
/// lrm_obs::event!("request.submit", shard = 0usize, eps = 0.5f64);
/// ```
///
/// `event!(in trace_id; "name", k = v, ...)` attaches the event to an
/// existing trace. When nothing is installed this is one relaxed load;
/// field expressions are not evaluated.
#[macro_export]
macro_rules! event {
    (in $trace:expr; $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit_event(
                $name,
                Some($trace),
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            );
        }
    };
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit_event(
                $name,
                None,
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard};

    /// The subscriber registry is process-global, so tests that install
    /// one serialize on this lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_memory() -> (MutexGuard<'static, ()>, Arc<Memory>) {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mem = Arc::new(Memory::default());
        install(mem.clone());
        (guard, mem)
    }

    #[test]
    fn spans_nest_and_events_inherit_context() {
        let (_guard, mem) = with_memory();
        {
            let outer = span!("outer", a = 1u64);
            let outer_trace = outer.trace().unwrap();
            {
                let _inner = span!("inner");
                event!("inside", b = 2u64);
            }
            event!(in outer_trace; "pinned");
        }
        uninstall();
        let records = mem.records();
        let names: Vec<_> = records.iter().map(|r| r.name()).collect();
        // Inner closes before outer; events land when emitted.
        assert_eq!(names, vec!["inside", "inner", "pinned", "outer"]);
        let trace = records[3].trace();
        assert!(records.iter().all(|r| r.trace() == trace));
        // The event inside `inner` points at `inner`'s span id.
        let (inner, inside, outer) = (&records[1], &records[0], &records[3]);
        let (Record::Span(inner), Record::Event(inside), Record::Span(outer)) =
            (inner, inside, outer)
        else {
            panic!("unexpected record kinds");
        };
        assert_eq!(inside.span, inner.span);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.fields, vec![("a", Value::U64(1))]);
    }

    #[test]
    fn explicit_trace_does_not_parent_across_traces() {
        let (_guard, mem) = with_memory();
        let foreign = next_trace_id();
        {
            let _outer = span!("outer");
            let _pinned = span!(in foreign; "pinned");
        }
        uninstall();
        let records = mem.records();
        let Record::Span(pinned) = &records[0] else {
            panic!("expected span");
        };
        assert_eq!(pinned.trace, foreign);
        assert_eq!(pinned.parent, 0, "a foreign trace cannot parent this span");
    }

    #[test]
    fn late_fields_are_recorded() {
        let (_guard, mem) = with_memory();
        {
            let mut g = span!("compile");
            g.record("cache", "miss");
        }
        uninstall();
        let records = mem.records();
        assert_eq!(
            records[0].field("cache"),
            Some(&Value::Str(std::borrow::Cow::Borrowed("miss")))
        );
    }

    #[test]
    fn disabled_macros_are_inert() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let mut evaluated = false;
        {
            let _g = span!(
                "dead",
                x = {
                    evaluated = true;
                    1u64
                }
            );
            event!(
                "dead.event",
                y = {
                    evaluated = true;
                    2u64
                }
            );
        }
        assert!(!evaluated, "disabled macros must not evaluate fields");
    }

    #[test]
    fn uninstall_preserves_flightrec_flag() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        FLAGS.fetch_or(FLAG_FLIGHTREC, Ordering::SeqCst);
        install(Arc::new(Null));
        uninstall();
        assert!(enabled(), "flight recorder must survive uninstall");
        FLAGS.fetch_and(!FLAG_FLIGHTREC, Ordering::SeqCst);
        assert!(!enabled());
    }
}
