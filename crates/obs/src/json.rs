//! Minimal JSON writing helpers — enough to serialize [`Record`]s as
//! JSON lines and for `lrm-server`'s exposition endpoints to reuse,
//! with no serde dependency on the panic path.

use crate::{Record, Value};

/// Appends `s` as a JSON string (with surrounding quotes) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` (shortest round-trip form) or `null` for
/// NaN/±∞ — JSON has no representation for the latter.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Appends one payload [`Value`].
pub fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => push_f64(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => push_str(out, s),
    }
}

fn push_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push_str(",\"f\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, k);
        out.push(':');
        push_value(out, v);
    }
    out.push('}');
}

/// Serializes one record as a single JSON object (no trailing newline).
///
/// Spans: `{"t":"span","name":…,"trace":…,"span":…,"parent":…,
/// "ts_ns":…,"dur_ns":…,"f":{…}}`; events drop `parent`/`dur_ns`.
pub fn record_line(record: &Record) -> String {
    let mut out = String::with_capacity(128);
    match record {
        Record::Span(s) => {
            out.push_str("{\"t\":\"span\",\"name\":");
            push_str(&mut out, s.name);
            out.push_str(&format!(
                ",\"trace\":{},\"span\":{},\"parent\":{},\"ts_ns\":{},\"dur_ns\":{}",
                s.trace, s.span, s.parent, s.ts_ns, s.dur_ns
            ));
            push_fields(&mut out, &s.fields);
        }
        Record::Event(e) => {
            out.push_str("{\"t\":\"event\",\"name\":");
            push_str(&mut out, e.name);
            out.push_str(&format!(
                ",\"trace\":{},\"span\":{},\"ts_ns\":{}",
                e.trace, e.span, e.ts_ns
            ));
            push_fields(&mut out, &e.fields);
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, SpanRecord};
    use std::borrow::Cow;

    #[test]
    fn escapes_and_formats() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        let mut out = String::new();
        push_f64(&mut out, 0.5);
        assert_eq!(out, "0.5");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn record_lines_are_json_objects() {
        let span = Record::Span(SpanRecord {
            ts_ns: 5,
            dur_ns: 10,
            trace: 1,
            span: 2,
            parent: 0,
            name: "batch.serve",
            fields: vec![
                ("shard", Value::U64(3)),
                ("label", Value::Str(Cow::Borrowed("x"))),
            ],
        });
        assert_eq!(
            record_line(&span),
            r#"{"t":"span","name":"batch.serve","trace":1,"span":2,"parent":0,"ts_ns":5,"dur_ns":10,"f":{"shard":3,"label":"x"}}"#
        );
        let event = Record::Event(Event {
            ts_ns: 7,
            trace: 1,
            span: 2,
            name: "request.submit",
            fields: vec![("eps", Value::F64(0.25))],
        });
        assert_eq!(
            record_line(&event),
            r#"{"t":"event","name":"request.submit","trace":1,"span":2,"ts_ns":7,"f":{"eps":0.25}}"#
        );
    }
}
