//! Pluggable record sinks and the process-global registry.

use crate::{json, Record, FLAGS, FLAG_SUBSCRIBER};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};

/// A sink for finished [`Record`]s. Implementations must tolerate
/// concurrent calls from every serving thread.
pub trait Subscriber: Send + Sync {
    /// Receives one completed span or event.
    fn on_record(&self, record: &Record);
    /// Flushes any buffered output (called by [`uninstall`]).
    fn flush(&self) {}
}

/// The single installed subscriber. One global (not a list): the serving
/// stack needs exactly one trace sink at a time, and a single
/// `Option<Arc>` keeps the dispatch path at one clone under a read lock.
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

fn registry_write() -> std::sync::RwLockWriteGuard<'static, Option<Arc<dyn Subscriber>>> {
    SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner())
}

/// Installs `subscriber` as the process-global sink, replacing (and
/// flushing) any previous one, and turns the macros' fast path on.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    let previous = registry_write().replace(subscriber);
    FLAGS.fetch_or(FLAG_SUBSCRIBER, Ordering::SeqCst);
    if let Some(previous) = previous {
        previous.flush();
    }
}

/// Removes and flushes the installed subscriber, returning it. The
/// flight-recorder flag (if armed) is left untouched.
pub fn uninstall() -> Option<Arc<dyn Subscriber>> {
    FLAGS.fetch_and(!FLAG_SUBSCRIBER, Ordering::SeqCst);
    let previous = registry_write().take();
    if let Some(previous) = &previous {
        previous.flush();
    }
    previous
}

/// Hands `record` to the installed subscriber, if any. The Arc is
/// cloned out from under the read lock so a slow sink never blocks
/// install/uninstall.
pub(crate) fn dispatch(record: &Record) {
    if FLAGS.load(Ordering::Relaxed) & FLAG_SUBSCRIBER == 0 {
        return;
    }
    let subscriber = match SUBSCRIBER.read() {
        Ok(guard) => guard.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    if let Some(subscriber) = subscriber {
        subscriber.on_record(record);
    }
}

/// Writes one JSON object per record to `W` — the format documented at
/// [`json::record_line`].
#[derive(Debug)]
pub struct JsonLines<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// A JSON-lines subscriber over `writer`.
    pub fn new(writer: W) -> JsonLines<W> {
        JsonLines {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> Subscriber for JsonLines<W> {
    fn on_record(&self, record: &Record) {
        let mut line = json::record_line(record);
        line.push('\n');
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Tracing must never take the serving path down with it.
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.flush();
    }
}

/// Collects records in memory; the test-suite sink.
#[derive(Debug, Default)]
pub struct Memory {
    records: Mutex<Vec<Record>>,
}

impl Memory {
    /// A snapshot of everything received so far.
    pub fn records(&self) -> Vec<Record> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Takes everything received so far, leaving the collector empty.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Subscriber for Memory {
    fn on_record(&self, record: &Record) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

/// Accepts and discards everything. Useful for measuring the cost of
/// the *enabled* path (field evaluation + serialization-free dispatch)
/// against a real sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct Null;

impl Subscriber for Null {
    fn on_record(&self, _record: &Record) {}
}
