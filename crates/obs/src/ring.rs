//! Lock-free bounded ring of recent JSON lines.
//!
//! Writers claim a slot with one `fetch_add` and publish with one
//! pointer `swap`; the loser of a lap simply overwrites the oldest
//! entry. [`Ring::drain`] takes each slot with `swap(null)`, so it owns
//! whatever it got exclusively even while writers keep pushing — safe
//! to call from a panic hook with worker threads still live.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A fixed-capacity, lock-free, multi-producer ring of `String`s.
#[derive(Debug)]
pub struct Ring {
    slots: Box<[AtomicPtr<String>]>,
    cursor: AtomicU64,
}

impl Ring {
    /// A ring holding the most recent `capacity` (> 0) lines.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total lines ever pushed (≥ lines currently held; the difference
    /// is what overwriting dropped).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends a line, overwriting the oldest once full. Lock-free:
    /// one `fetch_add` plus one pointer `swap`.
    pub fn push(&self, line: String) {
        let slot = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let fresh = Box::into_raw(Box::new(line));
        let old = self.slots[slot].swap(fresh, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: `swap` transferred exclusive ownership of `old`
            // to us; it was created by `Box::into_raw` in a prior push.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Takes every held line, oldest-first (best effort under
    /// concurrent pushes), leaving the ring empty.
    pub fn drain(&self) -> Vec<String> {
        let len = self.slots.len();
        let start = (self.cursor.load(Ordering::Acquire) as usize) % len;
        let mut out = Vec::new();
        for i in 0..len {
            let slot = (start + i) % len;
            let ptr = self.slots[slot].swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                // SAFETY: the swap gave us exclusive ownership; the
                // pointer came from `Box::into_raw` in `push`.
                out.push(*unsafe { Box::from_raw(ptr) });
            }
        }
        out
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_lines_in_order() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(format!("line-{i}"));
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.drain(), vec!["line-6", "line-7", "line-8", "line-9"]);
        assert!(ring.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn partial_fill_drains_without_gaps() {
        let ring = Ring::new(8);
        ring.push("a".into());
        ring.push("b".into());
        assert_eq!(ring.drain(), vec!["a", "b"]);
    }
}
