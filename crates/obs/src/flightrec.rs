//! The flight recorder: a process-global [`Ring`] of the most recent
//! records, dumped to `dir/postmortem-*.jsonl` by a chained panic hook
//! so every crash — including worker panics contained by
//! `catch_unwind` — leaves a parseable post-mortem artifact.
//!
//! The panic hook runs at panic *initiation*, before unwinding, so the
//! dump holds every record emitted up to the failure plus a synthetic
//! `"panic"` event carrying the location and message. The panic message
//! is the one free-form field in the whole tracing surface; it mirrors
//! exactly what the default hook already prints to stderr.

use crate::ring::Ring;
use crate::{json, Record, Value, FLAGS, FLAG_FLIGHTREC};
use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Once, OnceLock, RwLock};

/// Records retained for a post-mortem. Sized to hold several batches'
/// worth of lifecycle records at smoke-test scale.
pub const DEFAULT_CAPACITY: usize = 1024;

static RING: OnceLock<Ring> = OnceLock::new();
static DIR: RwLock<Option<PathBuf>> = RwLock::new(None);
static HOOK: Once = Once::new();
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn dir_write() -> std::sync::RwLockWriteGuard<'static, Option<PathBuf>> {
    DIR.write().unwrap_or_else(|e| e.into_inner())
}

/// Arms the flight recorder: records start accumulating in the ring and
/// a chained panic hook dumps them to `dir` (created on demand) on any
/// panic in the process. Re-arming retargets `dir`; the hook installs
/// once and stays for the process lifetime (it is inert while
/// disarmed). Hooks installed earlier — e.g. a harness suppressing
/// expected-failpoint noise — still run, after the dump is written.
pub fn arm(dir: PathBuf) {
    RING.get_or_init(|| Ring::new(DEFAULT_CAPACITY));
    *dir_write() = Some(dir);
    FLAGS.fetch_or(FLAG_FLIGHTREC, Ordering::SeqCst);
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            note_panic(info);
            let _ = dump("panic");
            previous(info);
        }));
    });
}

/// Stops recording (the hook stays installed but finds nothing armed).
pub fn disarm() {
    FLAGS.fetch_and(!FLAG_FLIGHTREC, Ordering::SeqCst);
    *dir_write() = None;
}

/// Whether the recorder is currently armed.
pub fn armed() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_FLIGHTREC != 0
}

/// Pushes a record into the ring when armed. Called on every dispatch.
pub(crate) fn record(record: &Record) {
    if !armed() {
        return;
    }
    if let Some(ring) = RING.get() {
        ring.push(json::record_line(record));
    }
}

/// Appends a synthetic event for the panic itself so a dump is never
/// empty, even when the crash precedes the first traced record.
fn note_panic(info: &std::panic::PanicHookInfo<'_>) {
    if !armed() {
        return;
    }
    let Some(ring) = RING.get() else { return };
    let mut fields: Vec<(&'static str, Value)> = Vec::with_capacity(3);
    if let Some(location) = info.location() {
        fields.push(("file", Value::Str(Cow::Owned(location.file().to_string()))));
        fields.push(("line", Value::U64(u64::from(location.line()))));
    }
    let message = info
        .payload()
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| info.payload().downcast_ref::<String>().cloned());
    if let Some(message) = message {
        fields.push(("msg", Value::Str(Cow::Owned(message))));
    }
    let record = Record::Event(crate::Event {
        ts_ns: crate::now_ns(),
        trace: 0,
        span: 0,
        name: "panic",
        fields,
    });
    ring.push(json::record_line(&record));
}

/// Drains the ring into `dir/postmortem-<pid>-<seq>-<reason>.jsonl` and
/// returns the path. `None` when disarmed, the ring is empty, or any
/// file operation fails — a dump must never raise from a panic hook.
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !armed() {
        return None;
    }
    let dir = DIR.read().unwrap_or_else(|e| e.into_inner()).clone()?;
    let lines = RING.get()?.drain();
    if lines.is_empty() {
        return None;
    }
    std::fs::create_dir_all(&dir).ok()?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::SeqCst);
    let path = dir.join(format!(
        "postmortem-{}-{}-{}.jsonl",
        std::process::id(),
        seq,
        reason
    ));
    let mut body = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    std::fs::write(&path, body).ok()?;
    Some(path)
}
