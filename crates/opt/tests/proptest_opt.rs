//! Property-based tests for the optimization toolkit.

use lrm_linalg::Matrix;
use lrm_opt::{nesterov_projected, project_columns_l1, project_l1_ball, NesterovConfig, SmoothMax};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection output is feasible, idempotent, and no farther from the
    /// input than any sampled feasible point (optimality certificate by
    /// the obtuse-angle criterion).
    #[test]
    fn l1_projection_properties(
        v in proptest::collection::vec(-20.0f64..20.0, 1..12),
        radius in 0.1f64..10.0,
    ) {
        let mut p = v.clone();
        project_l1_ball(&mut p, radius);
        let norm1: f64 = p.iter().map(|x| x.abs()).sum();
        prop_assert!(norm1 <= radius + 1e-9, "infeasible: {norm1} > {radius}");

        // Idempotence up to round-off (the first projection can land a few
        // ulps outside the ball, making the second one a near-no-op).
        let mut pp = p.clone();
        project_l1_ball(&mut pp, radius);
        for (a, b) in p.iter().zip(pp.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "projection not idempotent: {a} vs {b}");
        }

        // Optimality: ⟨v − p, q − p⟩ ≤ 0 for feasible q (here: vertices
        // of the ball — the extreme points suffice for polytopes).
        for i in 0..v.len() {
            for &sign in &[1.0, -1.0] {
                let mut q = vec![0.0; v.len()];
                q[i] = sign * radius;
                let inner: f64 = v
                    .iter()
                    .zip(p.iter())
                    .zip(q.iter())
                    .map(|((vi, pi), qi)| (vi - pi) * (qi - pi))
                    .sum();
                prop_assert!(inner <= 1e-7, "obtuse-angle violated: {inner}");
            }
        }
    }

    /// Projection never increases the norm and shrinkage is monotone in
    /// the radius.
    #[test]
    fn l1_projection_monotone_in_radius(
        v in proptest::collection::vec(-20.0f64..20.0, 1..10),
        r1 in 0.1f64..5.0,
        dr in 0.0f64..5.0,
    ) {
        let r2 = r1 + dr;
        let mut p1 = v.clone();
        project_l1_ball(&mut p1, r1);
        let mut p2 = v.clone();
        project_l1_ball(&mut p2, r2);
        let n1: f64 = p1.iter().map(|x| x.abs()).sum();
        let n2: f64 = p2.iter().map(|x| x.abs()).sum();
        prop_assert!(n1 <= n2 + 1e-9);
    }

    /// Column projection makes every column feasible and leaves already
    /// feasible columns untouched.
    #[test]
    fn column_projection_feasible(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut l = Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        });
        let before = l.clone();
        project_columns_l1(&mut l, 1.0);
        for (j, sum) in l.col_abs_sums().iter().enumerate() {
            prop_assert!(*sum <= 1.0 + 1e-9, "column {j} infeasible: {sum}");
        }
        for j in 0..cols {
            let before_sum: f64 = before.col(j).iter().map(|x| x.abs()).sum();
            if before_sum <= 1.0 {
                prop_assert_eq!(l.col(j), before.col(j), "feasible column {} changed", j);
            }
        }
    }

    /// Nesterov on a strongly convex quadratic converges to the projected
    /// target (which is the constrained optimum).
    #[test]
    fn nesterov_finds_projected_target(
        rows in 1usize..4,
        cols in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let c = Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
        });
        let mut expected = c.clone();
        project_columns_l1(&mut expected, 1.0);
        let result = nesterov_projected(
            |x| 0.5 * (x - &c).squared_sum(),
            |x| x - &c,
            |x| { project_columns_l1(x, 1.0); },
            Matrix::zeros(rows, cols),
            &NesterovConfig { max_iters: 500, ..NesterovConfig::default() },
        );
        prop_assert!(
            result.x.approx_eq(&expected, 1e-4),
            "Nesterov result differs from projection"
        );
    }

    /// Smooth max brackets the true max uniformly.
    #[test]
    fn smooth_max_brackets(
        v in proptest::collection::vec(-100.0f64..100.0, 1..20),
        mu in 0.01f64..2.0,
    ) {
        let sm = SmoothMax::new(mu);
        let f = sm.value(&v);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(f >= max - 1e-9);
        prop_assert!(f <= max + mu * (v.len() as f64).ln() + 1e-9);
        // Gradient is a probability vector.
        let g = sm.gradient(&v);
        let sum: f64 = g.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(g.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }
}
