//! Euclidean projection onto the L1 ball.
//!
//! This is the projection step of the paper's Algorithm 2 (Formula 11):
//! the constraint set `∀j Σ_i |L_ij| ≤ 1` is a product of per-column L1
//! balls, so projecting `L` amounts to `n` independent r-dimensional
//! projections. The algorithm is the sort-based method of Duchi,
//! Shalev-Shwartz, Singer & Chandra (ICML 2008) — the paper's ref \[10\] —
//! running in `O(r log r)` per column.

use lrm_linalg::Matrix;

/// Projects `v` in place onto the L1 ball of the given `radius`:
/// `argmin_w ‖w − v‖₂ s.t. ‖w‖₁ ≤ radius`.
///
/// Returns `true` when the input was already feasible (no change made).
///
/// # Panics
/// Panics if `radius` is negative or NaN.
pub fn project_l1_ball(v: &mut [f64], radius: f64) -> bool {
    assert!(
        radius >= 0.0 && radius.is_finite(),
        "L1 ball radius must be non-negative and finite, got {radius}"
    );
    let norm1: f64 = v.iter().map(|x| x.abs()).sum();
    if norm1 <= radius {
        return true;
    }
    if radius == 0.0 {
        v.iter_mut().for_each(|x| *x = 0.0);
        return false;
    }

    // Duchi et al.: sort |v| descending, find the pivot rho, soft-threshold.
    let mut mags: Vec<f64> = v.iter().map(|x| x.abs()).collect();
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaN in projection input"));
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    for (j, &u) in mags.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - radius) / (j as f64 + 1.0);
        if u - candidate > 0.0 {
            theta = candidate;
        } else {
            break;
        }
    }
    for x in v.iter_mut() {
        let mag = (x.abs() - theta).max(0.0);
        *x = mag.copysign(*x);
    }
    false
}

/// Projects every **column** of `l` onto the L1 ball of the given radius —
/// the full constraint set of Formula (7)/(8) in the paper.
///
/// Returns the number of columns that required projection.
pub fn project_columns_l1(l: &mut Matrix, radius: f64) -> usize {
    let (rows, cols) = l.shape();
    let mut col_buf = vec![0.0; rows];
    let mut projected = 0;
    for j in 0..cols {
        for i in 0..rows {
            col_buf[i] = l.get(i, j);
        }
        if !project_l1_ball(&mut col_buf, radius) {
            projected += 1;
            l.set_col(j, &col_buf);
        }
    }
    projected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm1(v: &[f64]) -> f64 {
        v.iter().map(|x| x.abs()).sum()
    }

    #[test]
    fn feasible_point_untouched() {
        let mut v = vec![0.2, -0.3, 0.1];
        let orig = v.clone();
        assert!(project_l1_ball(&mut v, 1.0));
        assert_eq!(v, orig);
    }

    #[test]
    fn projection_lands_on_boundary() {
        let mut v = vec![3.0, -4.0, 1.0];
        assert!(!project_l1_ball(&mut v, 1.0));
        assert!((norm1(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preserves_signs_and_order() {
        // θ = 3.5 here, so the result is (1.5, -0.5, 0).
        let mut v = vec![5.0, -4.0, 0.5];
        project_l1_ball(&mut v, 2.0);
        assert!((v[0] - 1.5).abs() < 1e-12);
        assert!((v[1] + 0.5).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
        assert!(v[0] > 0.0 && v[1] < 0.0); // signs preserved
        assert!(v[0] >= -v[1]); // larger magnitude stays larger
    }

    #[test]
    fn known_projection() {
        // Project (2, 0) onto the unit L1 ball → (1, 0).
        let mut v = vec![2.0, 0.0];
        project_l1_ball(&mut v, 1.0);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(v[1], 0.0);

        // Project (1, 1) onto the unit L1 ball → (0.5, 0.5).
        let mut w = vec![1.0, 1.0];
        project_l1_ball(&mut w, 1.0);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_zeroes_vector() {
        let mut v = vec![1.0, -2.0];
        project_l1_ball(&mut v, 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn sparsifies_small_entries() {
        // Soft-thresholding drives small coordinates to exactly zero.
        let mut v = vec![10.0, 0.01, -0.02];
        project_l1_ball(&mut v, 1.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_in_2d() {
        // Dense grid search over the ball boundary/interior as an oracle.
        let targets = [
            [1.7, 0.3],
            [-0.9, 2.4],
            [0.2, -0.1],
            [3.0, 3.0],
            [-1.0, -1.0],
        ];
        for t in targets {
            let mut v = t.to_vec();
            project_l1_ball(&mut v, 1.0);
            let proj_dist = (v[0] - t[0]).powi(2) + (v[1] - t[1]).powi(2);
            // Oracle: sample candidate feasible points.
            let steps = 400;
            let mut best = f64::INFINITY;
            for i in 0..=steps {
                let a = -1.0 + 2.0 * i as f64 / steps as f64;
                for j in 0..=steps {
                    let b = -1.0 + 2.0 * j as f64 / steps as f64;
                    if a.abs() + b.abs() <= 1.0 {
                        let d = (a - t[0]).powi(2) + (b - t[1]).powi(2);
                        best = best.min(d);
                    }
                }
            }
            assert!(
                proj_dist <= best + 1e-4,
                "projection of {t:?} not optimal: {proj_dist} vs oracle {best}"
            );
        }
    }

    #[test]
    fn idempotent() {
        let mut v = vec![4.0, -2.0, 7.0, 0.0, -1.0];
        project_l1_ball(&mut v, 1.5);
        let once = v.clone();
        assert!(project_l1_ball(&mut v, 1.5));
        assert_eq!(v, once);
    }

    #[test]
    fn column_projection() {
        let mut l = Matrix::from_rows(&[&[2.0, 0.1], &[2.0, 0.2]]);
        let changed = project_columns_l1(&mut l, 1.0);
        assert_eq!(changed, 1); // only column 0 was infeasible
        let sums = l.col_abs_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        let mut v = vec![1.0];
        project_l1_ball(&mut v, -1.0);
    }
}
