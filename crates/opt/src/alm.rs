//! Penalty and multiplier scheduling for the inexact Augmented Lagrangian
//! method — the outer loop of the paper's **Algorithm 1**.
//!
//! Algorithm 1 handles the coupling constraint `W = B·L` by minimizing
//!
//! ```text
//! J(B, L, π, β) = ½·tr(BᵀB) + ⟨π, W − BL⟩ + β/2·‖W − BL‖²_F
//! ```
//!
//! and, after each (approximate) subproblem solve:
//!
//! * doubling `β` every 10 outer iterations (line 10-11),
//! * updating the multiplier `π ← π + β·(W − BL)` with the **new** β
//!   (line 12).
//!
//! This module owns that bookkeeping; the subproblem solves live in
//! `lrm-core`.

use lrm_linalg::Matrix;

/// The β growth schedule of Algorithm 1.
#[derive(Debug, Clone)]
pub struct AlmSchedule {
    /// Initial penalty `β(0)`; the paper uses 1.
    pub beta0: f64,
    /// Multiplicative growth factor; the paper uses 2.
    pub growth: f64,
    /// Outer iterations between growth events; the paper uses 10
    /// ("if k is divisible by 10").
    pub period: usize,
    /// Stop once β reaches this value ("β is sufficiently large").
    pub beta_max: f64,
}

impl Default for AlmSchedule {
    fn default() -> Self {
        Self {
            beta0: 1.0,
            growth: 2.0,
            period: 10,
            beta_max: 1e10,
        }
    }
}

impl AlmSchedule {
    /// Validates the schedule parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta0 > 0.0 && self.beta0.is_finite()) {
            return Err(format!(
                "beta0 must be positive and finite, got {}",
                self.beta0
            ));
        }
        if !(self.growth > 1.0 && self.growth.is_finite()) {
            return Err(format!("growth must exceed 1, got {}", self.growth));
        }
        if self.period == 0 {
            return Err("period must be at least 1".into());
        }
        if self.beta_max <= self.beta0 {
            return Err(format!(
                "beta_max ({}) must exceed beta0 ({})",
                self.beta_max, self.beta0
            ));
        }
        Ok(())
    }
}

/// Mutable ALM state: penalty β, multiplier π, outer iteration counter.
#[derive(Debug, Clone)]
pub struct AlmState {
    beta: f64,
    multiplier: Matrix,
    iteration: usize,
    schedule: AlmSchedule,
}

impl AlmState {
    /// Fresh state with `π(0) = 0` (Algorithm 1, line 1).
    pub fn new(rows: usize, cols: usize, schedule: AlmSchedule) -> Result<Self, String> {
        schedule.validate()?;
        Ok(Self {
            beta: schedule.beta0,
            multiplier: Matrix::zeros(rows, cols),
            iteration: 1, // the paper starts at k = 1
            schedule,
        })
    }

    /// State resuming from a caller-supplied multiplier instead of
    /// `π(0) = 0` — the ALM warm start. With exact inner solves the
    /// trajectory depends only on `(β, π)`, so reusing a seed's KKT
    /// multiplier (for the paper's Lagrangian, `π` solves `B = π·Lᵀ` at
    /// the optimum) is what actually resumes a previous run; a `(B, L)`
    /// seed alone would be forgotten by the first β₀ subproblem solve.
    pub fn with_multiplier(multiplier: Matrix, schedule: AlmSchedule) -> Result<Self, String> {
        schedule.validate()?;
        if multiplier.as_slice().iter().any(|x| !x.is_finite()) {
            return Err("warm-start multiplier must be finite".into());
        }
        Ok(Self {
            beta: schedule.beta0,
            multiplier,
            iteration: 1,
            schedule,
        })
    }

    /// Current penalty β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Current multiplier π.
    pub fn multiplier(&self) -> &Matrix {
        &self.multiplier
    }

    /// Current outer iteration `k` (1-based as in the paper).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// True once β has reached the schedule's cap.
    pub fn beta_saturated(&self) -> bool {
        self.beta >= self.schedule.beta_max
    }

    /// Runs lines 10–13 of Algorithm 1 after an (approximate) subproblem
    /// solve: grows β when `k` is divisible by the period, updates the
    /// multiplier with the new β, and increments `k`.
    ///
    /// `residual` is `W − B(k)·L(k)`.
    pub fn advance(&mut self, residual: &Matrix) {
        if self.iteration.is_multiple_of(self.schedule.period) {
            self.beta = (self.beta * self.schedule.growth).min(self.schedule.beta_max);
        }
        self.multiplier
            .axpy(self.beta, residual)
            .expect("ALM residual must match multiplier shape");
        self.iteration += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_doubles_on_schedule() {
        let mut state = AlmState::new(1, 1, AlmSchedule::default()).unwrap();
        let zero = Matrix::zeros(1, 1);
        // k = 1..9: no growth (k not divisible by 10).
        for _ in 1..10 {
            state.advance(&zero);
            assert_eq!(state.beta(), 1.0);
        }
        // k = 10: doubles.
        state.advance(&zero);
        assert_eq!(state.beta(), 2.0);
        // k = 11..19: stays.
        for _ in 11..20 {
            state.advance(&zero);
        }
        assert_eq!(state.beta(), 2.0);
        state.advance(&zero); // k = 20
        assert_eq!(state.beta(), 4.0);
    }

    #[test]
    fn beta_capped() {
        let sched = AlmSchedule {
            beta0: 1.0,
            growth: 10.0,
            period: 1,
            beta_max: 50.0,
        };
        let mut state = AlmState::new(1, 1, sched).unwrap();
        let zero = Matrix::zeros(1, 1);
        for _ in 0..10 {
            state.advance(&zero);
        }
        assert_eq!(state.beta(), 50.0);
        assert!(state.beta_saturated());
    }

    #[test]
    fn multiplier_accumulates_with_new_beta() {
        // With period 1 the growth happens *before* the π update, so the
        // first update uses β = 2.
        let sched = AlmSchedule {
            beta0: 1.0,
            growth: 2.0,
            period: 1,
            beta_max: 1e10,
        };
        let mut state = AlmState::new(1, 1, sched).unwrap();
        let residual = Matrix::filled(1, 1, 3.0);
        state.advance(&residual);
        assert_eq!(state.multiplier().get(0, 0), 6.0); // 2 · 3
        state.advance(&residual);
        assert_eq!(state.multiplier().get(0, 0), 6.0 + 4.0 * 3.0);
    }

    #[test]
    fn invalid_schedules_rejected() {
        assert!(AlmSchedule {
            beta0: 0.0,
            ..AlmSchedule::default()
        }
        .validate()
        .is_err());
        assert!(AlmSchedule {
            growth: 1.0,
            ..AlmSchedule::default()
        }
        .validate()
        .is_err());
        assert!(AlmSchedule {
            period: 0,
            ..AlmSchedule::default()
        }
        .validate()
        .is_err());
        assert!(AlmSchedule {
            beta_max: 0.5,
            ..AlmSchedule::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn iteration_counter_is_one_based() {
        let state = AlmState::new(2, 2, AlmSchedule::default()).unwrap();
        assert_eq!(state.iteration(), 1);
        assert_eq!(state.multiplier().shape(), (2, 2));
        assert!(state.multiplier().as_slice().iter().all(|&x| x == 0.0));
    }
}
